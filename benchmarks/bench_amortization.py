"""Extension benchmark — build-cost amortization vs no-index BFS.

For each scheme, measure the full (build + workload) cost and record
the break-even query count computed by :mod:`repro.bench.profiles` —
the practical answer to "is this index worth building for my workload
size?".
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SCHEME_BUILD_OPTIONS
from repro.bench.profiles import amortization_point
from repro.bench.workloads import random_query_pairs
from repro.graph.generators import single_rooted_dag

SCHEMES = ["dual-i", "dual-ii", "interval", "closure"]

_STATE: dict[str, object] = {}


def _workload(scale):
    if "graph" not in _STATE:
        graph = single_rooted_dag(scale.n, int(scale.n * 1.3),
                                  max_fanout=5, seed=61)
        _STATE["graph"] = graph
        _STATE["pairs"] = random_query_pairs(graph, scale.num_queries,
                                             seed=62)
    return _STATE["graph"], _STATE["pairs"]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_amortization(benchmark, scheme, scale) -> None:
    """Build + answer the workload once; break-even in extra_info."""
    graph, pairs = _workload(scale)
    options = dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))

    def run():
        return amortization_point(graph, scheme, pairs, **options)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "scheme": scheme,
        "build_ms": 1000.0 * report.build_seconds,
        "per_query_us": 1e6 * report.per_query_seconds,
        "bfs_per_query_us": 1e6 * report.baseline_per_query_seconds,
        "break_even_queries": report.break_even_queries,
    })
    # Every indexed scheme must eventually beat per-query BFS here.
    assert report.break_even_queries is not None
