"""Ablation — the minimal-equivalent-graph preprocessing step (Section 5).

DESIGN.md calls MEG out as an optional design choice that shrinks the
non-tree edge count ``t`` (and with it the transitive link table and TLC
matrix) at a small extra build cost.  This benchmark quantifies both
sides: Dual-I built with and without MEG on the same graphs.
"""

from __future__ import annotations

import pytest

from repro.core.base import build_index
from repro.graph.generators import gnm_random_digraph, single_rooted_dag


def _graphs(scale):
    return {
        "random": gnm_random_digraph(scale.n, scale.dense_m, seed=21),
        "rooted-dag": single_rooted_dag(scale.n, scale.dense_m,
                                        max_fanout=5, seed=22),
    }


@pytest.mark.parametrize("use_meg", [False, True],
                         ids=["no-meg", "with-meg"])
@pytest.mark.parametrize("kind", ["random", "rooted-dag"])
def test_ablation_meg_build(benchmark, kind, use_meg, scale) -> None:
    """Dual-I build with/without MEG; t and space in extra_info."""
    graph = _graphs(scale)[kind]

    def run():
        return build_index(graph, scheme="dual-i", use_meg=use_meg)

    index = benchmark(run)
    stats = index.stats()
    benchmark.extra_info.update({
        "graph_kind": kind,
        "use_meg": use_meg,
        "t": stats.t,
        "transitive_links": stats.transitive_links,
        "space_bytes": stats.total_space_bytes,
        "meg_edges": stats.meg_edges,
    })


def test_ablation_meg_reduces_t(benchmark, scale) -> None:
    """The design claim itself: MEG never increases t (usually shrinks)."""
    graph = gnm_random_digraph(scale.n, scale.dense_m, seed=23)

    def run():
        with_meg = build_index(graph, scheme="dual-i", use_meg=True)
        without = build_index(graph, scheme="dual-i", use_meg=False)
        return with_meg.stats(), without.stats()

    stats_meg, stats_plain = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats_meg.t <= stats_plain.t
    assert stats_meg.transitive_links <= stats_plain.transitive_links
    benchmark.extra_info["t_with_meg"] = stats_meg.t
    benchmark.extra_info["t_without_meg"] = stats_plain.t
