"""Ablation — TLC backend choice: matrix vs search tree vs range tree.

Section 4's space/time tradeoff quantified on one set of graphs:

* ``dual-i``  — TLC matrix: O(1) query, O(t²) ints of space;
* ``dual-ii`` — TLC search tree: O(log t) query, usually far less space;
* ``dual-rt`` — range-temporal merge-sort tree: O(log² t) query,
  O(|T| log |T|) space (the paper's cited alternative structures).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import preprocess
from repro.bench.workloads import random_query_pairs
from repro.core.base import build_index
from repro.graph.generators import single_rooted_dag

BACKENDS = ["dual-i", "dual-ii", "dual-rt"]

_CACHE: dict[tuple[int, int], tuple] = {}


def _dag_for(n: int, m: int):
    key = (n, m)
    if key not in _CACHE:
        graph = single_rooted_dag(n, m, max_fanout=5, seed=31)
        _CACHE[key] = preprocess(graph)
    return _CACHE[key]


@pytest.mark.parametrize("scheme", BACKENDS)
def test_ablation_tlc_build(benchmark, scheme, scale) -> None:
    """Backend build time; space breakdown in extra_info."""
    dag, counters = _dag_for(scale.n, scale.dense_m)

    def run():
        return build_index(dag, scheme=scheme, use_meg=False)

    index = benchmark(run)
    stats = index.stats()
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["t"] = stats.t
    benchmark.extra_info["transitive_links"] = stats.transitive_links
    benchmark.extra_info["space_bytes"] = stats.total_space_bytes


@pytest.mark.parametrize("scheme", BACKENDS)
def test_ablation_tlc_query(benchmark, scheme, scale,
                            query_pairs_factory) -> None:
    """Backend query time on the shared workload."""
    dag, counters = _dag_for(scale.n, scale.dense_m)
    index = build_index(dag, scheme=scheme, use_meg=False)
    pairs = query_pairs_factory(dag, seed=32)

    def run():
        reach = index.reachable
        return sum(reach(u, v) for u, v in pairs)

    positives = benchmark(run)
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["positives"] = positives
