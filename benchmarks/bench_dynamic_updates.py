"""Extension benchmark — incremental vs from-scratch edge insertion.

The 2006 paper labels static graphs; :class:`DynamicDualIndex` handles
edge arrivals by rebuilding only the non-tree side (link table →
transitive links → TLC) when an insertion keeps the spanning forest
valid.  This benchmark measures a stream of non-cycle-closing inserts,
each followed by a query, under both policies:

* ``incremental`` — DynamicDualIndex's selective rebuild;
* ``rebuild``     — a full Dual-I rebuild per insertion.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dual_i import DualIIndex
from repro.core.dynamic import DynamicDualIndex
from repro.graph.generators import single_rooted_dag


def _insert_stream(graph, count: int, seed: int):
    """Edge insertions that never close a cycle: deeper-rank targets."""
    from repro.graph.traversal import topological_sort

    order = topological_sort(graph)
    rank = {node: i for i, node in enumerate(order)}
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    stream = []
    while len(stream) < count:
        u, v = rng.choice(nodes), rng.choice(nodes)
        if rank[u] < rank[v] and not graph.has_edge(u, v):
            stream.append((u, v))
    return stream


@pytest.mark.parametrize("policy", ["incremental", "rebuild"])
def test_dynamic_insert_stream(benchmark, policy, scale) -> None:
    """Apply 10 inserts + queries; compare total cost per policy."""
    base = single_rooted_dag(scale.n, int(scale.n * 1.1), max_fanout=5,
                             seed=41)
    stream = _insert_stream(base, 10, seed=42)
    probe_pairs = [(0, scale.n - 1), (scale.n // 2, scale.n // 3)]

    def run_incremental():
        index = DynamicDualIndex(base, use_meg=False)
        index.reachable(0, 1)  # initial build outside the comparison? no
        answers = 0
        for u, v in stream:
            index.add_edge(u, v)
            for a, b in probe_pairs:
                answers += index.reachable(a, b)
        return index.full_rebuilds, answers

    def run_rebuild():
        graph = base.copy()
        answers = 0
        for u, v in stream:
            graph.add_edge(u, v)
            index = DualIIndex.build(graph, use_meg=False)
            for a, b in probe_pairs:
                answers += index.reachable(a, b)
        return 1 + len(stream), answers

    run = run_incremental if policy == "incremental" else run_rebuild
    rebuilds, answers = benchmark(run)
    benchmark.extra_info.update({
        "policy": policy,
        "inserts": len(stream),
        "full_rebuilds": rebuilds,
        "answers_checksum": answers,
    })


def test_policies_agree(benchmark, scale) -> None:
    """Both policies answer identically after every insertion."""
    base = single_rooted_dag(400, 440, max_fanout=5, seed=43)
    stream = _insert_stream(base, 8, seed=44)
    rng = random.Random(45)
    nodes = list(base.nodes())
    queries = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(50)]

    def run():
        dynamic = DynamicDualIndex(base, use_meg=False)
        graph = base.copy()
        mismatches = 0
        for u, v in stream:
            dynamic.add_edge(u, v)
            graph.add_edge(u, v)
            static = DualIIndex.build(graph, use_meg=False)
            for a, b in queries:
                if dynamic.reachable(a, b) != static.reachable(a, b):
                    mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == 0
