"""Shared fixtures for the benchmark suite.

Scale control
-------------
``REPRO_BENCH_SCALE=quick`` (default) runs each exhibit on reduced
parameters so the whole suite finishes in a few minutes;
``REPRO_BENCH_SCALE=paper`` uses the paper's sizes (|V| = 2000/10000,
100k queries) — expect a long run, dominated by the 2-hop greedy builds.

Every benchmark records the experiment context (graph sizes, t, space,
positives) in ``benchmark.extra_info`` so the JSON output doubles as the
data behind EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.bench.workloads import random_query_pairs
from repro.bench.experiments import preprocess
from repro.graph.generators import gnm_random_digraph, single_rooted_dag


@dataclass(frozen=True)
class BenchScale:
    """Benchmark size parameters for the active scale."""

    name: str
    n: int                 # node count for fig 8/9/10/12/13 graphs
    mid_m: int             # representative mid-density edge count
    dense_m: int           # representative high-density edge count
    large_n: int           # fig14 node count
    large_m: int           # fig14 edge count
    fig11_sizes: tuple[int, ...]
    num_queries: int
    table2_datasets: tuple[str, ...]


_SCALES = {
    "quick": BenchScale(
        name="quick", n=400, mid_m=520, dense_m=640,
        large_n=2000, large_m=2400,
        fig11_sizes=(200, 400, 800),
        num_queries=2000,
        table2_datasets=("HpyCyc", "XMark"),
    ),
    "paper": BenchScale(
        name="paper", n=2000, mid_m=3000, dense_m=3900,
        large_n=10_000, large_m=12_000,
        fig11_sizes=(1000, 2000, 3000, 4000, 5000),
        num_queries=100_000,
        table2_datasets=("AgroCyc", "Ecoo157", "HpyCyc", "VchoCyc",
                         "XMark"),
    ),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """The active benchmark scale (see module docstring)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, "
            f"got {name!r}")
    return _SCALES[name]


@pytest.fixture(scope="session")
def random_graph_dag(scale):
    """Preprocessed DAG of the Figure 8 mid-density random graph."""
    graph = gnm_random_digraph(scale.n, scale.mid_m, seed=8)
    dag, counters = preprocess(graph)
    return dag, counters


@pytest.fixture(scope="session")
def rooted_dag(scale):
    """Preprocessed Figure 9 single-rooted DAG (fanout 5)."""
    graph = single_rooted_dag(scale.n, scale.mid_m, max_fanout=5, seed=9)
    dag, counters = preprocess(graph)
    return dag, counters


@pytest.fixture(scope="session")
def rooted_dag_fanout9(scale):
    """Preprocessed Figure 10 single-rooted DAG (fanout 9)."""
    graph = single_rooted_dag(scale.n, scale.mid_m, max_fanout=9, seed=10)
    dag, counters = preprocess(graph)
    return dag, counters


@pytest.fixture(scope="session")
def query_pairs_factory(scale):
    """Factory producing the seeded random query workload for a graph."""
    def _factory(graph, seed=123):
        return random_query_pairs(graph, scale.num_queries, seed=seed)
    return _factory
