"""Figure 11 — indexing time vs graph size at fixed density m/n = 1.5.

Paper shape: Interval fastest to label; Dual-I/Dual-II a little slower
but comparable (almost linear in n); 2-hop orders of magnitude slower.
Each benchmark is one (scheme, n) point of the figure's series.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SCHEME_BUILD_OPTIONS, preprocess
from repro.core.base import build_index
from repro.graph.generators import single_rooted_dag

SCHEMES = ["interval", "dual-i", "dual-ii", "2hop"]

_DAG_CACHE: dict[int, tuple] = {}


def _dag_for(n: int):
    if n not in _DAG_CACHE:
        graph = single_rooted_dag(n, int(n * 1.5), max_fanout=5, seed=11 + n)
        _DAG_CACHE[n] = preprocess(graph)
    return _DAG_CACHE[n]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("size_idx", [0, 1, 2])
def test_fig11_indexing_scaling(benchmark, scheme, size_idx, scale) -> None:
    """One (scheme, n) point of the Figure 11 indexing-time series."""
    sizes = scale.fig11_sizes
    if size_idx >= len(sizes):
        pytest.skip("scale defines fewer sizes")
    n = sizes[size_idx]
    if scheme == "2hop" and n > 3000:
        pytest.skip("2-hop at n > 3000 is impractical (the paper's point)")
    dag, counters = _dag_for(n)
    options = dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))

    def run():
        return build_index(dag, scheme=scheme, **options)

    index = benchmark(run)
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["n"] = n
    benchmark.extra_info["density"] = 1.5
    benchmark.extra_info["space_bytes"] = index.stats().total_space_bytes
