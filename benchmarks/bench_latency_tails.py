"""Extension benchmark — per-query latency distributions.

The paper's aggregate timing hides tails; this records p50/p90/p99/max
per scheme.  Expected shape: Dual-I's tail hugs its median (O(1) with a
fixed instruction path); online BFS and fallback-based schemes spread
over orders of magnitude.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SCHEME_BUILD_OPTIONS, preprocess
from repro.bench.profiles import latency_profile
from repro.bench.workloads import random_query_pairs
from repro.core.base import build_index
from repro.graph.generators import single_rooted_dag

SCHEMES = ["dual-i", "dual-ii", "interval", "online-bfs", "grail"]

_STATE: dict[str, object] = {}


def _workload(scale):
    if "dag" not in _STATE:
        graph = single_rooted_dag(scale.n, int(scale.n * 1.3),
                                  max_fanout=5, seed=63)
        dag, _ = preprocess(graph)
        _STATE["dag"] = dag
        _STATE["pairs"] = random_query_pairs(dag, scale.num_queries,
                                             seed=64)
    return _STATE["dag"], _STATE["pairs"]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_latency_tail(benchmark, scheme, scale) -> None:
    """One profiled pass over the workload per scheme."""
    dag, pairs = _workload(scale)
    options = dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))
    index = build_index(dag, scheme=scheme, **options)

    def run():
        return latency_profile(index, pairs)

    profile = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(profile.as_dict())
    assert profile.p50 <= profile.p99 <= profile.maximum
