"""Figure 13 — query time vs density, including the closure matrix.

Paper shape: the transitive-closure matrix is the floor; Dual-I is barely
worse than it and clearly better than every other labeling scheme.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SCHEME_BUILD_OPTIONS, preprocess
from repro.core.base import build_index
from repro.graph.generators import single_rooted_dag

SCHEMES = ["closure", "dual-i", "dual-ii", "interval", "2hop"]
DENSITIES = [1.1, 1.3, 1.5]

_CACHE: dict[tuple[int, int], tuple] = {}


def _dag_for(n: int, m: int):
    key = (n, m)
    if key not in _CACHE:
        graph = single_rooted_dag(n, m, max_fanout=5, seed=13 + m)
        _CACHE[key] = preprocess(graph)
    return _CACHE[key]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("density", DENSITIES)
def test_fig13_query(benchmark, scheme, density, scale,
                     query_pairs_factory) -> None:
    """One (scheme, density) point of the Figure 13 query-time series."""
    n = scale.n
    m = int(n * density)
    dag, counters = _dag_for(n, m)
    options = dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))
    index = build_index(dag, scheme=scheme, **options)
    pairs = query_pairs_factory(dag)

    def run():
        reach = index.reachable
        return sum(reach(u, v) for u, v in pairs)

    positives = benchmark(run)
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["density"] = density
    benchmark.extra_info["num_queries"] = len(pairs)
    benchmark.extra_info["positives"] = positives
