"""Figure 8 — random graphs: preprocessing reduction, indexing time,
query time.

Paper series: |V| = 2000, |E| = 2100..3900, 100k random queries.
Expected shape: node/edge reduction ratios fall with density; Interval ≈
Dual-I ≈ Dual-II ≪ 2-hop on indexing time; on query time Dual-I wins,
Interval loses, Dual-II ≈ 2-hop.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SCHEME_BUILD_OPTIONS, preprocess
from repro.bench.workloads import chunked
from repro.core.base import build_index
from repro.core.service import QueryService
from repro.graph.generators import gnm_random_digraph

SCHEMES = ["interval", "dual-i", "dual-ii", "2hop"]


def _opts(scheme: str) -> dict:
    return dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))


def test_fig8_preprocessing_ratios(benchmark, scale) -> None:
    """Figure 8 (top): SCC + MEG reduction on a random graph."""
    graph = gnm_random_digraph(scale.n, scale.dense_m, seed=88)

    def run():
        return preprocess(graph)

    dag, counters = benchmark(run)
    assert counters["nodes_dag"] <= counters["nodes_original"]
    assert counters["edges_meg"] <= counters["edges_original"]
    benchmark.extra_info.update(counters)
    benchmark.extra_info["node_ratio"] = (
        counters["nodes_dag"] / counters["nodes_original"])
    benchmark.extra_info["edge_ratio"] = (
        counters["edges_meg"] / counters["edges_original"])


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig8_indexing(benchmark, scheme, random_graph_dag) -> None:
    """Figure 8 (middle): labeling time after preprocessing."""
    dag, counters = random_graph_dag

    def run():
        return build_index(dag, scheme=scheme, **_opts(scheme))

    index = benchmark(run)
    stats = index.stats()
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["space_bytes"] = stats.total_space_bytes
    if stats.t is not None:
        benchmark.extra_info["t"] = stats.t


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig8_query(benchmark, scheme, random_graph_dag,
                    query_pairs_factory) -> None:
    """Figure 8 (bottom): batch of random reachability queries."""
    dag, counters = random_graph_dag
    index = build_index(dag, scheme=scheme, **_opts(scheme))
    pairs = query_pairs_factory(dag)

    def run():
        reach = index.reachable
        return sum(reach(u, v) for u, v in pairs)

    positives = benchmark(run)
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["num_queries"] = len(pairs)
    benchmark.extra_info["positives"] = positives


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig8_query_service(benchmark, scheme, random_graph_dag,
                            query_pairs_factory) -> None:
    """Figure 8 workload through the QueryService batch path.

    Same graph, same seeded workload as :func:`test_fig8_query`, served
    in production-shaped batches; positives are cross-checked against
    the scalar loop, so the two benchmarks are directly comparable.
    """
    dag, counters = random_graph_dag
    index = build_index(dag, scheme=scheme, **_opts(scheme))
    pairs = query_pairs_factory(dag)
    with QueryService(index) as service:
        batches = list(chunked(pairs, 8192))

        def run():
            return sum(sum(service.query_batch(batch))
                       for batch in batches)

        positives = benchmark(run)
    reach = index.reachable
    assert positives == sum(reach(u, v) for u, v in pairs)
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["num_queries"] = len(pairs)
    benchmark.extra_info["positives"] = positives
    benchmark.extra_info["vectorised"] = service.vectorised
