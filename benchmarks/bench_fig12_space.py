"""Figure 12 — label/index sizes vs density (paper: n = 2000).

Space is not a timing quantity, so each benchmark times the *build* and
records the space breakdown in ``extra_info``; the space series is the
figure's payload.  Expected shape: Dual-I space grows fast with density
(the t×t TLC matrix); Dual-II stays comparable to Interval and 2-hop;
everything sits below the n²-bit closure line on sparse inputs.
"""

from __future__ import annotations

import pytest

from repro.analysis.space import closure_matrix_bytes
from repro.bench.experiments import SCHEME_BUILD_OPTIONS, preprocess
from repro.core.base import build_index
from repro.graph.generators import single_rooted_dag

SCHEMES = ["interval", "dual-i", "dual-ii", "2hop"]
DENSITIES = [1.05, 1.2, 1.35, 1.5]

_DAG_CACHE: dict[tuple[int, int], tuple] = {}


def _dag_for(n: int, m: int):
    key = (n, m)
    if key not in _DAG_CACHE:
        graph = single_rooted_dag(n, m, max_fanout=5, seed=12 + m)
        _DAG_CACHE[key] = preprocess(graph)
    return _DAG_CACHE[key]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("density", DENSITIES)
def test_fig12_space(benchmark, scheme, density, scale) -> None:
    """One (scheme, density) point of the Figure 12 space series."""
    n = scale.n
    m = int(n * density)
    dag, counters = _dag_for(n, m)
    options = dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))

    def run():
        return build_index(dag, scheme=scheme, **options)

    index = benchmark(run)
    stats = index.stats()
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["density"] = density
    benchmark.extra_info["space_bytes"] = stats.total_space_bytes
    benchmark.extra_info["closure_space_bytes"] = closure_matrix_bytes(
        counters["nodes_dag"])
    for component, nbytes in stats.space_bytes.items():
        benchmark.extra_info[f"bytes_{component}"] = nbytes
    # The figure's qualitative claim: every labeling beats the closure
    # matrix on sparse graphs.  Assert it at the sparsest point.
    if density == DENSITIES[0]:
        assert stats.total_space_bytes < closure_matrix_bytes(
            counters["nodes_dag"])
