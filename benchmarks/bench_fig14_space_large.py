"""Figure 14 — label sizes at the paper's large setting (n = 10000).

The paper drops 2-hop here: labeling 10k-node graphs with it is
impractical — which is dual labeling's selling point.  This module does
the same; only Interval, Dual-I and Dual-II appear.
"""

from __future__ import annotations

import pytest

from repro.analysis.space import closure_matrix_bytes
from repro.bench.experiments import SCHEME_BUILD_OPTIONS, preprocess
from repro.core.base import build_index
from repro.graph.generators import single_rooted_dag

SCHEMES = ["interval", "dual-i", "dual-ii"]

_CACHE: dict[tuple[int, int], tuple] = {}


def _dag_for(n: int, m: int):
    key = (n, m)
    if key not in _CACHE:
        graph = single_rooted_dag(n, m, max_fanout=5, seed=14)
        _CACHE[key] = preprocess(graph)
    return _CACHE[key]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig14_space_large(benchmark, scheme, scale) -> None:
    """Build on the large DAG; space series goes to extra_info."""
    n, m = scale.large_n, scale.large_m
    dag, counters = _dag_for(n, m)
    options = dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))

    def run():
        return build_index(dag, scheme=scheme, **options)

    index = benchmark(run)
    stats = index.stats()
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["space_bytes"] = stats.total_space_bytes
    benchmark.extra_info["closure_space_bytes"] = closure_matrix_bytes(
        counters["nodes_dag"])
    # Figure 14's qualitative claim at 10k nodes: the labelings sit far
    # below the closure matrix on sparse graphs.  Dual-I's t² matrix is
    # the exception once density rises (the crossover Figures 12/14 show),
    # so the strict assertion applies to the O(n)-ish schemes only.
    if scheme in ("interval", "dual-ii"):
        assert stats.total_space_bytes < closure_matrix_bytes(
            counters["nodes_dag"])
