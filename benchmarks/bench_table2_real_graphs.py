"""Table 2 — the paper's real graphs (calibrated synthetic stand-ins).

For each dataset: full index build (condense + MEG + labeling, as the
paper's end-to-end indexing time) for Interval, Dual-I and Dual-II, plus
a query-batch benchmark per scheme.  The pipeline counters
(|V_DAG|, |E_DAG|, |E_MEG|) land in ``extra_info`` next to the paper's
reported values.

2-hop is excluded, as in the paper ("too time consuming ... the XMark
graph takes 307 minutes for 2-hop labeling").
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import preprocess
from repro.bench.workloads import random_query_pairs
from repro.core.base import build_index
from repro.datasets import get_spec, load_dataset

SCHEMES = ["interval", "dual-i", "dual-ii"]

_GRAPH_CACHE: dict[str, object] = {}
_COUNTER_CACHE: dict[str, dict] = {}


def _graph_for(name: str):
    if name not in _GRAPH_CACHE:
        graph = load_dataset(name, seed=0)
        _GRAPH_CACHE[name] = graph
        _, counters = preprocess(graph)
        _COUNTER_CACHE[name] = counters
    return _GRAPH_CACHE[name], _COUNTER_CACHE[name]


def _options(scheme: str) -> dict:
    # Full build including MEG; interval runs its paper-faithful probe.
    return {"interval": {"probe": "subset"}}.get(scheme, {})


def _record(benchmark, name: str, scheme: str, counters: dict) -> None:
    spec = get_spec(name)
    benchmark.extra_info.update(counters)
    benchmark.extra_info.update({
        "dataset": name,
        "scheme": scheme,
        "paper_V_DAG": spec.dag_nodes,
        "paper_E_DAG": spec.dag_edges,
        "paper_E_MEG": spec.meg_edges,
    })


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("dataset_idx", [0, 1, 2, 3, 4])
def test_table2_indexing(benchmark, dataset_idx, scheme, scale) -> None:
    """Full-build indexing time for one (dataset, scheme) cell."""
    datasets = scale.table2_datasets
    if dataset_idx >= len(datasets):
        pytest.skip("scale restricts the dataset list")
    name = datasets[dataset_idx]
    graph, counters = _graph_for(name)

    def run():
        return build_index(graph, scheme=scheme, **_options(scheme))

    index = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(benchmark, name, scheme, counters)
    benchmark.extra_info["space_bytes"] = index.stats().total_space_bytes


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("dataset_idx", [0, 1, 2, 3, 4])
def test_table2_query(benchmark, dataset_idx, scheme, scale) -> None:
    """Query-batch time for one (dataset, scheme) cell."""
    datasets = scale.table2_datasets
    if dataset_idx >= len(datasets):
        pytest.skip("scale restricts the dataset list")
    name = datasets[dataset_idx]
    graph, counters = _graph_for(name)
    index = build_index(graph, scheme=scheme, **_options(scheme))
    pairs = random_query_pairs(graph, scale.num_queries, seed=2)

    def run():
        reach = index.reachable
        return sum(reach(u, v) for u, v in pairs)

    positives = benchmark(run)
    _record(benchmark, name, scheme, counters)
    benchmark.extra_info["num_queries"] = len(pairs)
    benchmark.extra_info["positives"] = positives
