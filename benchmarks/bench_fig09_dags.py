"""Figure 9 — single-rooted DAGs (max fanout 5): indexing + query time.

Same shape expectations as Figure 8, on the paper's Section 6.2 DAG
generator: Interval ≈ Dual-I ≈ Dual-II ≪ 2-hop on indexing; Dual-I
fastest on queries.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SCHEME_BUILD_OPTIONS
from repro.core.base import build_index

SCHEMES = ["interval", "dual-i", "dual-ii", "2hop"]


def _opts(scheme: str) -> dict:
    return dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig9_indexing(benchmark, scheme, rooted_dag) -> None:
    """Figure 9 (top): labeling time on the fanout-5 DAG."""
    dag, counters = rooted_dag

    def run():
        return build_index(dag, scheme=scheme, **_opts(scheme))

    index = benchmark(run)
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["space_bytes"] = index.stats().total_space_bytes


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig9_query(benchmark, scheme, rooted_dag,
                    query_pairs_factory) -> None:
    """Figure 9 (bottom): query batch on the fanout-5 DAG."""
    dag, counters = rooted_dag
    index = build_index(dag, scheme=scheme, **_opts(scheme))
    pairs = query_pairs_factory(dag)

    def run():
        reach = index.reachable
        return sum(reach(u, v) for u, v in pairs)

    positives = benchmark(run)
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["num_queries"] = len(pairs)
    benchmark.extra_info["positives"] = positives
