"""Figure 10 — single-rooted DAGs with max fanout 9: query time.

The paper's point: query performance is insensitive to the spanning
tree's shape.  Compare these numbers with ``bench_fig09_dags`` (fanout 5)
— the per-scheme ordering and magnitudes should match.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SCHEME_BUILD_OPTIONS
from repro.core.base import build_index

SCHEMES = ["interval", "dual-i", "dual-ii", "2hop"]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig10_query_fanout9(benchmark, scheme, rooted_dag_fanout9,
                             query_pairs_factory) -> None:
    """Query batch on the fanout-9 DAG."""
    dag, counters = rooted_dag_fanout9
    options = dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))
    index = build_index(dag, scheme=scheme, **options)
    pairs = query_pairs_factory(dag)

    def run():
        reach = index.reachable
        return sum(reach(u, v) for u, v in pairs)

    positives = benchmark(run)
    benchmark.extra_info.update(counters)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["max_fanout"] = 9
    benchmark.extra_info["positives"] = positives
