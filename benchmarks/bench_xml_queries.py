"""Extension benchmark — the paper's motivating XML workload.

Section 1.1: evaluating ``//fiction//author`` means testing whether
author elements are reachable from fiction elements.  This benchmark
generates an XMark-flavoured auction document, builds each index scheme
over its element graph, and times a batch of descendant path
expressions — the end-to-end cost a real XML processor would pay.
"""

from __future__ import annotations

import pytest

from repro.core.service import QueryService
from repro.xml import XMLReachabilityEngine, generate_auction_document

SCHEMES = ["dual-i", "dual-ii", "interval", "online-bfs"]
EXPRESSIONS = ["//site//item", "//person//item", "//region//itemref",
               "//site//watch", "//person//name"]

_DOC_CACHE: dict[int, object] = {}


def _document(scale):
    n_items = max(100, scale.n // 4)
    if n_items not in _DOC_CACHE:
        _DOC_CACHE[n_items] = generate_auction_document(
            num_items=n_items, num_people=n_items // 2,
            num_refs=int(n_items * 0.8), seed=51)
    return _DOC_CACHE[n_items]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_xml_engine_build(benchmark, scheme, scale) -> None:
    """Index construction over the document's element graph."""
    document = _document(scale)

    def run():
        return XMLReachabilityEngine(document, scheme=scheme)

    engine = benchmark(run)
    stats = engine.index.stats()
    benchmark.extra_info.update({
        "scheme": scheme,
        "elements": document.num_elements,
        "graph_edges": engine.graph.num_edges,
        "space_bytes": stats.total_space_bytes,
    })


@pytest.mark.parametrize("scheme", SCHEMES)
def test_xml_path_expressions(benchmark, scheme, scale) -> None:
    """Evaluate the expression batch; match counts cross-checked."""
    document = _document(scale)
    engine = XMLReachabilityEngine(document, scheme=scheme)

    def run():
        return [engine.count(expr) for expr in EXPRESSIONS]

    counts = benchmark(run)
    benchmark.extra_info.update({
        "scheme": scheme,
        "expressions": len(EXPRESSIONS),
        "match_counts": counts,
    })
    # All schemes must produce identical match counts.
    reference = XMLReachabilityEngine(document, scheme="online-bfs")
    assert counts == [reference.count(expr) for expr in EXPRESSIONS]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_xml_structural_join_service(benchmark, scheme, scale) -> None:
    """The Section 1.1 structural join routed through QueryService.

    ``person ⇝ item`` as one dense cross product via
    :meth:`repro.core.service.QueryService.query_matrix` — vectorised
    where the scheme exposes label arrays, scalar otherwise.  The hit
    count is cross-checked against the engine's own
    :meth:`structural_join`.
    """
    document = _document(scale)
    engine = XMLReachabilityEngine(document, scheme=scheme)
    ancestors = [e.node_id for e in document.by_tag("person")]
    descendants = [e.node_id for e in document.by_tag("item")]
    with QueryService(engine.index) as service:

        def run():
            return int(service.query_matrix(ancestors,
                                            descendants).sum())

        hits = benchmark(run)
    assert hits == len(engine.structural_join("person", "item"))
    benchmark.extra_info.update({
        "scheme": scheme,
        "ancestors": len(ancestors),
        "descendants": len(descendants),
        "hits": hits,
        "vectorised": service.vectorised,
    })
