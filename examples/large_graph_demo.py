#!/usr/bin/env python3
"""Indexing a large sparse graph — the "massive datasets" claim.

The paper's headline: dual labeling is *almost linear* to build on
sparse graphs, where 2-hop takes hours-to-days.  This demo builds
Dual-I on progressively larger single-rooted DAGs (up to 50k nodes,
density 1.02) and prints build time per node, showing the near-linear
scaling, then compares one 2-hop build at the largest size it can
stomach in a demo (n=2000) to make the contrast concrete.

Run:  python examples/large_graph_demo.py        (~1 minute)
"""

import time

from repro import build_index
from repro.bench.workloads import random_query_pairs
from repro.graph.generators import single_rooted_dag

print("Dual-I build scaling on sparse DAGs (density m/n = 1.02):\n")
print(f"{'n':>8s} {'m':>8s} {'build (s)':>10s} {'µs/node':>9s} "
      f"{'t':>6s} {'100k queries (s)':>17s}")

for n in (5_000, 10_000, 20_000, 50_000):
    m = int(n * 1.02)
    graph = single_rooted_dag(n, m, max_fanout=5, seed=n)
    started = time.perf_counter()
    index = build_index(graph, scheme="dual-i")
    build_seconds = time.perf_counter() - started

    pairs = random_query_pairs(graph, 100_000, seed=1)
    started = time.perf_counter()
    positives = sum(index.reachable(u, v) for u, v in pairs)
    query_seconds = time.perf_counter() - started

    stats = index.stats()
    print(f"{n:8d} {m:8d} {build_seconds:10.2f} "
          f"{1e6 * build_seconds / n:9.1f} {stats.t:6d} "
          f"{query_seconds:17.2f}")
    del positives

print("""
Build time per node stays roughly constant as n grows 10x — the almost-
linear labeling the paper promises (the t³ transitive-link step is
negligible because t ≪ n on sparse graphs).
""")

print("Contrast: 2-hop (Cohen greedy) at n=2000, density 1.5 —")
graph = single_rooted_dag(2000, 3000, max_fanout=5, seed=1)
for scheme in ("dual-i", "2hop"):
    started = time.perf_counter()
    build_index(graph, scheme=scheme)
    print(f"  {scheme:7s} build: {time.perf_counter() - started:7.2f} s")
print("(the gap grows with n — at 10k+ nodes 2-hop is impractical, "
      "which is why the paper's Figure 14 omits it)")
