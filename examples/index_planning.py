#!/usr/bin/env python3
"""Choosing an index before building one — the analysis toolkit.

Given an unfamiliar graph, the `repro.analysis` package predicts how
each scheme will behave *without* building anything expensive:

* `nontree_edge_count` gives the dual schemes' `t` in O(n + m) — from
  it, the TLC matrix footprint is (t+1)² cells;
* `width_upper_bound` gives the chain-cover scheme's `k` (its matrix
  is n·k);
* `dag_depth` / `level_histogram` show the shape (deep chains favour
  interval nesting; shallow-wide graphs stress chain covers);
* `closure_matrix_bytes` is the always-available yardstick.

The script sizes three very different graphs, prints the predictions,
then builds the indexes and shows the predictions were right.

Run:  python examples/index_planning.py
"""

from repro import build_index
from repro.analysis import (
    closure_matrix_bytes,
    dag_depth,
    level_histogram,
    nontree_edge_count,
    width_upper_bound,
)
from repro.graph import condense
from repro.graph.generators import (
    citation_dag,
    random_tree,
    single_rooted_dag,
)

GRAPHS = {
    "xml-like (tree + few links)": single_rooted_dag(
        4000, 4200, max_fanout=5, seed=1),
    "citation network (hub-heavy)": citation_dag(
        4000, refs_per_node=2, seed=2),
    "pure taxonomy (a tree)": random_tree(4000, max_fanout=6, seed=3),
}

for name, graph in GRAPHS.items():
    dag = condense(graph).dag
    t = nontree_edge_count(graph)
    width = width_upper_bound(dag)
    depth = dag_depth(dag)
    levels = level_histogram(dag)
    n = dag.num_nodes

    print(f"{name}")
    print(f"  n={n}, m={graph.num_edges}, depth={depth}, "
          f"widest level={max(levels)}")
    print(f"  predicted t           : {t}")
    print(f"  TLC matrix bound      : {(t + 1) * (t + 1) * 8:,} B "
          f"(dual-i worst case; smaller when links share tails/heads)")
    print(f"  predicted chain count : {width} "
          f"-> chain-cover matrix {n * width * 4:,} B")
    print(f"  closure yardstick     : {closure_matrix_bytes(n):,} B")

    dual = build_index(graph, scheme="dual-i")
    chains = build_index(graph, scheme="chain-cover")
    print(f"  measured  t           : {dual.stats().t}")
    print(f"  measured  dual-i TLC  : "
          f"{dual.stats().space_bytes['tlc_matrix']:,} B")
    print(f"  measured  chain-cover : "
          f"{chains.stats().space_bytes['first_reach_matrix']:,} B")
    verdict = "dual-i" if (t + 1) ** 2 * 8 < n * width * 4 else \
        "chain-cover"
    print(f"  -> cheaper O(1) index here: {verdict}\n")

print("Rule of thumb the numbers above demonstrate: dual labeling wins "
      "whenever t ≪ n\n(trees, XML, ontologies); width-bounded schemes "
      "win on shallow, wide DAGs.")
