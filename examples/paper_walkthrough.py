#!/usr/bin/env python3
"""The paper, step by step, on its own running example.

Reconstructs the graph of Figures 1/2/5 and prints every intermediate
artefact the paper derives from it — the spanning tree and interval
labels (Fig. 2), the link table and its transitive closure (§3.1), the
TLC grid values (Fig. 4, incl. N(9,3)=1 and N(11,3)=0), the non-tree
labels (Fig. 5), and finally Theorem 3 deciding the narrated queries.

Run:  python examples/paper_walkthrough.py
"""

from repro.core.dual_i import DualIIndex
from repro.core.tlc_matrix import tlc_function
from repro.core.witness import explain_query
from repro.graph.digraph import DiGraph

# The example graph: solid edges in Figure 2 are the spanning tree,
# dotted edges (u->v, f->a) are non-tree.
EDGES = [
    ("r", "a"), ("a", "c"), ("a", "w"), ("a", "d"),
    ("r", "e"), ("r", "v"), ("v", "f"), ("v", "g"),
    ("r", "u"), ("u", "h"), ("r", "i"),
    ("u", "v"), ("f", "a"),
]
graph = DiGraph(EDGES)
print(f"input graph (Figure 1): {graph.num_nodes} nodes, "
      f"{graph.num_edges} edges\n")

# MEG off: the figures label the original spanning tree.
index = DualIIndex.build(graph, use_meg=False)
pipeline = index.pipeline

# ----------------------------------------------------------------------
# Section 3.1 — spanning tree + interval labels (Figure 2).
# ----------------------------------------------------------------------
members = pipeline.condensation.members
name_of = {cid: members[cid][0] for cid in range(len(members))}
print("interval labels (Figure 2):")
for cid in sorted(name_of, key=lambda c: pipeline.labeling.start(c)):
    interval = pipeline.labeling.interval[cid]
    print(f"  {name_of[cid]}: {interval}")

print("\nnon-tree edges -> link table entries (§3.1):")
for link in pipeline.base_table.links:
    print(f"  {link}")

print("\ntransitive link table (after Theorem 1 closure):")
for link in pipeline.transitive_table.links:
    derived = " (derived)" if link not in pipeline.base_table.links \
        else ""
    print(f"  {link}{derived}")

# ----------------------------------------------------------------------
# Sections 3.2-3.3 — the TLC function and grid (Figure 4).
# ----------------------------------------------------------------------
N = tlc_function(pipeline.transitive_table)
print("\nTLC checks from the paper's text:")
print(f"  N(9, 3)  = {N(9, 3)}   (paper: 1 — link 9->[1,5) qualifies)")
print(f"  N(11, 3) = {N(11, 3)}   (paper: 0)")

tlc = index.tlc_matrix
print(f"\nTLC grid: X = {tlc.xs}, Y = {tlc.ys}")
for ix, x in enumerate(tlc.xs):
    row = "  ".join(f"N({x},{y})={tlc.value(ix, iy)}"
                    for iy, y in enumerate(tlc.ys))
    print(f"  {row}")

# ----------------------------------------------------------------------
# Section 3.4 — non-tree labels (Figure 5).
# ----------------------------------------------------------------------
from repro.core.nontree_labels import assign_nontree_labels

labels = assign_nontree_labels(pipeline.forest, pipeline.labeling,
                               pipeline.transitive_table)
sx, sy = labels.sentinel_x, labels.sentinel_y


def fmt(triple):
    x, y, z = triple
    return (f"<{'-' if x == sx else x}, "
            f"{'-' if y == sx else y}, "
            f"{'-' if z == sy else z}>")


print("\nnon-tree labels (Figure 5):")
for name in ("r", "u", "g", "w", "v", "a"):
    cid = pipeline.condensation.component_of[name]
    print(f"  {name}: {fmt(labels[cid])}")

# ----------------------------------------------------------------------
# Theorem 3 — the narrated queries, explained.
# ----------------------------------------------------------------------
print("\nqueries (Theorem 3):")
for source, target in (("u", "v"), ("u", "w"), ("w", "u"), ("r", "w")):
    print(f"  {explain_query(index, source, target)}")
