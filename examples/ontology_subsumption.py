#!/usr/bin/env python3
"""Ontology subsumption queries — the paper's RDF/OWL motivation.

Class hierarchies (rdfs:subClassOf) are sparse DAGs; "is C a subclass of
D?" is a reachability query, and ontology-backed applications fire huge
numbers of them.  This example:

1. answers subsumption/instance queries over a small hand-written zoo
   ontology (including an equivalence cycle, which SCC condensation
   handles);
2. scales up to a generated 5,000-class hierarchy with multiple
   inheritance and compares subsumption-check throughput across index
   schemes.

Run:  python examples/ontology_subsumption.py
"""

import random
import time

from repro.rdf import Ontology, TripleStore, generate_ontology

ZOO = """
ex:Dog rdfs:subClassOf ex:Mammal .
ex:Cat rdfs:subClassOf ex:Mammal .
ex:Mammal rdfs:subClassOf ex:Animal .
ex:Bird rdfs:subClassOf ex:Animal .
ex:Penguin rdfs:subClassOf ex:Bird .
ex:Penguin rdfs:subClassOf ex:FlightlessThing .
ex:Canine rdfs:subClassOf ex:Dog .
ex:Dog rdfs:subClassOf ex:Canine .
ex:rex rdf:type ex:Dog .
ex:tweety rdf:type ex:Bird .
ex:pingu rdf:type ex:Penguin .
"""

# ----------------------------------------------------------------------
# 1. Small ontology: subsumption, inference, equivalence cycles.
# ----------------------------------------------------------------------
zoo = Ontology(TripleStore.loads(ZOO))
print(f"zoo ontology: {zoo!r}\n")

checks = [
    ("ex:Penguin", "ex:Animal"),
    ("ex:Penguin", "ex:FlightlessThing"),
    ("ex:Cat", "ex:Bird"),
    ("ex:Canine", "ex:Mammal"),   # via the Dog<->Canine equivalence
]
for sub, sup in checks:
    verdict = "⊑" if zoo.is_subclass_of(sub, sup) else "⋢"
    print(f"  {sub} {verdict} {sup}")

print(f"\n  instances of ex:Animal: {sorted(zoo.instances_of('ex:Animal'))}")
print(f"  inferred types of ex:pingu: {sorted(zoo.types_of('ex:pingu'))}")

# ----------------------------------------------------------------------
# 2. A Gene-Ontology-sized hierarchy: throughput comparison.
# ----------------------------------------------------------------------
store = generate_ontology(num_classes=5000, num_individuals=1000,
                          multi_parent_fraction=0.04, seed=11)
print(f"\ngenerated hierarchy: {len(store)} triples")

rng = random.Random(1)
classes = [f"ex:C{k}" for k in range(5000)]
queries = [(rng.choice(classes), rng.choice(classes))
           for _ in range(100_000)]

for scheme in ("dual-i", "dual-ii", "interval", "closure"):
    onto = Ontology(store, scheme=scheme)
    start = time.perf_counter()
    positive = sum(onto.is_subclass_of(a, b) for a, b in queries)
    elapsed = time.perf_counter() - start
    stats = onto._index.stats()
    print(f"  {scheme:8s}: 100k subsumption checks in "
          f"{elapsed * 1000:6.0f} ms "
          f"({positive} positive, index {stats.total_space_bytes:>9,} B)")

print("""
Dual-I gives O(1) subsumption at a fraction of the closure matrix's
space — the paper's pitch on the paper's own use case.  (Engineering
note baked into repro.rdf.Ontology: subClassOf edges point upward, a
shape with huge t; the index is built over the *reversed*, near-tree
hierarchy, cutting Dual-I's footprint by ~3 orders of magnitude.)""")
