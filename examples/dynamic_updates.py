#!/usr/bin/env python3
"""Evolving graphs and explainable answers — two extensions in action.

1. DynamicDualIndex: a dependency graph receives edges over time;
   inserts that keep the spanning forest valid update only the non-tree
   side (no O(n) relabeling), while cycle-closing inserts trigger a
   full rebuild — the counters show which path each mutation took.
2. witness_path: reachability answers upgraded to actual paths, checked
   edge by edge — provenance for "how does A affect B?".

Run:  python examples/dynamic_updates.py
"""

from repro.core.dynamic import DynamicDualIndex
from repro.core.witness import expand_witness, verify_witness, witness_path
from repro.graph.generators import single_rooted_dag

# ----------------------------------------------------------------------
# 1. A service dependency graph that grows at runtime.
# ----------------------------------------------------------------------
base = single_rooted_dag(3000, 3300, max_fanout=5, seed=99)
index = DynamicDualIndex(base, use_meg=False)
index.reachable(0, 1)  # initial build
print(f"initial: {index!r}")

inserts = [(17, 2890), (44, 2991), (251, 2700), (2890, 17)]
for u, v in inserts:
    creates_cycle = index.reachable(v, u)
    index.add_edge(u, v)
    kind = "cycle-closing -> full rebuild" if creates_cycle else \
        "cross edge -> incremental (non-tree side only)"
    print(f"  add {u:5d} -> {v:5d}: {kind}")
    assert index.reachable(u, v)

print(f"after inserts: {index!r}")
print(f"  full rebuilds        : {index.full_rebuilds}")
print(f"  incremental updates  : {index.incremental_updates}")

# ----------------------------------------------------------------------
# 2. Witness paths: explain a positive answer.
# ----------------------------------------------------------------------
from repro.core.dual_i import DualIIndex

from repro.graph.traversal import reachable_set

graph = single_rooted_dag(400, 520, max_fanout=4, seed=7)
static = DualIIndex.build(graph, use_meg=False)

source = 3
downstream = sorted(reachable_set(graph, source) - {source})
target = downstream[-1]  # the farthest-labeled thing source affects
witness = witness_path(static, source, target)
full = expand_witness(graph, witness)
assert verify_witness(graph, full)
print(f"\nwitness for {source} ⇝ {target} "
      f"({len(full) - 1} hops, verified edge-by-edge):")
print("  " + " -> ".join(str(n) for n in full))

# Negative answers yield no witness.
assert witness_path(static, target, source) is None
print(f"reverse direction {target} ⇝ {source}: unreachable, "
      "witness is None ✔")
