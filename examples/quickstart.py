#!/usr/bin/env python3
"""Quickstart: build a dual-labeling index and answer reachability
queries in constant time.

Run:  python examples/quickstart.py
"""

from repro import DiGraph, available_schemes, build_index

# ----------------------------------------------------------------------
# 1. Build a graph.  Nodes are arbitrary hashables; cycles are fine —
#    strongly connected components are condensed automatically.
# ----------------------------------------------------------------------
g = DiGraph()
g.add_edges([
    ("ingest", "clean"), ("clean", "features"), ("features", "train"),
    ("train", "evaluate"), ("evaluate", "deploy"),
    ("evaluate", "train"),          # retraining loop (a cycle!)
    ("clean", "report"), ("deploy", "monitor"),
    ("monitor", "ingest"),          # feedback loop back to the start
])

print(f"pipeline graph: {g.num_nodes} stages, {g.num_edges} edges")

# ----------------------------------------------------------------------
# 2. Build the Dual-I index: O(1) reachability queries.
# ----------------------------------------------------------------------
index = build_index(g, scheme="dual-i")

queries = [
    ("ingest", "deploy"),    # forward through the pipeline
    ("deploy", "clean"),     # back through the feedback loop
    ("report", "train"),     # report is a dead end
    ("train", "train"),      # reflexive
]
for source, target in queries:
    verdict = "reaches" if index.reachable(source, target) else \
        "cannot reach"
    print(f"  {source:10s} {verdict} {target}")

# ----------------------------------------------------------------------
# 3. Inspect the index: what did dual labeling actually build?
# ----------------------------------------------------------------------
stats = index.stats()
print(f"\nindex stats ({stats.scheme}):")
print(f"  input                : n={stats.num_nodes}, m={stats.num_edges}")
print(f"  after SCC condensation: n={stats.dag_nodes}, "
      f"m={stats.dag_edges}")
print(f"  after MEG reduction  : m={stats.meg_edges}")
print(f"  non-tree edges (t)   : {stats.t}")
print(f"  transitive links (|T|): {stats.transitive_links}")
print(f"  space                : {stats.total_space_bytes} bytes "
      f"{dict(stats.space_bytes)}")
print(f"  build time           : {stats.build_seconds * 1000:.2f} ms")

# ----------------------------------------------------------------------
# 4. Every scheme shares the same API — swap freely.
# ----------------------------------------------------------------------
print(f"\navailable schemes: {', '.join(available_schemes())}")
for scheme in ("dual-ii", "interval", "closure"):
    other = build_index(g, scheme=scheme)
    assert other.reachable("ingest", "deploy")
    assert not other.reachable("report", "train")
print("all schemes agree on the example queries ✔")
