#!/usr/bin/env python3
"""XML structural queries via reachability — the paper's Section 1.1
motivation, end to end.

An XML document is a tree plus IDREF reference links, i.e. a sparse
directed graph.  Path expressions like //fiction//author become
reachability tests.  This example:

1. evaluates //fiction//author over a small hand-written library
   document (the paper's own example query);
2. generates an XMark-flavoured auction document and runs structural
   queries over it with Dual-I, showing the index statistics on a
   tree-plus-links graph (density ≈ 1.15, like real XMark).

Run:  python examples/xml_reachability.py
"""

from repro.xml import (
    XMLReachabilityEngine,
    generate_auction_document,
    parse_xml,
)

LIBRARY = """
<library>
  <fiction>
    <book id="b1"><title>Dune</title><authorref idref="a1"/></book>
    <book id="b2"><title>Foundation</title><authorref idref="a2"/></book>
  </fiction>
  <nonfiction>
    <book id="b3"><title>Cosmos</title><authorref idref="a3"/></book>
  </nonfiction>
  <authors>
    <author id="a1"><name>Frank Herbert</name></author>
    <author id="a2"><name>Isaac Asimov</name></author>
    <author id="a3"><name>Carl Sagan</name></author>
  </authors>
</library>
"""

# ----------------------------------------------------------------------
# 1. The paper's query: //fiction//author
# ----------------------------------------------------------------------
document = parse_xml(LIBRARY)
engine = XMLReachabilityEngine(document, scheme="dual-i")

print("query //fiction//author —")
print("  (authors live under <authors>, so only the IDREF edges make")
print("   them reachable from <fiction>: a graph, not a tree, problem)")
for author in engine.evaluate("//fiction//author"):
    name = author.children[0].text
    print(f"  matched: <author id={author.element_id!r}> {name}")

sagan = document.by_id("a3")
fiction = document.by_tag("fiction")[0]
assert not engine.is_descendant(fiction, sagan)
print("  Carl Sagan (nonfiction only) correctly not matched ✔")

# ----------------------------------------------------------------------
# 2. XMark-flavoured auction document at a more interesting size.
# ----------------------------------------------------------------------
auction = generate_auction_document(num_items=400, num_people=250,
                                    num_refs=300, seed=7)
graph = auction.to_graph()
print(f"\nauction document: {auction.num_elements} elements, "
      f"graph density {graph.density:.3f} "
      "(tree + IDREF links, like XMark)")

engine = XMLReachabilityEngine(auction, scheme="dual-i")
stats = engine.index.stats()
print(f"dual-I index: t={stats.t} non-tree edges, "
      f"|T|={stats.transitive_links} transitive links, "
      f"{stats.total_space_bytes} bytes, "
      f"built in {stats.build_seconds * 1000:.1f} ms")

for expression in ("//site//item", "//person//item", "//region//itemref"):
    print(f"  {expression:22s} -> {engine.count(expression)} matches")

# Items watched by people *through* reference chains: person -> watch
# -(idref)-> item -(itemref)-> item.
watched = {e.element_id for e in engine.evaluate("//person//item")}
direct = {e.attributes["idref"]
          for person in auction.by_tag("watch")
          for e in [person]}
print(f"  items reachable from people: {len(watched)} "
      f"(direct watches: {len(direct)}; the rest arrive via item->item "
      "references)")

# ----------------------------------------------------------------------
# 3. Structural join + mixed-axis paths.
# ----------------------------------------------------------------------
join = engine.structural_join("person", "item")
print(f"\nstructural join person ⨝ item: {len(join)} pairs "
      "(every person with every item they can reach)")

mixed = engine.evaluate_path("//site/regions//item")
print(f"mixed-axis //site/regions//item: {len(mixed)} matches "
      "(child step to <regions>, then descendants)")
