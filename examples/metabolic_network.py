#!/usr/bin/env python3
"""Metabolic-pathway reachability — the paper's biology motivation.

"Graph reachability models such relationships as whether two genes
interact with each other or whether two proteins participate in a common
pathway."  (Section 1.1)

This example loads the calibrated HpyCyc stand-in (Helicobacter pylori
pathway/genome network, |V|=5565, |E|=8474 — the paper's Table 2 sizes),
builds Dual-I and Dual-II indexes, and answers pathway-style questions:

* can metabolite A be converted (via any reaction chain) into B?
* which fraction of node pairs interact at all (graph "influence")?
* hub analysis: the nodes that can reach the most other nodes.

Run:  python examples/metabolic_network.py
"""

import random
import time

from repro import build_index
from repro.bench.workloads import random_query_pairs
from repro.datasets import get_spec, load_dataset
from repro.graph.traversal import reachable_set

NAME = "HpyCyc"
spec = get_spec(NAME)
print(f"loading {NAME} stand-in: {spec.description}")
graph = load_dataset(NAME, seed=0)
print(f"  |V|={graph.num_nodes} |E|={graph.num_edges} "
      f"(paper: {spec.num_nodes}/{spec.num_edges})")

# ----------------------------------------------------------------------
# Build both dual schemes and compare their footprints.
# ----------------------------------------------------------------------
for scheme in ("dual-i", "dual-ii"):
    started = time.perf_counter()
    index = build_index(graph, scheme=scheme)
    elapsed = time.perf_counter() - started
    stats = index.stats()
    print(f"\n{scheme}: built in {elapsed * 1000:.0f} ms")
    print(f"  DAG after condensation : {stats.dag_nodes} nodes / "
          f"{stats.dag_edges} edges")
    print(f"  after MEG              : {stats.meg_edges} edges")
    print(f"  non-tree edges t       : {stats.t}")
    print(f"  space                  : {stats.total_space_bytes} bytes")

index = build_index(graph, scheme="dual-i")

# ----------------------------------------------------------------------
# Pathway queries: seeded random "metabolite" pairs.
# ----------------------------------------------------------------------
rng = random.Random(42)
nodes = list(graph.nodes())
print("\nsample pathway queries (can A be converted into B?):")
# A few random pairs (mostly negative on sparse graphs) plus pairs
# sampled along actual reaction chains (positive).
samples = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(3)]
hub = max(nodes[:500], key=lambda n: graph.out_degree(n))
downstream = sorted(reachable_set(graph, hub))
samples += [(hub, downstream[len(downstream) // 2]),
            (hub, downstream[-1])]
for a, b in samples:
    connected = index.reachable(a, b)
    print(f"  node {a:5d} -> node {b:5d}: "
          f"{'pathway exists' if connected else 'no pathway'}")

# ----------------------------------------------------------------------
# Interaction density: fraction of reachable pairs over a 100k sample —
# constant-time queries make this cheap.
# ----------------------------------------------------------------------
pairs = random_query_pairs(graph, 100_000, seed=1)
started = time.perf_counter()
hits = sum(index.reachable(u, v) for u, v in pairs)
elapsed = time.perf_counter() - started
print(f"\n100,000 random pair queries in {elapsed * 1000:.0f} ms "
      f"({elapsed * 10:.2f} µs/query)")
print(f"  {hits / 1000:.1f}% of sampled pairs are pathway-connected")

# ----------------------------------------------------------------------
# Hub analysis: sample candidate sources, rank by reachable-set size.
# ----------------------------------------------------------------------
candidates = rng.sample(nodes, 200)
hubs = sorted(((len(reachable_set(graph, node)), node)
               for node in candidates), reverse=True)[:5]
print("\ntop influence hubs among 200 sampled nodes:")
for size, node in hubs:
    print(f"  node {node:5d} reaches {size} nodes "
          f"({100 * size / graph.num_nodes:.1f}% of the network)")
