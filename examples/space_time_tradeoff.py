#!/usr/bin/env python3
"""The Dual-I / Dual-II / dual-rt space-time tradeoff (paper Section 4).

Sweeps graph density on single-rooted DAGs and shows, per scheme:
query latency (the paper's 100k-query protocol, scaled down) versus
index size — Dual-I's t×t TLC matrix buys O(1) queries, Dual-II's search
tree trades a log factor for much less space, dual-rt sits between with
linear-in-|T| space.  The transitive-closure matrix is printed as the
yardstick both are measured against.

Run:  python examples/space_time_tradeoff.py
"""

from repro.analysis.space import closure_matrix_bytes
from repro.bench.timing import measure_build_time, measure_query_time
from repro.bench.workloads import random_query_pairs
from repro.bench.experiments import preprocess
from repro.graph.generators import single_rooted_dag

N = 1500
QUERIES = 20_000
SCHEMES = ("dual-i", "dual-ii", "dual-rt")

print(f"single-rooted DAGs, n={N}, {QUERIES} random queries per point\n")
header = f"{'density':>8s} {'t':>5s} {'|T|':>6s}"
for scheme in SCHEMES:
    header += f" | {scheme:>7s}: µs/q {'bytes':>9s}"
header += f" | {'closure bytes':>13s}"
print(header)
print("-" * len(header))

for density in (1.05, 1.15, 1.25, 1.4, 1.6):
    m = int(N * density)
    graph = single_rooted_dag(N, m, max_fanout=5, seed=int(density * 100))
    dag, counters = preprocess(graph)
    pairs = random_query_pairs(dag, QUERIES, seed=9)

    row = f"{density:8.2f}"
    t_shown = False
    for scheme in SCHEMES:
        built = measure_build_time(dag, scheme, use_meg=False)
        stats = built.index.stats()
        if not t_shown:
            row += f" {stats.t:5d} {stats.transitive_links:6d}"
            t_shown = True
        queried = measure_query_time(built.index, pairs)
        row += (f" | {queried.microseconds_per_query:12.3f} "
                f"{stats.total_space_bytes:9d}")
    row += f" | {closure_matrix_bytes(counters['nodes_dag']):13d}"
    print(row)

print("""
Reading the table (the paper's Section 4 story):
 * dual-i queries stay flat (O(1)) while its bytes grow ~t² — it crosses
   the closure-matrix line once the graph stops being very sparse;
 * dual-ii pays ~log t per query and stays far smaller;
 * dual-rt is the cited range-temporal-aggregation alternative:
   O(log² t) queries with linear-in-|T| space.
Pick dual-i when t ≪ n (XML, metabolic networks); dual-ii/rt when space
matters or density creeps up.""")
