"""Unit tests for the range-temporal counter (merge-sort tree backend)."""

from __future__ import annotations

import pytest

from repro.core.intervals import assign_intervals
from repro.core.linktable import Link, LinkTable, build_link_table, transitive_link_table
from repro.core.tlc_rangetree import RangeTemporalCounter
from repro.graph.generators import random_dag
from repro.graph.spanning import spanning_forest


def _closed_table(graph):
    forest = spanning_forest(graph)
    labeling = assign_intervals(forest)
    return transitive_link_table(
        build_link_table(forest.nontree_edges, labeling))


def _brute_count(table, x_lo, x_hi, y):
    return sum(1 for lk in table.links
               if x_lo <= lk.tail < x_hi and lk.covers(y))


class TestRangeTemporalCounter:
    def test_empty(self, chain10):
        counter = RangeTemporalCounter(_closed_table(chain10))
        assert counter.count_alive(0, 100, 5) == 0
        assert counter.nbytes == 0

    def test_paper_example(self, paper_graph):
        counter = RangeTemporalCounter(_closed_table(paper_graph))
        # u=[9,11) reaching w (start 3): count tails in [9,11) alive at 3.
        assert counter.count_alive(9, 11, 3) == 1
        # Nothing with tail >= 11.
        assert counter.count_alive(11, 99, 3) == 0
        # Both 7->[1,5) and 9->[1,5) alive at y=2 with tails in [0,10).
        assert counter.count_alive(0, 10, 2) == 2

    def test_single_link(self):
        table = LinkTable(links=(Link(5, 2, 8),), xs=(5,), ys=(2,))
        counter = RangeTemporalCounter(table)
        assert counter.count_alive(5, 6, 3) == 1
        assert counter.count_alive(5, 6, 8) == 0
        assert counter.count_alive(6, 9, 3) == 0
        assert counter.count_alive(0, 5, 3) == 0

    def test_duplicate_tails(self):
        links = (Link(4, 0, 2), Link(4, 1, 3), Link(4, 5, 6))
        table = LinkTable(links=links, xs=(4,), ys=(0, 1, 5))
        counter = RangeTemporalCounter(table)
        assert counter.count_alive(4, 5, 1) == 2
        assert counter.count_alive(4, 5, 5) == 1
        assert counter.count_alive(4, 5, 4) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        g = random_dag(35, 90, seed=seed)
        table = _closed_table(g)
        if not table.links:
            pytest.skip("no non-tree edges")
        counter = RangeTemporalCounter(table)
        max_x = max(table.xs) + 2
        max_y = max(lk.head_end for lk in table.links) + 2
        for x_lo in range(0, max_x, 3):
            for x_hi in range(x_lo, max_x + 1, 4):
                for y in range(0, max_y, 3):
                    assert counter.count_alive(x_lo, x_hi, y) == \
                        _brute_count(table, x_lo, x_hi, y)

    def test_nbytes_scales_with_links(self, paper_graph):
        counter = RangeTemporalCounter(_closed_table(paper_graph))
        assert counter.nbytes > 0
        assert "links=3" in repr(counter)
