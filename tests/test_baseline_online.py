"""Unit tests for the online-BFS baseline index."""

from __future__ import annotations

import pytest

from repro.baselines.online import OnlineSearchIndex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from tests.conftest import assert_index_matches_oracle, sample_pairs


class TestOnlineSearchIndex:
    def test_diamond(self, diamond):
        assert_index_matches_oracle(OnlineSearchIndex.build(diamond),
                                    diamond)

    def test_snapshot_isolated_from_mutation(self, diamond):
        index = OnlineSearchIndex.build(diamond)
        diamond.remove_edge("a", "b")
        diamond.remove_edge("a", "c")
        # The index answers from its own snapshot.
        assert index.reachable("a", "d")

    def test_unknown_vertex_raises(self, diamond):
        index = OnlineSearchIndex.build(diamond)
        with pytest.raises(QueryError):
            index.reachable("ghost", "a")
        with pytest.raises(QueryError):
            index.reachable("a", "ghost")

    def test_unknown_option_rejected(self, diamond):
        with pytest.raises(TypeError):
            OnlineSearchIndex.build(diamond, bogus=1)

    def test_cyclic(self, two_cycle_graph):
        index = OnlineSearchIndex.build(two_cycle_graph)
        assert index.reachable(1, 0)
        assert not index.reachable(6, 0)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, seed):
        g = gnm_random_digraph(40, 100, seed=seed)
        index = OnlineSearchIndex.build(g)
        assert_index_matches_oracle(index, g, sample_pairs(g, 200, seed))

    def test_stats(self, diamond):
        stats = OnlineSearchIndex.build(diamond).stats()
        assert stats.scheme == "online-bfs"
        assert stats.space_bytes == {"adjacency": 2 * 4 * 4}

    def test_empty_graph(self):
        index = OnlineSearchIndex.build(DiGraph())
        with pytest.raises(QueryError):
            index.reachable(1, 1)

    def test_repr(self, diamond):
        assert "OnlineSearchIndex" in repr(OnlineSearchIndex.build(diamond))
