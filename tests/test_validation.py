"""Unit tests for the validation harness and its CLI command."""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.core.base import build_index
from repro.core.validation import validate_index
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph


class _LyingIndex:
    """An index that answers everything with True (for failure paths)."""

    scheme_name = "liar"

    def reachable(self, u, v):
        return True


class TestValidateIndex:
    def test_exhaustive_ok(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        report = validate_index(index, diamond)
        assert report.ok
        assert report.exhaustive
        assert report.num_checked == 16
        assert "OK" in report.summary()

    def test_sampled_mode(self):
        g = gnm_random_digraph(50, 120, seed=1)
        index = build_index(g, scheme="dual-ii")
        report = validate_index(index, g, sample=500, seed=2)
        assert report.ok
        assert not report.exhaustive
        assert report.num_checked == 500

    def test_large_graph_defaults_to_sampling(self):
        g = gnm_random_digraph(400, 500, seed=3)
        index = build_index(g, scheme="dual-i")
        report = validate_index(index, g, sample=200)
        assert not report.exhaustive
        assert report.ok

    def test_detects_lies(self, chain10):
        report = validate_index(_LyingIndex(), chain10)
        assert not report.ok
        assert "FAILED" in report.summary()
        u, v, answer, truth = report.mismatches[0]
        assert answer is True and truth is False

    def test_mismatch_cap(self, chain10):
        report = validate_index(_LyingIndex(), chain10,
                                max_mismatches=3)
        assert len(report.mismatches) == 3
        assert report.num_checked == 100  # still counted everything

    def test_empty_graph(self):
        g = DiGraph()
        index = build_index(g, scheme="dual-i")
        report = validate_index(index, g)
        assert report.ok
        assert report.num_checked == 0


class TestValidateCLI:
    def test_validate_ok(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        cli_main(["generate", "dag", "--nodes", "60", "--edges", "85",
                  "--out", str(graph_file)])
        assert cli_main(["validate", str(graph_file),
                         "--scheme", "dual-i"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_sampled(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        cli_main(["generate", "gnm", "--nodes", "80", "--edges", "160",
                  "--out", str(graph_file)])
        assert cli_main(["validate", str(graph_file), "--sample",
                         "300", "--scheme", "dual-ii"]) == 0
        out = capsys.readouterr().out
        assert "300 sampled pairs" in out
