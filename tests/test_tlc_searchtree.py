"""Unit tests for the TLC search tree (Dual-II's lookup structure)."""

from __future__ import annotations

import pytest

from repro.core.intervals import assign_intervals
from repro.core.linktable import build_link_table, transitive_link_table
from repro.core.tlc_matrix import tlc_function
from repro.core.tlc_searchtree import TLCSearchTree, build_tlc_search_tree
from repro.graph.generators import random_dag
from repro.graph.spanning import spanning_forest


def _closed_table(graph):
    forest = spanning_forest(graph)
    labeling = assign_intervals(forest)
    return transitive_link_table(
        build_link_table(forest.nontree_edges, labeling))


class TestConstruction:
    def test_empty_table(self, chain10):
        tree = build_tlc_search_tree(_closed_table(chain10))
        assert tree.num_rows == 0
        assert tree.count(0, 0) == 0
        assert tree.nbytes == 0

    def test_paper_rows(self, paper_graph):
        tree = build_tlc_search_tree(_closed_table(paper_graph))
        # Transitive links: 9->[6,9), 7->[1,5), 9->[1,5).
        # Endpoints: {1, 5, 6, 9}; at y=5 the alive set becomes empty,
        # at y=9 it becomes empty again.
        assert tree.row_ys == [1, 5, 6, 9]
        assert tree.rows == [[7, 9], [], [9], []]

    def test_row_count_bounded_by_2t(self):
        g = random_dag(50, 130, seed=1)
        table = _closed_table(g)
        tree = build_tlc_search_tree(table)
        base_t = len({(lk.tail, lk.head_start, lk.head_end)
                      for lk in table.links})
        assert tree.num_rows <= 2 * base_t

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TLCSearchTree([1, 2], [[1]])

    def test_collapsing_identical_rows(self):
        """Rows whose alive multiset does not change are not duplicated."""
        from repro.core.linktable import Link, LinkTable
        # Two links with the same tail: one dies at 5 exactly where the
        # other is born, leaving the alive multiset unchanged.
        links = (Link(4, 1, 5), Link(4, 5, 9))
        table = LinkTable(links=links, xs=(4,), ys=(1, 5))
        tree = build_tlc_search_tree(table)
        assert tree.row_ys == [1, 9]
        assert tree.rows == [[4], []]

    def test_repr(self, paper_graph):
        tree = build_tlc_search_tree(_closed_table(paper_graph))
        assert "rows=4" in repr(tree)


class TestCounts:
    def test_paper_values(self, paper_graph):
        tree = build_tlc_search_tree(_closed_table(paper_graph))
        assert tree.count(9, 3) == 1
        assert tree.count(11, 3) == 0
        assert tree.count(7, 1) == 2
        assert tree.count(0, 0) == 0  # below the first row

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_everywhere(self, seed):
        """N(x, y) from the tree equals Definition 1 at *arbitrary*
        coordinates, not only grid points."""
        g = random_dag(35, 90, seed=seed)
        table = _closed_table(g)
        if not table.links:
            pytest.skip("no non-tree edges")
        tree = build_tlc_search_tree(table)
        N = tlc_function(table)
        max_x = max(table.xs) + 2
        max_y = max(lk.head_end for lk in table.links) + 2
        for x in range(0, max_x, 1):
            for y in range(0, max_y, 1):
                assert tree.count(x, y) == N(x, y), (x, y)

    def test_entries_counted(self, paper_graph):
        tree = build_tlc_search_tree(_closed_table(paper_graph))
        assert tree.num_entries == sum(len(r) for r in tree.rows) == 3
        assert tree.nbytes == 4 * (4 + 3)
