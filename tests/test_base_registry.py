"""Unit tests for the scheme registry and the common index API."""

from __future__ import annotations

import pytest

import repro
from repro.core.base import (
    INT_BYTES,
    IndexStats,
    ReachabilityIndex,
    available_schemes,
    build_index,
    get_scheme,
    register_scheme,
)


class TestRegistry:
    def test_all_schemes_registered(self):
        assert set(available_schemes()) == {
            "dual-i", "dual-ii", "dual-rt", "interval", "2hop",
            "closure", "online-bfs", "grail", "chain-cover"}

    def test_get_scheme(self):
        from repro.core.dual_i import DualIIndex
        assert get_scheme("dual-i") is DualIIndex

    def test_unknown_scheme_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="dual-i"):
            get_scheme("nope")

    def test_build_index_default_scheme(self, diamond):
        index = build_index(diamond)
        assert index.stats().scheme == "dual-i"

    @pytest.mark.parametrize("scheme", [
        "dual-i", "dual-ii", "dual-rt", "interval", "2hop", "closure",
        "online-bfs", "grail", "chain-cover"])
    def test_build_index_every_scheme(self, scheme, diamond):
        index = build_index(diamond, scheme=scheme)
        assert index.reachable("a", "d")
        assert not index.reachable("d", "a")
        assert index.stats().scheme == scheme

    def test_register_requires_name(self):
        class Nameless(ReachabilityIndex):
            scheme_name = ""

            @classmethod
            def build(cls, graph, **options):  # pragma: no cover
                raise NotImplementedError

            def reachable(self, u, v):  # pragma: no cover
                raise NotImplementedError

            def stats(self):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_scheme(Nameless)

    def test_register_rejects_duplicates(self):
        class Duplicate(ReachabilityIndex):
            scheme_name = "dual-i"

            @classmethod
            def build(cls, graph, **options):  # pragma: no cover
                raise NotImplementedError

            def reachable(self, u, v):  # pragma: no cover
                raise NotImplementedError

            def stats(self):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_scheme(Duplicate)


class TestIndexStats:
    def test_total_space(self):
        stats = IndexStats(scheme="x", num_nodes=1, num_edges=1,
                           dag_nodes=1, dag_edges=1,
                           space_bytes={"a": 10, "b": 5})
        assert stats.total_space_bytes == 15

    def test_as_dict_flattens(self):
        stats = IndexStats(scheme="x", num_nodes=1, num_edges=1,
                           dag_nodes=1, dag_edges=1,
                           phase_seconds={"p": 0.5},
                           space_bytes={"a": 10})
        d = stats.as_dict()
        assert d["seconds_p"] == 0.5
        assert d["bytes_a"] == 10
        assert d["total_space_bytes"] == 10

    def test_int_bytes_constant(self):
        assert INT_BYTES == 4


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        g = repro.DiGraph([("fiction", "chapter"), ("chapter", "author")])
        index = repro.build_index(g, scheme="dual-i")
        assert index.reachable("fiction", "author")
        assert not index.reachable("author", "fiction")
