"""Unit tests for the executable fidelity claims."""

from __future__ import annotations

import pytest

from repro.bench.claims import (
    CLAIMS,
    ClaimResult,
    claim_2hop_orders_slower,
    claim_dual_i_fastest_labeled_queries,
    claim_dual_i_near_closure_queries,
    claim_dual_i_space_grows_dual_ii_flat,
    claim_dual_indexing_same_order_as_interval,
    claim_meg_reduces_t,
    claim_preprocessing_ratios_fall,
    claim_table2_counts_match_paper,
    claim_table2_dual_i_beats_interval,
    claim_tlc_backend_spectrum,
    evaluate_claims,
)
from repro.bench.experiments import ExperimentResult


def _result(name, rows):
    return ExperimentResult(name=name, title=name, rows=rows)


class TestFig8Claims:
    GOOD = _result("fig8", [
        {"node_ratio": 0.9, "edge_ratio": 0.9, "interval_index_ms": 10,
         "2hop_index_ms": 500, "dual-i_index_ms": 30,
         "dual-ii_index_ms": 20, "dual-i_query_ms": 30,
         "interval_query_ms": 60, "dual-ii_query_ms": 100},
        {"node_ratio": 0.4, "edge_ratio": 0.2, "interval_index_ms": 8,
         "2hop_index_ms": 200, "dual-i_index_ms": 25,
         "dual-ii_index_ms": 18, "dual-i_query_ms": 28,
         "interval_query_ms": 55, "dual-ii_query_ms": 90},
    ])

    def test_ratios_pass(self):
        assert claim_preprocessing_ratios_fall(self.GOOD).passed

    def test_ratios_fail_when_rising(self):
        bad = _result("fig8", [dict(self.GOOD.rows[1]),
                               dict(self.GOOD.rows[0])])
        assert not claim_preprocessing_ratios_fall(bad).passed

    def test_indexing_comparable_pass(self):
        assert claim_dual_indexing_same_order_as_interval(
            self.GOOD).passed

    def test_indexing_comparable_fail(self):
        rows = [dict(r, **{"dual-i_index_ms": 500})
                for r in self.GOOD.rows]
        assert not claim_dual_indexing_same_order_as_interval(
            _result("fig8", rows)).passed

    def test_2hop_slow_pass(self):
        assert claim_2hop_orders_slower(self.GOOD).passed

    def test_2hop_slow_fail(self):
        rows = [dict(r, **{"2hop_index_ms": 12}) for r in self.GOOD.rows]
        assert not claim_2hop_orders_slower(_result("fig8", rows)).passed

    def test_query_wins_pass(self):
        assert claim_dual_i_fastest_labeled_queries(self.GOOD).passed

    def test_query_wins_fail(self):
        rows = [dict(r, **{"dual-i_query_ms": 200})
                for r in self.GOOD.rows]
        assert not claim_dual_i_fastest_labeled_queries(
            _result("fig8", rows)).passed


class TestSpaceAndQueryClaims:
    def test_space_tradeoff(self):
        good = _result("fig12", [
            {"dual-i_space_bytes": 100, "dual-ii_space_bytes": 50},
            {"dual-i_space_bytes": 1000, "dual-ii_space_bytes": 80},
        ])
        assert claim_dual_i_space_grows_dual_ii_flat(good).passed
        bad = _result("fig12", [
            {"dual-i_space_bytes": 100, "dual-ii_space_bytes": 150},
            {"dual-i_space_bytes": 1000, "dual-ii_space_bytes": 80},
        ])
        assert not claim_dual_i_space_grows_dual_ii_flat(bad).passed

    def test_near_closure(self):
        good = _result("fig13", [
            {"closure_query_ms": 10, "dual-i_query_ms": 15}])
        assert claim_dual_i_near_closure_queries(good).passed
        bad = _result("fig13", [
            {"closure_query_ms": 10, "dual-i_query_ms": 100}])
        assert not claim_dual_i_near_closure_queries(bad).passed


class TestTable2Claims:
    def test_calibration(self):
        good = _result("table2", [
            {"V_DAG": 100, "paper_V_DAG": 100, "E_DAG": 110,
             "paper_E_DAG": 111, "E_MEG": 105, "paper_E_MEG": 105}])
        assert claim_table2_counts_match_paper(good).passed
        bad = _result("table2", [
            {"V_DAG": 100, "paper_V_DAG": 150, "E_DAG": 110,
             "paper_E_DAG": 111, "E_MEG": 105, "paper_E_MEG": 105}])
        assert not claim_table2_counts_match_paper(bad).passed

    def test_query_order(self):
        good = _result("table2", [
            {"graph": "X", "dual-i_query_ms": 40,
             "interval_query_ms": 60}])
        assert claim_table2_dual_i_beats_interval(good).passed
        bad = _result("table2", [
            {"graph": "X", "dual-i_query_ms": 90,
             "interval_query_ms": 60}])
        verdict = claim_table2_dual_i_beats_interval(bad)
        assert not verdict.passed
        assert "X" in verdict.details


class TestAblationClaims:
    def test_meg_helps(self):
        good = _result("ablation_meg", [
            {"m": 1, "meg_t": 5, "no_meg_t": 9,
             "meg_transitive_links": 7, "no_meg_transitive_links": 20}])
        assert claim_meg_reduces_t(good).passed
        bad = _result("ablation_meg", [
            {"m": 1, "meg_t": 12, "no_meg_t": 9,
             "meg_transitive_links": 7, "no_meg_transitive_links": 20}])
        assert not claim_meg_reduces_t(bad).passed

    def test_tlc_spectrum(self):
        good = _result("ablation_tlc", [
            {"dual-i_space_bytes": 1000, "dual-ii_space_bytes": 100,
             "dual-i_query_ms": 10, "dual-ii_query_ms": 30}])
        assert claim_tlc_backend_spectrum(good).passed
        bad = _result("ablation_tlc", [
            {"dual-i_space_bytes": 50, "dual-ii_space_bytes": 100,
             "dual-i_query_ms": 10, "dual-ii_query_ms": 30}])
        assert not claim_tlc_backend_spectrum(bad).passed


class TestEvaluateClaims:
    def test_skips_missing_experiments(self):
        verdicts = evaluate_claims({})
        assert verdicts == []

    def test_registry_complete(self):
        assert len(CLAIMS) == 10
        for claim_id, (experiment, predicate) in CLAIMS.items():
            assert callable(predicate)
            assert experiment in {"fig8", "fig12", "fig13", "table2",
                                  "ablation_meg", "ablation_tlc"}

    def test_summary_format(self):
        verdict = ClaimResult("x", "desc", True, "fine")
        assert verdict.summary() == "[PASS] x: desc — fine"
        verdict = ClaimResult("x", "desc", False, "broken")
        assert "[FAIL]" in verdict.summary()
