"""Unit and property tests for bitset helpers."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.bitset import (
    bit,
    contains,
    from_indices,
    iter_indices,
    mask,
    popcount,
    to_indices,
    union_all,
)


class TestBasics:
    def test_bit(self):
        assert bit(0) == 1
        assert bit(5) == 32

    def test_from_to_round_trip(self):
        assert to_indices(from_indices([3, 1, 4, 1])) == [1, 3, 4]

    def test_empty(self):
        assert from_indices([]) == 0
        assert to_indices(0) == []
        assert popcount(0) == 0

    def test_popcount(self):
        assert popcount(from_indices([0, 10, 63, 64, 1000])) == 5

    def test_contains(self):
        bits = from_indices([2, 7])
        assert contains(bits, 2)
        assert contains(bits, 7)
        assert not contains(bits, 3)
        assert not contains(bits, 0)

    def test_union_all(self):
        assert union_all([bit(0), bit(3), bit(0)]) == from_indices([0, 3])
        assert union_all([]) == 0

    def test_mask(self):
        assert mask(0) == 0
        assert mask(3) == 0b111
        assert popcount(mask(100)) == 100

    def test_iter_indices_sorted(self):
        assert list(iter_indices(from_indices([9, 2, 5]))) == [2, 5, 9]


class TestProperties:
    @given(st.sets(st.integers(min_value=0, max_value=500)))
    def test_round_trip(self, indices):
        assert set(to_indices(from_indices(indices))) == indices

    @given(st.sets(st.integers(min_value=0, max_value=500)),
           st.sets(st.integers(min_value=0, max_value=500)))
    def test_union_matches_set_union(self, a, b):
        bits = from_indices(a) | from_indices(b)
        assert set(to_indices(bits)) == a | b

    @given(st.sets(st.integers(min_value=0, max_value=500)),
           st.sets(st.integers(min_value=0, max_value=500)))
    def test_intersection_matches_set_intersection(self, a, b):
        bits = from_indices(a) & from_indices(b)
        assert set(to_indices(bits)) == a & b

    @given(st.sets(st.integers(min_value=0, max_value=500)))
    def test_popcount_is_len(self, indices):
        assert popcount(from_indices(indices)) == len(indices)
