"""The chaos soak acceptance test: the whole serving stack under a
seeded fault schedule must answer correctly and recover.

This is the slowest test in the suite (a real server, a chaos proxy,
sustained verified load, a SIGKILLed subprocess) — but it is the one
that actually proves the resilience features compose.
"""

from __future__ import annotations

import pytest

from repro.testing.chaos import (
    DEFAULT_FAULT_KINDS,
    FLEET_FAULT_KINDS,
    ChaosReport,
    IsolationReport,
    run_chaos_soak,
    run_tenant_isolation_soak,
)


class TestChaosReport:
    def _base(self, **overrides) -> ChaosReport:
        report = ChaosReport(seed=0, scheme="dual-ii",
                             duration_seconds=1.0, recovery_timeout=1.0)
        report.loadgen = {"ok": 100}
        report.faults = [{"kind": "sever", "at": 0.1,
                          "recovery_seconds": 0.05}]
        for key, value in overrides.items():
            setattr(report, key, value)
        return report

    def test_ok_requires_all_invariants(self):
        assert self._base().ok()
        assert not self._base(wrong_answers=1).ok()
        assert not self._base(driver_errors=["boom"]).ok()
        assert not self._base(loadgen={"ok": 0}).ok()
        unrecovered = self._base()
        unrecovered.faults.append(
            {"kind": "garble", "at": 0.5, "recovery_seconds": None})
        assert unrecovered.unrecovered == ["garble"]
        assert not unrecovered.ok()

    def test_round_trips_and_summarises(self):
        report = self._base()
        doc = report.as_dict()
        assert doc["ok"] is True
        assert doc["faults"][0]["kind"] == "sever"
        text = "\n".join(report.summary_lines())
        assert "PASS" in text and "sever" in text


@pytest.mark.slow
class TestChaosSoak:
    """The end-to-end acceptance run (ISSUE: >= 5 distinct fault
    kinds, zero wrong answers, bounded recovery)."""

    def test_soak_survives_every_fault_kind(self, tmp_path):
        assert len(DEFAULT_FAULT_KINDS) >= 5
        report = run_chaos_soak(seed=7, duration=6.0, nodes=100,
                                recovery_timeout=8.0,
                                workdir=tmp_path)
        detail = "\n".join(report.summary_lines())

        # Every scheduled fault actually fired...
        fired = sorted(f["kind"] for f in report.faults)
        assert fired == sorted(DEFAULT_FAULT_KINDS), detail
        assert not report.driver_errors, detail
        # ...was observably injected...
        assert report.injected_kernel_faults > 0, detail
        assert report.proxy["severed"] > 0, detail
        assert report.proxy["garbled_chunks"] > 0, detail
        assert report.degraded_observed, detail
        # ...and the stack recovered from each within the bound,
        assert report.unrecovered == [], detail
        # while never answering a single query incorrectly.
        assert report.wrong_answers == 0, detail
        assert report.loadgen["ok"] > 0, detail
        assert report.ok(), detail

    def test_soak_traffic_saw_real_failures(self, tmp_path):
        # A soak in which nothing ever failed proves nothing; the
        # loadgen's taxonomy must show the faults from the outside.
        report = run_chaos_soak(seed=11, duration=5.0, nodes=80,
                                recovery_timeout=8.0,
                                kinds=("sever", "flush_error"),
                                faults_per_kind=2,
                                workdir=tmp_path)
        detail = "\n".join(report.summary_lines())
        assert report.ok(), detail
        codes = report.loadgen["error_codes"]
        assert report.loadgen["reconnects"] > 0, detail
        assert codes.get("reset", 0) > 0, detail


@pytest.mark.slow
class TestFleetChaosSoak:
    """Satellite 3: the worker fleet under process-level faults.

    Zero wrong answers and bounded recovery must hold when workers are
    SIGKILLed (supervisor respawn) and SIGSTOPped (the hung worker's
    listen queue blackholes connections until the liveness probe
    replaces it) — on top of the full network/reload vocabulary."""

    def test_fleet_mode_validates_kinds(self):
        with pytest.raises(ValueError, match="worker fleet"):
            run_chaos_soak(kinds=("worker_kill",), workers=0)
        with pytest.raises(ValueError, match="flush_error"):
            run_chaos_soak(kinds=("flush_error",), workers=2)

    def test_fleet_soak_survives_process_faults(self, tmp_path):
        assert "worker_kill" in FLEET_FAULT_KINDS
        assert "worker_hang" in FLEET_FAULT_KINDS
        assert "flush_error" not in FLEET_FAULT_KINDS
        report = run_chaos_soak(seed=5, duration=6.0, nodes=100,
                                recovery_timeout=8.0, workers=2,
                                workdir=tmp_path)
        detail = "\n".join(report.summary_lines())

        fired = sorted(f["kind"] for f in report.faults)
        assert fired == sorted(FLEET_FAULT_KINDS), detail
        assert not report.driver_errors, detail
        # The process faults actually happened and were healed: the
        # supervisor restarted at least one worker (kill and/or the
        # probe-killed hang) and the fleet still moved generations.
        assert report.fleet["restarts"] >= 1, detail
        assert report.fleet["swaps"] >= 1, detail
        assert report.fleet["workers"] == 2, detail
        assert report.degraded_observed, detail
        assert report.unrecovered == [], detail
        assert report.wrong_answers == 0, detail
        assert report.loadgen["ok"] > 0, detail
        assert report.ok(), detail
        assert report.workers == 2
        assert report.as_dict()["fleet"]["restarts"] >= 1
        assert "fleet of 2 workers" in detail


class TestIsolationReport:
    def _base(self, **overrides) -> IsolationReport:
        report = IsolationReport(seed=0, scheme="dual-ii",
                                 duration_seconds=1.0, workers=2,
                                 p99_limit=2.0, p99_floor_ms=25.0)
        report.baseline = {"ok": 200, "latency_p99_ms": 20.0}
        report.victim = {"ok": 300, "wrong_answers": 0,
                         "latency_p99_ms": 30.0}
        report.aggressor = {"ok": 50,
                            "error_codes": {"overloaded": 400}}
        report.faults = [{"kind": "worker_kill", "at": 0.4}]
        for key, value in overrides.items():
            setattr(report, key, value)
        return report

    def test_ok_requires_every_isolation_invariant(self):
        assert self._base().ok()
        assert not self._base(driver_errors=["boom"]).ok()
        assert not self._base(baseline={"ok": 0}).ok()
        # One wrong answer for the victim is an isolation breach.
        broken = self._base()
        broken.victim = dict(broken.victim, wrong_answers=1)
        assert not broken.ok()
        # A soak in which A never tripped admission proves nothing.
        quiet = self._base()
        quiet.aggressor = {"ok": 50, "error_codes": {}}
        assert not quiet.overload_observed and not quiet.ok()

    def test_p99_bound_is_limit_times_baseline_or_floor(self):
        report = self._base()
        assert report.victim_p99_bound_ms == 40.0  # 2.0 x 20ms
        slow_victim = self._base()
        slow_victim.victim = dict(slow_victim.victim,
                                  latency_p99_ms=40.1)
        assert not slow_victim.ok()
        # A sub-millisecond quiet baseline falls back to the floor,
        # absorbing scheduler noise instead of failing spuriously.
        floored = self._base()
        floored.baseline = {"ok": 200, "latency_p99_ms": 0.4}
        floored.victim = dict(floored.victim, latency_p99_ms=24.0)
        assert floored.victim_p99_bound_ms == 25.0
        assert floored.ok()

    def test_round_trips_and_summarises(self):
        report = self._base()
        doc = report.as_dict()
        assert doc["ok"] is True
        assert doc["overload_observed"] is True
        assert doc["victim_p99_bound_ms"] == 40.0
        text = "\n".join(report.summary_lines())
        assert "PASS" in text and "worker_kill" in text
        assert "shed by per-tenant admission" in text


@pytest.mark.slow
class TestTenantIsolationSoak:
    """The multi-tenant acceptance run (ISSUE: tenant A overloaded and
    losing workers, tenant B must see zero wrong answers and a bounded
    p99)."""

    def test_victim_tenant_is_unaffected_by_aggressor(self):
        # p99_limit stays 2.0 everywhere operators run the soak (CLI
        # default, the CI isolation smoke); this in-suite run shares a
        # single core with the rest of the slow tests, which inflates
        # baseline and victim tails unevenly, so it gets headroom —
        # a real isolation breach blows past any constant factor.
        report = run_tenant_isolation_soak(seed=3, duration=3.0,
                                           nodes=120, workers=2,
                                           baseline_duration=1.0,
                                           worker_kills=1,
                                           p99_limit=2.5)
        detail = "\n".join(report.summary_lines())
        assert not report.driver_errors, detail
        # The aggressor genuinely tripped per-tenant admission...
        assert report.overload_observed, detail
        # ...and workers really died mid-soak...
        assert [f["kind"] for f in report.faults] == ["worker_kill"], \
            detail
        assert report.fleet.get("restarts", 0) >= 1, detail
        # ...while tenant B stayed correct and within its p99 bound.
        assert report.victim["wrong_answers"] == 0, detail
        assert report.victim["ok"] > 0, detail
        assert report.victim["latency_p99_ms"] <= \
            report.victim_p99_bound_ms, detail
        assert report.ok(), detail
