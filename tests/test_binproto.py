"""The binary wire protocol: codecs, framing, and live edge cases.

Unit tests pin the frame/bitmap encodings and the codec seam; the
live-server tests drive a real gateway over raw sockets and assert the
resync contract frame by frame: in-sync request errors (unknown
opcode, ragged length, pair caps, unknown node ids) answer and keep
the connection, desync-class errors (bad magic, oversized length
header, CRC mismatch) answer once and close, a truncated frame just
ends the connection, and mid-stream renegotiation on a JSON connection
is rejected without breaking that connection.  A JSON-only stub server
proves the client-side fallback (``binary_unsupported``) for both
:class:`~repro.server.client.BinaryReachClient` and the load
generator.
"""

from __future__ import annotations

import json
import socket
import socketserver
import struct
import threading
import zlib
from contextlib import contextmanager

import pytest

from repro.core.base import build_index
from repro.core.service import QueryService
from repro.server import binproto
from repro.server.binproto import (
    BINARY_CODEC,
    ERROR_CODES,
    FRAME_MAGIC,
    HEADER,
    HEADER_SIZE,
    MAGIC_LINE,
    OP_ANSWERS,
    OP_BATCH,
    OP_ERROR,
    OP_HELLO,
    OP_PING,
    OP_PONG,
)
from repro.server.client import (
    BinaryReachClient,
    ReachClient,
    ServerReplyError,
)
from repro.server.loadgen import run_loadgen
from repro.server.protocol import JSON_CODEC, ProtocolError, encode_message
from repro.server.server import ReachServer, ServerConfig, ServerThread
from tests.test_differential import FAMILIES


@contextmanager
def serve(index, scheme: str = "dual-i", **config_kwargs):
    """A gateway over ``index`` on a background thread."""
    server = ReachServer(QueryService(index), scheme=scheme,
                         config=ServerConfig(**config_kwargs))
    handle = ServerThread(server).start()
    try:
        yield handle
    finally:
        handle.stop()


@contextmanager
def negotiated(port: int):
    """A raw socket that has completed binary negotiation; yields
    ``(sock, reader, hello)``."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=30.0) as sock:
        reader = sock.makefile("rb")
        sock.sendall(MAGIC_LINE)
        opcode, rid, payload = read_frame(reader)
        assert opcode == OP_HELLO
        yield sock, reader, binproto.decode_hello(payload)
        reader.close()


def read_frame(reader) -> tuple[int, int, bytes]:
    """One validated reply frame from a socket file reader."""
    head = reader.read(HEADER_SIZE)
    assert len(head) == HEADER_SIZE, f"short header: {head!r}"
    magic, opcode, reserved, rid, plen, crc = HEADER.unpack(head)
    assert magic == FRAME_MAGIC and reserved == 0
    payload = reader.read(plen) if plen else b""
    assert len(payload) == plen
    assert zlib.crc32(payload) == crc
    return opcode, rid, payload


def batch_frame(request_id: int, pairs) -> bytes:
    return binproto.encode_frame(OP_BATCH, request_id,
                                 binproto.encode_pairs(pairs))


# ---------------------------------------------------------------------
# unit: encodings and the codec seam
# ---------------------------------------------------------------------

class TestEncoding:
    def test_frame_roundtrip(self):
        frame = binproto.encode_frame(OP_BATCH, 0xDEADBEEF, b"payload")
        magic, opcode, reserved, rid, plen, crc = HEADER.unpack(
            frame[:HEADER_SIZE])
        assert (magic, opcode, reserved) == (FRAME_MAGIC, OP_BATCH, 0)
        assert rid == 0xDEADBEEF
        assert plen == 7 and frame[HEADER_SIZE:] == b"payload"
        assert crc == zlib.crc32(b"payload")

    def test_request_id_is_masked_to_u32(self):
        frame = binproto.encode_frame(OP_PING, 2**40 + 5)
        assert HEADER.unpack(frame)[3] == 5

    @pytest.mark.parametrize("count", range(18))
    def test_bitmap_roundtrip(self, count):
        answers = [(i * 5) % 3 == 0 for i in range(count)]
        bitmap = binproto.pack_bitmap(answers)
        assert len(bitmap) == (count + 7) // 8
        assert binproto.unpack_bitmap(count, bitmap) == answers

    def test_unpack_bitmap_rejects_short_buffers(self):
        with pytest.raises(ProtocolError):
            binproto.unpack_bitmap(9, b"\xff")

    def test_encode_pairs_shape_check(self):
        assert binproto.encode_pairs([]) == b""
        assert binproto.encode_pairs([(1, 2)]) == struct.pack("<II", 1, 2)
        with pytest.raises(ValueError):
            binproto.encode_pairs([(1, 2, 3)])

    def test_decode_hello_rejects_short_payload(self):
        with pytest.raises(ProtocolError):
            binproto.decode_hello(b"\x00" * 11)

    def test_error_code_table_is_a_bijection(self):
        assert len(set(ERROR_CODES.values())) == len(ERROR_CODES)
        assert binproto.ERROR_NAMES == {
            byte: name for name, byte in ERROR_CODES.items()}

    def test_error_frame_unknown_code_maps_to_internal(self):
        frame = binproto.encode_error_frame(7, "no_such_code", "boom")
        payload = frame[HEADER_SIZE:]
        assert payload[0] == ERROR_CODES["internal"]
        assert payload[1:] == b"boom"


class TestCodecs:
    def test_binary_codec_answers(self):
        frame = BINARY_CODEC.encode_ok(3, (2, b"\x02"))
        opcode = frame[1]
        assert opcode == OP_ANSWERS
        payload = frame[HEADER_SIZE:]
        assert struct.unpack_from("<I", payload)[0] == 2
        assert binproto.unpack_bitmap(2, payload[4:]) == [False, True]

    def test_binary_codec_pong(self):
        assert BINARY_CODEC.encode_ok(1, "pong")[1] == OP_PONG

    def test_binary_codec_inexpressible_result_is_internal_error(self):
        frame = BINARY_CODEC.encode_ok(1, {"status": "ok"})
        assert frame[1] == OP_ERROR
        assert frame[HEADER_SIZE] == ERROR_CODES["internal"]

    @pytest.mark.parametrize("result", [
        True, False, [True, False, True], [], "pong",
        {"status": "ok"}, 42,
    ])
    def test_json_codec_matches_encode_message(self, result):
        line = JSON_CODEC.encode_ok(9, result)
        assert json.loads(line) == json.loads(encode_message(
            {"id": 9, "ok": True, "result": result}))

    def test_json_codec_error(self):
        line = JSON_CODEC.encode_error(2, "bad_request", "nope")
        reply = json.loads(line)
        assert reply == {"id": 2, "ok": False, "error": "bad_request",
                         "message": "nope"}


# ---------------------------------------------------------------------
# live server: negotiation, answers, and the resync contract
# ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    return FAMILIES["sparse-dag"](0)


@pytest.fixture(scope="module")
def index(graph):
    return build_index(graph, scheme="dual-i")


class TestLiveServer:
    def test_hello_advertises_server_limits(self, index):
        with serve(index, max_request_pairs=123) as handle, \
                negotiated(handle.port) as (sock, reader, hello):
            assert hello["version"] == binproto.BINARY_VERSION
            assert hello["max_pairs"] == 123

    def test_batch_differential_vs_json_client(self, graph, index):
        nodes = sorted(graph.nodes())
        pairs = [(u, v) for u in nodes for v in nodes]
        with serve(index) as handle:
            with ReachClient(port=handle.port) as json_client:
                expected = json_client.query_batch(pairs)
            with BinaryReachClient(port=handle.port) as client:
                assert client.query_batch(pairs) == expected
                assert client.ping() == "pong"
                u, v = pairs[0]
                assert client.query(u, v) == expected[0]

    def test_zero_pair_batch(self, index):
        with serve(index) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            sock.sendall(batch_frame(5, []))
            opcode, rid, payload = read_frame(reader)
            assert (opcode, rid) == (OP_ANSWERS, 5)
            assert payload == struct.pack("<I", 0)

    def test_unknown_node_answers_and_keeps_connection(self, graph,
                                                       index):
        nodes = sorted(graph.nodes())
        with serve(index) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            sock.sendall(batch_frame(1, [(nodes[0], 10**6)]))
            opcode, rid, payload = read_frame(reader)
            assert (opcode, rid) == (OP_ERROR, 1)
            assert payload[0] == ERROR_CODES["unknown_node"]
            # The connection keeps serving after the in-sync error.
            sock.sendall(batch_frame(2, [(nodes[0], nodes[0])]))
            opcode, rid, payload = read_frame(reader)
            assert (opcode, rid) == (OP_ANSWERS, 2)
            assert binproto.unpack_bitmap(1, payload[4:]) == [True]

    def test_unknown_opcode_answers_and_keeps_connection(self, graph,
                                                         index):
        nodes = sorted(graph.nodes())
        with serve(index) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            sock.sendall(binproto.encode_frame(0x55, 9, b""))
            opcode, rid, payload = read_frame(reader)
            assert (opcode, rid) == (OP_ERROR, 9)
            assert payload[0] == ERROR_CODES["bad_request"]
            sock.sendall(batch_frame(10, [(nodes[0], nodes[1])]))
            assert read_frame(reader)[0] == OP_ANSWERS

    def test_ragged_batch_length_answers_and_keeps_connection(
            self, graph, index):
        nodes = sorted(graph.nodes())
        with serve(index) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            sock.sendall(binproto.encode_frame(OP_BATCH, 3, b"\x00" * 12))
            opcode, rid, payload = read_frame(reader)
            assert (opcode, rid) == (OP_ERROR, 3)
            assert payload[0] == ERROR_CODES["bad_request"]
            sock.sendall(batch_frame(4, [(nodes[0], nodes[1])]))
            assert read_frame(reader)[0] == OP_ANSWERS

    def test_pair_cap_answers_and_keeps_connection(self, graph, index):
        nodes = sorted(graph.nodes())
        with serve(index, max_request_pairs=2) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            sock.sendall(batch_frame(
                7, [(nodes[0], nodes[1])] * 3))
            opcode, rid, payload = read_frame(reader)
            assert (opcode, rid) == (OP_ERROR, 7)
            assert payload[0] == ERROR_CODES["too_large"]
            sock.sendall(batch_frame(8, [(nodes[0], nodes[1])]))
            assert read_frame(reader)[0] == OP_ANSWERS

    def test_truncated_frame_closes_silently(self, index):
        with serve(index) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            frame = batch_frame(1, [(0, 1), (1, 2)])
            sock.sendall(frame[:-5])  # header promises more payload
            sock.shutdown(socket.SHUT_WR)
            # Truncation at EOF gets no error reply — just the close.
            assert reader.read() == b""

    def test_oversized_length_header_errors_then_closes(self, index):
        with serve(index, max_line_bytes=4096) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            sock.sendall(HEADER.pack(FRAME_MAGIC, OP_BATCH, 0, 11,
                                     1 << 20, 0))
            opcode, rid, payload = read_frame(reader)
            assert (opcode, rid) == (OP_ERROR, 11)
            assert payload[0] == ERROR_CODES["too_large"]
            assert reader.read() == b""  # connection closed

    def test_crc_mismatch_errors_then_closes(self, index):
        with serve(index) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            frame = bytearray(batch_frame(13, [(0, 1)]))
            frame[-1] ^= 0xFF  # garble the payload, keep the header
            sock.sendall(bytes(frame))
            opcode, rid, payload = read_frame(reader)
            assert (opcode, rid) == (OP_ERROR, 13)
            assert payload[0] == ERROR_CODES["bad_request"]
            assert reader.read() == b""

    def test_bad_magic_errors_then_closes(self, index):
        with serve(index) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            sock.sendall(HEADER.pack(0x42, OP_BATCH, 0, 1, 0, 0))
            opcode, _, payload = read_frame(reader)
            assert opcode == OP_ERROR
            assert payload[0] == ERROR_CODES["bad_request"]
            assert reader.read() == b""

    def test_ping_frame(self, index):
        with serve(index) as handle, \
                negotiated(handle.port) as (sock, reader, _):
            sock.sendall(binproto.encode_frame(OP_PING, 21))
            assert read_frame(reader)[:2] == (OP_PONG, 21)

    def test_midstream_renegotiation_rejected_on_json_connection(
            self, graph, index):
        nodes = sorted(graph.nodes())
        with serve(index) as handle, \
                socket.create_connection(("127.0.0.1", handle.port),
                                         timeout=30.0) as sock:
            reader = sock.makefile("rb")
            sock.sendall(encode_message(
                {"id": 1, "verb": "query", "u": nodes[0],
                 "v": nodes[0]}))
            assert json.loads(reader.readline())["ok"] is True
            # The magic line after a served request must NOT switch
            # modes: the reply is a JSON error and JSON keeps working.
            sock.sendall(MAGIC_LINE)
            reply = json.loads(reader.readline())
            assert reply["ok"] is False
            assert reply["error"] == "bad_request"
            sock.sendall(encode_message(
                {"id": 2, "verb": "query", "u": nodes[0],
                 "v": nodes[0]}))
            assert json.loads(reader.readline())["ok"] is True
            reader.close()

    def test_loadgen_binary_verified_against_direct_answers(
            self, graph, index):
        nodes = sorted(graph.nodes())
        pairs = [(u, v) for u in nodes for v in nodes][:256]
        with QueryService(build_index(graph, scheme="dual-i")) as direct:
            expected = direct.query_batch(pairs)
        with serve(index) as handle:
            result = run_loadgen("127.0.0.1", handle.port, pairs,
                                 connections=2, duration=0.5,
                                 pipeline=4, batch_size=16,
                                 expected=expected, protocol="binary")
        assert result.ok > 0
        assert result.wrong_answers == 0, result.mismatch_samples
        assert not result.errors, result.errors


# ---------------------------------------------------------------------
# JSON-only peers: the fallback story
# ---------------------------------------------------------------------

class _JsonOnlyHandler(socketserver.StreamRequestHandler):
    """Answers every newline-terminated request with a JSON error —
    the behaviour of a gateway predating the binary protocol."""

    def handle(self):
        while True:
            line = self.rfile.readline()
            if not line:
                return
            self.wfile.write(encode_message(
                {"id": None, "ok": False, "error": "bad_request",
                 "message": "invalid JSON"}))
            self.wfile.flush()


@contextmanager
def json_only_server():
    server = socketserver.ThreadingTCPServer(
        ("127.0.0.1", 0), _JsonOnlyHandler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()


class TestJsonOnlyFallback:
    def test_binary_client_reports_binary_unsupported(self):
        with json_only_server() as port:
            with pytest.raises(ServerReplyError) as excinfo:
                BinaryReachClient(port=port)
            assert excinfo.value.code == "binary_unsupported"

    def test_loadgen_binary_counts_binary_unsupported(self):
        with json_only_server() as port:
            result = run_loadgen("127.0.0.1", port, [(0, 1)],
                                 connections=2, duration=0.5,
                                 pipeline=2, batch_size=1,
                                 protocol="binary")
        assert result.errors.get("binary_unsupported") == 2
        assert result.ok == 0
