"""Durable service state: journal, checkpoint, recovery, quarantine.

Unit-level proof of the ``--state-dir`` contracts
(:mod:`repro.server.durability`):

* a torn journal tail — truncation at *every* byte offset of the
  final record — recovers with that record fully applied or fully
  dropped, never half-applied;
* mid-journal corruption (not a torn tail) quarantines the journal to
  ``*.corrupt`` and raises the typed :class:`CorruptJournalError`;
  the *next* recovery succeeds from the last checkpoint;
* checkpoint compaction bounds journal growth and survives round
  trips;
* generation-retention GC keeps exactly the retained artifact window
  and never touches quarantined files;
* a corrupt saved-index artifact is quarantined at boot
  (:func:`restore_catalog`) and degrades the entry instead of
  crashing startup.
"""

from __future__ import annotations

import shutil

import pytest

from repro.core.base import build_index
from repro.exceptions import CorruptJournalError
from repro.graph.generators import gnm_random_digraph
from repro.server.durability import (
    INDEX_DIR,
    JOURNAL_NAME,
    DurableState,
    restore_catalog,
)


@pytest.fixture
def index():
    return build_index(gnm_random_digraph(40, 80, seed=7),
                       scheme="dual-i")


def _fresh(path, **kwargs) -> DurableState:
    state = DurableState(path, **kwargs)
    state.recover()
    return state


class TestJournalRoundTrip:
    def test_mutations_survive_reopen(self, tmp_path, index):
        state = _fresh(tmp_path)
        state.record_create("tA", index_id=1, scheme="dual-i",
                            quota={"rate": 5.0})
        artifact = state.save_index(index, "tA", 1)
        state.record_install("tA", index_id=1, scheme="dual-i",
                            generation=1, label_bytes=123,
                            artifact=artifact)
        state.record_drop("tA")
        state.record_create("tB", index_id=2, scheme="dual-ii",
                            quota={})
        state.close()

        reopened = _fresh(tmp_path)
        names = {e.name for e in reopened.entries()}
        assert names == {"tB"}
        entry = reopened.entry("tB")
        assert entry.scheme == "dual-ii"
        assert entry.generation == 0
        assert reopened.next_generation("tB") == 1
        reopened.close()

    def test_recovered_gate(self, tmp_path):
        state = DurableState(tmp_path)
        with pytest.raises(CorruptJournalError):
            state.record_create("tA", index_id=1, scheme="dual-i",
                                quota={})


class TestTornTail:
    def test_every_truncation_offset_is_atomic(self, tmp_path, index):
        """The power-loss contract, exhaustively: chop the journal at
        every byte offset inside the final record and recover."""
        base = tmp_path / "base"
        state = _fresh(base, checkpoint_interval=100)
        state.record_create("tA", index_id=1, scheme="dual-i",
                            quota={})
        before = state.journal_path.read_bytes()
        state.record_create("tB", index_id=2, scheme="dual-i",
                            quota={})
        state.close()
        full = (base / JOURNAL_NAME).read_bytes()
        assert full[:len(before)] == before

        for offset in range(len(before), len(full) + 1):
            work = tmp_path / f"cut{offset}"
            shutil.copytree(base, work)
            (work / JOURNAL_NAME).write_bytes(full[:offset])
            recovered = _fresh(work, checkpoint_interval=100)
            names = {e.name for e in recovered.entries()}
            # Fully applied or fully dropped — never a hybrid.
            assert names in ({"tA"}, {"tA", "tB"}), offset
            if offset < len(full):
                assert names == {"tA"}, offset
            # The truncated tail is gone for good: appending works
            # and a further reopen sees a consistent journal.
            recovered.record_create("tC", index_id=3,
                                    scheme="dual-i", quota={})
            recovered.close()
            again = _fresh(work, checkpoint_interval=100)
            assert "tC" in {e.name for e in again.entries()}
            again.close()
            shutil.rmtree(work)

    def test_quota_record_truncation_is_atomic(self, tmp_path):
        """The ``quota`` record type (admission updates journaled by
        the operations plane) honours the same power-loss contract:
        chopped at any byte, the update is fully applied or fully
        dropped — never a half-written quota."""
        base = tmp_path / "base"
        state = _fresh(base, checkpoint_interval=100)
        state.record_create("tA", index_id=1, scheme="dual-i",
                            quota={"rate": 5.0})
        before = state.journal_path.read_bytes()
        state.record_quota("tA", {"rate": 9.0, "burst": 18.0})
        state.close()
        full = (base / JOURNAL_NAME).read_bytes()
        assert full[:len(before)] == before

        for offset in range(len(before), len(full) + 1):
            work = tmp_path / f"cut{offset}"
            shutil.copytree(base, work)
            (work / JOURNAL_NAME).write_bytes(full[:offset])
            recovered = _fresh(work, checkpoint_interval=100)
            quota = recovered.entry("tA").quota
            assert quota in ({"rate": 5.0},
                             {"rate": 9.0, "burst": 18.0}), offset
            if offset < len(full):
                assert quota == {"rate": 5.0}, offset
            recovered.close()
            shutil.rmtree(work)

    def test_quota_for_dropped_entry_replays_as_noop(self, tmp_path):
        """Replay tolerates a quota record whose entry a later drop
        removed — the checkpoint may have compacted the create away."""
        state = _fresh(tmp_path, checkpoint_interval=100)
        state.record_create("tA", index_id=1, scheme="dual-i",
                            quota={})
        state.record_quota("tA", {"rate": 3.0})
        state.record_drop("tA")
        state.record_quota("tA", {"rate": 7.0})  # stale broadcast
        state.close()
        recovered = _fresh(tmp_path, checkpoint_interval=100)
        assert recovered.entries() == []
        recovered.close()

    def test_zero_filled_tail_is_truncated(self, tmp_path):
        """A pre-allocated-but-unwritten tail (all zero bytes, the
        classic power-loss artifact) is a torn tail, not corruption."""
        state = _fresh(tmp_path)
        state.record_create("tA", index_id=1, scheme="dual-i",
                            quota={})
        state.close()
        with open(tmp_path / JOURNAL_NAME, "ab") as fh:
            fh.write(b"\x00" * 64)
        recovered = _fresh(tmp_path)
        assert {e.name for e in recovered.entries()} == {"tA"}
        recovered.close()


class TestMidJournalCorruption:
    def test_quarantines_and_raises_typed_error(self, tmp_path):
        state = _fresh(tmp_path, checkpoint_interval=100)
        state.record_create("tA", index_id=1, scheme="dual-i",
                            quota={})
        first = state.journal_path.read_bytes()
        state.record_create("tB", index_id=2, scheme="dual-i",
                            quota={})
        state.close()

        journal = tmp_path / JOURNAL_NAME
        blob = bytearray(journal.read_bytes())
        blob[len(first) // 2] ^= 0x55  # flip mid-record-one: not a tail
        journal.write_bytes(bytes(blob))

        state = DurableState(tmp_path, checkpoint_interval=100)
        with pytest.raises(CorruptJournalError) as excinfo:
            state.recover()
        assert excinfo.value.quarantined
        assert not journal.exists()
        corrupt = list(tmp_path.glob(f"{JOURNAL_NAME}.corrupt*"))
        assert corrupt, "journal must be preserved for forensics"

        # The next start recovers cleanly (here: to the empty
        # pre-journal state, as no checkpoint had been cut).
        recovered = _fresh(tmp_path, checkpoint_interval=100)
        assert recovered.entries() == []
        assert recovered.recovered
        recovered.close()

    def test_checkpointed_state_survives_journal_loss(self, tmp_path):
        state = _fresh(tmp_path, checkpoint_interval=100)
        state.record_create("tA", index_id=1, scheme="dual-i",
                            quota={})
        state.checkpoint()  # tA now lives in the manifest
        state.record_create("tB", index_id=2, scheme="dual-i",
                            quota={})
        state.record_create("tC", index_id=3, scheme="dual-i",
                            quota={})
        state.close()

        # Corrupt the first post-checkpoint record's payload; tC
        # after it makes this mid-journal damage, not a torn tail.
        journal = tmp_path / JOURNAL_NAME
        blob = bytearray(journal.read_bytes())
        blob[12] ^= 0xFF
        journal.write_bytes(bytes(blob))

        broken = DurableState(tmp_path, checkpoint_interval=100)
        with pytest.raises(CorruptJournalError):
            broken.recover()
        recovered = _fresh(tmp_path, checkpoint_interval=100)
        assert {e.name for e in recovered.entries()} == {"tA"}
        recovered.close()


class TestCheckpointCompaction:
    def test_auto_checkpoint_bounds_the_journal(self, tmp_path):
        state = _fresh(tmp_path, checkpoint_interval=3)
        for i in range(10):
            state.record_create(f"t{i}", index_id=i + 1,
                                scheme="dual-i", quota={})
            assert state.status()["journal_records"] < 3
        status = state.status()
        assert status["checkpoints"] >= 3
        assert status["seq"] == 10
        state.close()

        recovered = _fresh(tmp_path, checkpoint_interval=3)
        assert len(recovered.entries()) == 10
        # Replay resumes the global sequence, not a per-boot one.
        assert recovered.status()["seq"] == 10
        recovered.close()

    def test_checkpoint_truncates_the_journal_file(self, tmp_path):
        state = _fresh(tmp_path, checkpoint_interval=100)
        for i in range(5):
            state.record_create(f"t{i}", index_id=i + 1,
                                scheme="dual-i", quota={})
        assert state.journal_path.stat().st_size > 0
        state.checkpoint()
        assert state.journal_path.stat().st_size == 0
        assert state.status()["journal_records"] == 0
        state.close()


class TestArtifactGC:
    def test_retention_window(self, tmp_path, index):
        state = _fresh(tmp_path, checkpoint_interval=100,
                       retain_generations=2)
        for gen in range(1, 5):
            artifact = state.save_index(index, "default", gen)
            state.record_install("default", index_id=0,
                                 scheme="dual-i", generation=gen,
                                 label_bytes=1, artifact=artifact)
        state.checkpoint()  # GC runs with the checkpoint
        names = sorted(p.name for p
                       in (tmp_path / INDEX_DIR).iterdir())
        assert names == ["default-g3.json", "default-g4.json"]
        state.close()

    def test_recovery_drops_orphans_and_futures(self, tmp_path, index):
        state = _fresh(tmp_path, checkpoint_interval=100,
                       retain_generations=2)
        artifact = state.save_index(index, "default", 1)
        state.record_install("default", index_id=0, scheme="dual-i",
                             generation=1, label_bytes=1,
                             artifact=artifact)
        # A crash between artifact save and journal fsync leaves a
        # future-generation orphan; recovery must sweep it.
        state.save_index(index, "default", 2)
        # An artifact for an entry the journal never heard of.
        state.save_index(index, "ghost", 1)
        quarantined = tmp_path / INDEX_DIR / "old.json.corrupt"
        quarantined.write_text("poison")
        state.close()

        recovered = _fresh(tmp_path, checkpoint_interval=100,
                           retain_generations=2)
        names = sorted(p.name for p
                       in (tmp_path / INDEX_DIR).iterdir())
        assert names == ["default-g1.json", "old.json.corrupt"]
        assert recovered.next_generation("default") == 2
        recovered.close()


class TestRestoreCatalog:
    def _installed(self, tmp_path, index, name, index_id):
        state = _fresh(tmp_path)
        if index_id != 0:
            state.record_create(name, index_id=index_id,
                                scheme="dual-i", quota={})
        artifact = state.save_index(index, name, 1)
        state.record_install(name, index_id=index_id,
                             scheme="dual-i", generation=1,
                             label_bytes=1, artifact=artifact)
        return state

    def test_fresh_state_builds_the_default(self, tmp_path, index):
        state = _fresh(tmp_path)
        boot = restore_catalog(
            state, default_factory=lambda: (index, "dual-i"))
        assert boot.default.generation == 1
        assert boot.default.index is index
        assert not boot.degraded
        state.close()

        # The factory-built default became durable: the next boot
        # restores it without the factory.
        reopened = _fresh(tmp_path)
        boot2 = restore_catalog(
            reopened,
            default_factory=lambda: pytest.fail("factory re-invoked"))
        assert boot2.default.generation == 1
        assert boot2.default.index.stats().num_nodes \
            == index.stats().num_nodes
        reopened.close()

    def test_corrupt_tenant_artifact_quarantined_not_fatal(
            self, tmp_path, index):
        state = self._installed(tmp_path, index, "tA", 1)
        artifact = state.entry("tA").artifact
        state.close()

        path = tmp_path / artifact
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x55
        path.write_bytes(bytes(blob))

        reopened = _fresh(tmp_path)
        boot = restore_catalog(
            reopened, default_factory=lambda: (index, "dual-i"))
        (tenant,) = boot.tenants
        assert tenant.name == "tA"
        assert tenant.index is None  # registered but empty
        assert boot.degraded and "quarantined" in boot.degraded[0]
        assert not path.exists()
        assert list(path.parent.glob(f"{path.name}.corrupt*"))
        reopened.close()

    def test_corrupt_default_artifact_falls_back_to_factory(
            self, tmp_path, index):
        state = self._installed(tmp_path, index, "default", 0)
        artifact = state.entry("default").artifact
        state.close()
        path = tmp_path / artifact
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x55
        path.write_bytes(bytes(blob))

        reopened = _fresh(tmp_path)
        boot = restore_catalog(
            reopened, default_factory=lambda: (index, "dual-i"))
        assert boot.default.index is index
        assert boot.default.generation == 2  # rebuild is a new gen
        assert boot.degraded
        reopened.close()

    def test_missing_artifact_degrades_without_quarantine(
            self, tmp_path, index):
        state = self._installed(tmp_path, index, "tA", 1)
        artifact = state.entry("tA").artifact
        state.close()
        (tmp_path / artifact).unlink()

        reopened = _fresh(tmp_path)
        boot = restore_catalog(
            reopened, default_factory=lambda: (index, "dual-i"))
        (tenant,) = boot.tenants
        assert tenant.index is None
        assert boot.degraded and "missing" in boot.degraded[0]
        reopened.close()
