"""Unit tests for spanning-forest extraction and edge classification."""

from __future__ import annotations

import pytest

from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_tree
from repro.graph.spanning import spanning_forest
from tests.conftest import PAPER_NONTREE_EDGES, PAPER_TREE_EDGES


class TestStructure:
    def test_tree_input_has_no_nontree_edges(self):
        tree = random_tree(50, max_fanout=4, seed=1)
        forest = spanning_forest(tree)
        assert forest.t == 0
        assert forest.num_tree_edges == 49
        assert forest.roots == [0]

    def test_every_node_covered(self):
        dag = random_dag(40, 90, seed=2)
        forest = spanning_forest(dag)
        covered = set(forest.parent) | set(forest.roots)
        assert covered == set(dag.nodes())

    def test_edge_partition(self):
        dag = random_dag(40, 90, seed=3)
        forest = spanning_forest(dag)
        tree = {(forest.parent[c], c) for c in forest.parent}
        nontree = set(forest.nontree_edges)
        superfluous = set(forest.superfluous_edges)
        all_edges = set(dag.edges())
        assert tree | nontree | superfluous == all_edges
        assert not tree & nontree
        assert not tree & superfluous
        assert not nontree & superfluous

    def test_multi_root_forest(self):
        g = DiGraph([(0, 1), (2, 3), (2, 1)])
        forest = spanning_forest(g)
        assert set(forest.roots) == {0, 2}
        # Edge 2 -> 1 arrives second, so it is a non-tree edge.
        assert (2, 1) in forest.nontree_edges

    def test_children_order_matches_adjacency(self):
        g = DiGraph([(0, 2), (0, 1)])
        forest = spanning_forest(g)
        assert forest.children[0] == [2, 1]

    def test_cycle_rejected(self, two_cycle_graph):
        with pytest.raises(NotADAGError):
            spanning_forest(two_cycle_graph)

    def test_empty_graph(self):
        forest = spanning_forest(DiGraph())
        assert forest.roots == []
        assert forest.t == 0


class TestSuperfluousEdges:
    def test_descendant_edge_is_superfluous(self):
        # 0 -> 1 -> 2 plus shortcut 0 -> 2: DFS takes 0->1->2 as tree,
        # the shortcut's head is a tree descendant of its tail.
        g = DiGraph([(0, 1), (1, 2), (0, 2)])
        forest = spanning_forest(g)
        assert forest.superfluous_edges == [(0, 2)]
        assert forest.t == 0

    def test_cross_edge_is_kept(self):
        # 0 -> {1, 2}; 1 -> 2 arrives after 2 was visited via 0.
        g = DiGraph([(0, 2), (0, 1), (1, 2)])
        forest = spanning_forest(g)
        assert forest.nontree_edges == [(1, 2)]
        assert forest.superfluous_edges == []

    def test_paper_graph_classification(self, paper_graph):
        forest = spanning_forest(paper_graph)
        tree = {(forest.parent[c], c) for c in forest.parent}
        assert tree == set(PAPER_TREE_EDGES)
        assert set(forest.nontree_edges) == set(PAPER_NONTREE_EDGES)
        assert forest.superfluous_edges == []

    @pytest.mark.parametrize("seed", range(5))
    def test_is_tree_ancestor_consistent_with_parents(self, seed):
        dag = random_dag(25, 50, seed=seed)
        forest = spanning_forest(dag)
        for u in dag.nodes():
            # Walk up from u: every node on the path is an ancestor.
            node = u
            chain = [u]
            while node in forest.parent:
                node = forest.parent[node]
                chain.append(node)
            chain_set = set(chain)
            for anc in chain:
                assert forest.is_tree_ancestor(anc, u)
            # Exactly the chain members are tree ancestors of u.
            for other in dag.nodes():
                assert forest.is_tree_ancestor(other, u) == (
                    other in chain_set)
