"""Integration tests for the CLI entry points (repro-reach / python -m)."""

from __future__ import annotations

import pytest

from repro.bench.runner import main as bench_main
from repro.bench.runner import run_experiment, scaled_overrides
from repro.cli import main as cli_main


class TestCLISchemes:
    def test_schemes_listed(self, capsys):
        assert cli_main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "dual-i" in out
        assert "2hop" in out


class TestCLIGenerateStatsBuildQuery:
    def test_generate_and_stats(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        assert cli_main(["generate", "dag", "--nodes", "80", "--edges",
                         "110", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert cli_main(["stats", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "num_nodes" in out
        assert "80" in out

    def test_generate_gnm_and_build(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        cli_main(["generate", "gnm", "--nodes", "60", "--edges", "130",
                  "--seed", "3", "--out", str(out_file)])
        assert cli_main(["build", str(out_file), "--scheme",
                         "dual-ii"]) == 0
        out = capsys.readouterr().out
        assert "dual-ii" in out
        assert "build_seconds" in out

    def test_generate_tree(self, tmp_path):
        out_file = tmp_path / "t.txt"
        assert cli_main(["generate", "tree", "--nodes", "30",
                         "--out", str(out_file)]) == 0

    def test_generate_random_dag(self, tmp_path):
        out_file = tmp_path / "d.txt"
        assert cli_main(["generate", "random-dag", "--nodes", "30",
                         "--edges", "50", "--out", str(out_file)]) == 0

    def test_query_explicit_pairs(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        cli_main(["generate", "dag", "--nodes", "50", "--edges", "70",
                  "--seed", "1", "--out", str(out_file)])
        assert cli_main(["query", str(out_file), "--pairs", "0:10",
                         "10:0"]) == 0
        out = capsys.readouterr().out
        assert "0 -> 10: reachable" in out
        assert "10 -> 0: unreachable" in out

    def test_query_random_workload(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        cli_main(["generate", "dag", "--nodes", "50", "--edges", "70",
                  "--out", str(out_file)])
        assert cli_main(["query", str(out_file), "--random", "200"]) == 0
        out = capsys.readouterr().out
        assert "queries          200" in out
        assert "us_per_query" in out

    def test_bad_pair_syntax(self, tmp_path):
        out_file = tmp_path / "g.txt"
        cli_main(["generate", "tree", "--nodes", "5",
                  "--out", str(out_file)])
        with pytest.raises(SystemExit):
            cli_main(["query", str(out_file), "--pairs", "banana"])

    def test_generate_dataset_requires_name(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["generate", "dataset",
                      "--out", str(tmp_path / "d.txt")])


class TestQueryPairsFile:
    def test_pairs_file_batch_path(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        pairs_file = tmp_path / "pairs.txt"
        cli_main(["generate", "dag", "--nodes", "50", "--edges", "70",
                  "--seed", "1", "--out", str(graph_file)])
        pairs_file.write_text(
            "# workload comment\n"
            "0,10\n"
            "\n"
            "10 , 0  # trailing comment\n"
            "3,3\n")
        capsys.readouterr()
        assert cli_main(["query", str(graph_file), "--pairs-file",
                         str(pairs_file)]) == 0
        out = capsys.readouterr().out
        assert "0 -> 10: reachable" in out
        assert "10 -> 0: unreachable" in out
        assert "3 -> 3: reachable" in out  # reflexive
        assert "# 3 queries," in out

    def test_pairs_file_against_saved_index(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        index_file = tmp_path / "index.json"
        pairs_file = tmp_path / "pairs.txt"
        cli_main(["generate", "dag", "--nodes", "40", "--edges", "60",
                  "--seed", "4", "--out", str(graph_file)])
        cli_main(["build", str(graph_file), "--scheme", "dual-ii",
                  "--save", str(index_file)])
        pairs_file.write_text("0,20\n20,0\n")
        capsys.readouterr()
        assert cli_main(["query", "--index", str(index_file),
                         "--pairs-file", str(pairs_file)]) == 0
        assert "# 2 queries," in capsys.readouterr().out

    def test_malformed_pairs_file(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        pairs_file = tmp_path / "pairs.txt"
        cli_main(["generate", "tree", "--nodes", "10",
                  "--out", str(graph_file)])
        pairs_file.write_text("0,1\nbanana\n")
        capsys.readouterr()
        assert cli_main(["query", str(graph_file), "--pairs-file",
                         str(pairs_file)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "pairs.txt:2" in err


class TestServeLoadgenCLI:
    def test_loadgen_against_gateway(self, tmp_path, capsys):
        """The loadgen command end-to-end against a live gateway."""
        from repro.core.base import build_index
        from repro.core.service import QueryService
        from repro.graph.io import read_edge_list
        from repro.server.server import (
            ReachServer,
            ServerConfig,
            ServerThread,
        )

        graph_file = tmp_path / "g.txt"
        cli_main(["generate", "dag", "--nodes", "60", "--edges", "90",
                  "--seed", "2", "--out", str(graph_file)])
        capsys.readouterr()
        index = build_index(read_edge_list(graph_file), scheme="dual-i")
        server = ReachServer(QueryService(index), config=ServerConfig())
        with ServerThread(server) as handle:
            assert cli_main(["loadgen", "--port", str(handle.port),
                             "--graph", str(graph_file),
                             "--random", "500", "--connections", "2",
                             "--duration", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "loadgen —" in out
        assert "queries/second" in out

    def test_loadgen_requires_a_pair_source(self, capsys):
        assert cli_main(["loadgen", "--port", "1"]) == 2
        assert "loadgen needs" in capsys.readouterr().err


class TestBenchRunner:
    def test_list_command(self, capsys):
        assert bench_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table2" in out

    def test_run_quick_fig11(self, capsys, tmp_path):
        assert bench_main(["run", "fig11", "--scale", "quick",
                           "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert (tmp_path / "fig11.md").exists()
        assert (tmp_path / "fig11.csv").exists()

    def test_cli_forwards_to_bench(self, capsys):
        assert cli_main(["bench", "list"]) == 0
        assert "fig8" in capsys.readouterr().out

    def test_run_experiment_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_scaled_overrides(self):
        assert scaled_overrides("fig8", "paper") == {}
        assert "n" in scaled_overrides("fig8", "quick")
        with pytest.raises(ValueError):
            scaled_overrides("fig8", "jumbo")


class TestIndexPersistence:
    def test_build_save_then_query_index(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        index_file = tmp_path / "index.json"
        cli_main(["generate", "dag", "--nodes", "60", "--edges", "80",
                  "--seed", "2", "--out", str(graph_file)])
        assert cli_main(["build", str(graph_file), "--scheme", "dual-i",
                         "--save", str(index_file)]) == 0
        assert index_file.exists()
        capsys.readouterr()
        assert cli_main(["query", "--index", str(index_file),
                         "--pairs", "0:30", "30:0"]) == 0
        out = capsys.readouterr().out
        assert "0 -> 30" in out

    def test_query_index_without_pairs_errors(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        index_file = tmp_path / "index.json"
        cli_main(["generate", "tree", "--nodes", "10",
                  "--out", str(graph_file)])
        cli_main(["build", str(graph_file), "--save", str(index_file)])
        assert cli_main(["query", "--index", str(index_file)]) == 2

    def test_query_without_graph_or_index_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["query"])

    def test_bench_chart_flag(self, capsys):
        assert bench_main(["run", "fig11", "--scale", "quick",
                           "--chart"]) == 0
        out = capsys.readouterr().out
        assert "scale]" in out  # chart header printed


class TestGoldenCLI:
    def test_create_and_check(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        golden_file = tmp_path / "golden.json"
        cli_main(["generate", "dag", "--nodes", "80", "--edges", "110",
                  "--out", str(graph_file)])
        assert cli_main(["golden", "create", str(graph_file),
                         "--queries", "300",
                         "--out", str(golden_file)]) == 0
        assert golden_file.exists()
        capsys.readouterr()
        for scheme in ("dual-i", "interval"):
            assert cli_main(["golden", "check", str(graph_file),
                             str(golden_file), "--scheme", scheme]) == 0
            assert "OK" in capsys.readouterr().out

    def test_check_detects_stale_golden(self, tmp_path, capsys):
        """A golden from one graph fails against a different graph."""
        graph_a = tmp_path / "a.txt"
        graph_b = tmp_path / "b.txt"
        golden_file = tmp_path / "golden.json"
        cli_main(["generate", "dag", "--nodes", "80", "--edges", "110",
                  "--seed", "1", "--out", str(graph_a)])
        cli_main(["generate", "dag", "--nodes", "80", "--edges", "110",
                  "--seed", "2", "--out", str(graph_b)])
        cli_main(["golden", "create", str(graph_a), "--queries", "400",
                  "--out", str(golden_file)])
        capsys.readouterr()
        rc = cli_main(["golden", "check", str(graph_b),
                       str(golden_file)])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out


class TestCLIErrorHandling:
    def test_missing_graph_file(self, capsys):
        assert cli_main(["stats", "/nonexistent/graph.txt"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_graph_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("1 2 3 4\n")
        assert cli_main(["build", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_query_node(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        cli_main(["generate", "tree", "--nodes", "10",
                  "--out", str(graph_file)])
        capsys.readouterr()
        assert cli_main(["query", str(graph_file), "--pairs",
                         "0:999"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_index_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert cli_main(["query", "--index", str(bad), "--pairs",
                         "0:1"]) == 2
        assert "error:" in capsys.readouterr().err
