"""Unit tests for the XML substrate (document model, parser, queries)."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.xml.document import XMLDocument, XMLElement, parse_xml
from repro.xml.generator import generate_auction_document
from repro.xml.queries import XMLReachabilityEngine, parse_path_expression

LIBRARY_XML = """
<library>
  <fiction>
    <book id="b1">
      <title>Dune</title>
      <authorref idref="a1"/>
    </book>
    <book id="b2">
      <title>Foundation</title>
      <authorref idref="a2"/>
    </book>
  </fiction>
  <nonfiction>
    <book id="b3">
      <title>Cosmos</title>
      <authorref idref="a3"/>
    </book>
  </nonfiction>
  <authors>
    <author id="a1"><name>Herbert</name></author>
    <author id="a2"><name>Asimov</name></author>
    <author id="a3"><name>Sagan</name></author>
  </authors>
</library>
"""


class TestParse:
    def test_structure(self):
        doc = parse_xml(LIBRARY_XML)
        assert doc.root.tag == "library"
        assert doc.num_elements == 19
        assert len(doc.by_tag("book")) == 3
        assert len(doc.by_tag("author")) == 3

    def test_ids_resolve(self):
        doc = parse_xml(LIBRARY_XML)
        assert doc.by_id("a1").tag == "author"
        assert doc.by_id("missing") is None

    def test_text_captured(self):
        doc = parse_xml(LIBRARY_XML)
        titles = [e.text for e in doc.by_tag("title")]
        assert "Dune" in titles

    def test_malformed_raises(self):
        with pytest.raises(DatasetError):
            parse_xml("<open><unclosed></open>")

    def test_duplicate_id_raises(self):
        with pytest.raises(DatasetError):
            parse_xml('<r><a id="x"/><b id="x"/></r>')

    def test_node_ids_document_order(self):
        doc = parse_xml(LIBRARY_XML)
        ids = [e.node_id for e in doc.root.iter()]
        assert ids == sorted(ids)

    def test_tags_listing(self):
        doc = parse_xml(LIBRARY_XML)
        assert doc.tags()[0] == "library"
        assert "authorref" in doc.tags()

    def test_idrefs_attribute_plural(self):
        doc = parse_xml('<r><a id="x"/><a id="y"/>'
                        '<b idrefs="x y"/></r>')
        b = doc.by_tag("b")[0]
        assert b.idrefs == ["x", "y"]


class TestToGraph:
    def test_tree_plus_reference_edges(self):
        doc = parse_xml(LIBRARY_XML)
        graph = doc.to_graph()
        # 19 elements; 18 containment edges + 3 idref edges.
        assert graph.num_nodes == 19
        assert graph.num_edges == 21

    def test_dangling_idref_ignored(self):
        doc = parse_xml('<r><a idref="nowhere"/></r>')
        assert doc.to_graph().num_edges == 1  # containment only

    def test_reference_edge_direction(self):
        doc = parse_xml(LIBRARY_XML)
        graph = doc.to_graph()
        ref = doc.by_tag("authorref")[0]
        author = doc.by_id("a1")
        assert graph.has_edge(ref.node_id, author.node_id)


class TestPathExpressions:
    def test_parse_valid(self):
        assert parse_path_expression("//fiction//author") == [
            "fiction", "author"]
        assert parse_path_expression("//a//b//c") == ["a", "b", "c"]

    @pytest.mark.parametrize("bad", [
        "", "fiction", "/fiction", "//", "//a/b", "//a//", "a//b"])
    def test_parse_invalid(self, bad):
        with pytest.raises(DatasetError):
            parse_path_expression(bad)


class TestEngine:
    @pytest.mark.parametrize("scheme", ["dual-i", "dual-ii", "interval"])
    def test_fiction_authors(self, scheme):
        """The paper's //fiction//author: only authors referenced from
        fiction books qualify — reachability crosses IDREF edges."""
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc, scheme=scheme)
        matched = engine.evaluate("//fiction//author")
        names = sorted(doc.by_id(a.element_id).element_id
                       for a in matched)
        assert names == ["a1", "a2"]  # Sagan (a3) is nonfiction-only

    def test_three_step_path(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        assert engine.count("//library//fiction//title") == 2

    def test_no_match(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        assert engine.evaluate("//nonfiction//name") != []
        assert engine.evaluate("//name//fiction") == []

    def test_is_descendant(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        fiction = doc.by_tag("fiction")[0]
        herbert = doc.by_id("a1")
        assert engine.is_descendant(fiction, herbert)
        assert not engine.is_descendant(herbert, fiction)

    def test_repr(self):
        engine = XMLReachabilityEngine(parse_xml(LIBRARY_XML))
        assert "XMLReachabilityEngine" in repr(engine)


class TestGenerator:
    def test_counts(self):
        doc = generate_auction_document(num_items=20, num_people=10,
                                        num_refs=15, seed=1)
        assert len(doc.by_tag("item")) == 20
        assert len(doc.by_tag("person")) == 10

    def test_deterministic(self):
        a = generate_auction_document(seed=5)
        b = generate_auction_document(seed=5)
        assert a.to_graph() == b.to_graph()

    def test_graph_is_sparse_tree_plus_links(self):
        doc = generate_auction_document(num_items=100, num_people=50,
                                        num_refs=60, seed=2)
        graph = doc.to_graph()
        # Tree edges = elements - 1; IDREF edges add num_refs (modulo
        # self-reference rejections).
        assert graph.num_edges <= graph.num_nodes - 1 + 60
        assert graph.density < 1.3

    def test_engine_over_generated_document(self):
        doc = generate_auction_document(num_items=40, num_people=20,
                                        num_refs=30, seed=3)
        engine = XMLReachabilityEngine(doc, scheme="dual-ii")
        # Every item is under the site root.
        assert engine.count("//site//item") == 40
        # Watched items are exactly the ones reachable from people.
        watched = engine.evaluate("//person//item")
        for item in watched:
            assert item.tag == "item"


class TestDocumentValidation:
    def test_duplicate_node_id_rejected(self):
        a = XMLElement(node_id=0, tag="a")
        b = XMLElement(node_id=0, tag="b")
        a.children.append(b)
        with pytest.raises(DatasetError):
            XMLDocument(a)


class TestMixedPaths:
    def test_parse_mixed(self):
        from repro.xml.queries import parse_mixed_path
        assert parse_mixed_path("//site/region//item") == [
            ("//", "site"), ("/", "region"), ("//", "item")]
        assert parse_mixed_path("/library") == [("/", "library")]

    @pytest.mark.parametrize("bad", ["", "site", "///a", "//a/", "a/b",
                                     "//a b"])
    def test_parse_mixed_invalid(self, bad):
        from repro.xml.queries import parse_mixed_path
        with pytest.raises(DatasetError):
            parse_mixed_path(bad)

    def test_child_axis_is_direct_only(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        # /library/fiction/book: two direct children.
        assert len(engine.evaluate_path("/library/fiction/book")) == 2
        # /library/book: no direct book children of the root.
        assert engine.evaluate_path("/library/book") == []

    def test_descendant_axis_in_mixed_path(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        # //fiction//author crosses IDREF edges; as a mixed path the
        # same two authors match.
        matched = engine.evaluate_path("//fiction//author")
        assert sorted(a.element_id for a in matched) == ["a1", "a2"]

    def test_leading_single_slash_anchors_at_root(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        assert len(engine.evaluate_path("/library")) == 1
        assert engine.evaluate_path("/fiction") == []

    def test_mixed_path_equals_pure_descendants_when_applicable(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        pure = engine.evaluate("//library//title")
        mixed = engine.evaluate_path("//library//title")
        assert [e.node_id for e in pure] == [e.node_id for e in mixed]

    def test_count_dispatches_on_syntax(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        assert engine.count("//fiction//title") == 2
        assert engine.count("/library/fiction/book") == 2

    def test_deduplication_via_multiple_parents(self):
        # One element reachable from two frontier members must appear
        # once.
        doc = parse_xml('<r><a><b/></a><a><b/></a></r>')
        engine = XMLReachabilityEngine(doc)
        assert len(engine.evaluate_path("//r/a/b")) == 2
        assert len(engine.evaluate_path("//a/b")) == 2


class TestStructuralJoin:
    def test_fiction_author_join(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc, scheme="dual-i")
        pairs = engine.structural_join("fiction", "author")
        matched = {(a.tag, d.element_id) for a, d in pairs}
        assert matched == {("fiction", "a1"), ("fiction", "a2")}

    def test_join_matches_scalar_fallback(self):
        doc = parse_xml(LIBRARY_XML)
        fast = XMLReachabilityEngine(doc, scheme="dual-i")
        slow = XMLReachabilityEngine(doc, scheme="interval")
        as_ids = lambda pairs: sorted(
            (a.node_id, d.node_id) for a, d in pairs)
        assert as_ids(fast.structural_join("book", "name")) == \
            as_ids(slow.structural_join("book", "name"))

    def test_empty_sides(self):
        doc = parse_xml(LIBRARY_XML)
        engine = XMLReachabilityEngine(doc)
        assert engine.structural_join("nope", "author") == []
        assert engine.structural_join("fiction", "nope") == []

    def test_join_on_generated_document(self):
        doc = generate_auction_document(num_items=30, num_people=15,
                                        num_refs=25, seed=8)
        engine = XMLReachabilityEngine(doc, scheme="dual-i")
        pairs = engine.structural_join("person", "item")
        watched = engine.evaluate("//person//item")
        assert {d.node_id for _, d in pairs} == \
            {e.node_id for e in watched}
