"""Stateful property test: DynamicDualIndex vs a shadow graph model.

Hypothesis drives an arbitrary interleaving of node inserts, edge
inserts (cyclic ones included), edge deletions, and reachability
queries; after every step the dynamic index must agree with BFS over a
shadow copy of the graph.  This is the strongest correctness statement
in the suite for the incremental-maintenance extension.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.dynamic import DynamicDualIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import is_reachable_search

NODE_IDS = st.integers(min_value=0, max_value=11)


class DynamicIndexMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.index = DynamicDualIndex()
        self.shadow = DiGraph()

    @rule(node=NODE_IDS)
    def add_node(self, node):
        self.index.add_node(node)
        self.shadow.add_node(node)

    @rule(u=NODE_IDS, v=NODE_IDS)
    def add_edge(self, u, v):
        if u == v:
            return
        self.index.add_node(u)
        self.index.add_node(v)
        self.shadow.add_node(u)
        self.shadow.add_node(v)
        self.index.add_edge(u, v)
        self.shadow.add_edge(u, v)

    @precondition(lambda self: self.shadow.num_edges > 0)
    @rule(choice=st.integers(min_value=0, max_value=10**9))
    def remove_some_edge(self, choice):
        edges = sorted(self.shadow.edges())
        u, v = edges[choice % len(edges)]
        self.index.remove_edge(u, v)
        self.shadow.remove_edge(u, v)

    @rule(u=NODE_IDS, v=NODE_IDS)
    def query(self, u, v):
        if u in self.shadow and v in self.shadow:
            assert self.index.reachable(u, v) == \
                is_reachable_search(self.shadow, u, v)

    @invariant()
    def graph_shapes_match(self):
        assert self.index.graph.num_nodes == self.shadow.num_nodes
        assert self.index.graph.num_edges == self.shadow.num_edges


DynamicIndexMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)

TestDynamicIndexStateful = DynamicIndexMachine.TestCase
