"""Unit tests for the shared dual-labeling build pipeline."""

from __future__ import annotations

import pytest

from repro.core.pipeline import run_pipeline
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph


class TestRunPipeline:
    def test_phases_recorded(self, paper_graph):
        result = run_pipeline(paper_graph, use_meg=False)
        assert {"condense", "spanning", "intervals", "link_table",
                "transitive_closure_of_links"} <= set(result.phase_seconds)
        assert "meg" not in result.phase_seconds

    def test_meg_phase_when_enabled(self, paper_graph):
        result = run_pipeline(paper_graph, use_meg=True)
        assert "meg" in result.phase_seconds
        assert result.meg_edges is not None
        assert result.meg_edges <= paper_graph.num_edges

    def test_meg_never_increases_t(self):
        for seed in range(5):
            g = gnm_random_digraph(80, 180, seed=seed)
            with_meg = run_pipeline(g, use_meg=True)
            without = run_pipeline(g, use_meg=False)
            assert with_meg.t <= without.t

    def test_paper_graph_counts(self, paper_graph):
        result = run_pipeline(paper_graph, use_meg=False)
        assert result.t == 2
        assert result.num_transitive_links == 3

    def test_cyclic_input_condensed(self, two_cycle_graph):
        result = run_pipeline(two_cycle_graph, use_meg=True)
        assert result.condensation.num_components == 3
        assert result.dag.num_nodes == 3

    def test_component_interval_lookup(self, two_cycle_graph):
        result = run_pipeline(two_cycle_graph, use_meg=False)
        # Members of the same SCC share an interval.
        assert result.component_interval(0) == result.component_interval(1)
        assert result.component_interval(0) != result.component_interval(6)

    def test_component_interval_unknown_raises(self, paper_graph):
        result = run_pipeline(paper_graph)
        with pytest.raises(QueryError):
            result.component_interval("ghost")

    def test_empty_graph(self):
        result = run_pipeline(DiGraph())
        assert result.t == 0
        assert result.num_transitive_links == 0

    def test_single_node(self):
        result = run_pipeline(DiGraph(nodes=["only"]))
        assert result.t == 0
        assert result.component_interval("only").width == 1
