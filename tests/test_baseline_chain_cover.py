"""Unit tests for the chain-cover compressed-closure baseline."""

from __future__ import annotations

import pytest

from repro.baselines.chain_cover import ChainCoverIndex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    random_tree,
    single_rooted_dag,
)
from tests.conftest import assert_index_matches_oracle, sample_pairs


class TestChainCoverIndex:
    def test_diamond(self, diamond):
        assert_index_matches_oracle(ChainCoverIndex.build(diamond),
                                    diamond)

    def test_chain_is_one_chain(self, chain10):
        index = ChainCoverIndex.build(chain10)
        assert index.num_chains == 1
        assert_index_matches_oracle(index, chain10)

    def test_antichain_needs_n_chains(self):
        g = DiGraph(nodes=range(6))  # six isolated nodes
        index = ChainCoverIndex.build(g)
        assert index.num_chains == 6

    def test_tree(self):
        tree = random_tree(60, max_fanout=4, seed=1)
        index = ChainCoverIndex.build(tree)
        assert_index_matches_oracle(index, tree,
                                    sample_pairs(tree, 300, 1))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_cyclic(self, seed):
        g = gnm_random_digraph(45, 110, seed=seed)
        index = ChainCoverIndex.build(g)
        assert_index_matches_oracle(index, g, sample_pairs(g, 300, seed))

    @pytest.mark.parametrize("seed", range(3))
    def test_rooted_dags_exhaustive(self, seed):
        g = single_rooted_dag(70, 100, max_fanout=5, seed=seed)
        assert_index_matches_oracle(ChainCoverIndex.build(g), g)

    def test_cyclic_components(self, two_cycle_graph):
        index = ChainCoverIndex.build(two_cycle_graph)
        assert index.reachable(1, 0)
        assert index.reachable(0, 6)
        assert not index.reachable(6, 0)

    def test_unknown_vertex_raises(self, diamond):
        index = ChainCoverIndex.build(diamond)
        with pytest.raises(QueryError):
            index.reachable("a", "ghost")

    def test_unknown_option_rejected(self, diamond):
        with pytest.raises(TypeError):
            ChainCoverIndex.build(diamond, bogus=1)

    def test_stats(self, diamond):
        stats = ChainCoverIndex.build(diamond).stats()
        assert stats.scheme == "chain-cover"
        assert "first_reach_matrix" in stats.space_bytes
        assert "chains" in stats.phase_seconds

    def test_space_scales_with_chains(self):
        narrow = ChainCoverIndex.build(
            single_rooted_dag(200, 220, max_fanout=2, seed=2))
        wide = ChainCoverIndex.build(
            single_rooted_dag(200, 220, max_fanout=9, seed=2))
        assert wide.num_chains > narrow.num_chains
        assert wide.stats().space_bytes["first_reach_matrix"] > \
            narrow.stats().space_bytes["first_reach_matrix"]

    def test_empty_graph(self):
        index = ChainCoverIndex.build(DiGraph())
        assert index.num_chains == 0
        with pytest.raises(QueryError):
            index.reachable(0, 0)

    def test_repr(self, diamond):
        assert "ChainCoverIndex" in repr(ChainCoverIndex.build(diamond))
