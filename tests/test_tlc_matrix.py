"""Unit tests for the TLC matrix (Algorithm 1) against Definition 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.intervals import assign_intervals
from repro.core.linktable import build_link_table, transitive_link_table
from repro.core.tlc_matrix import TLCMatrix, build_tlc_matrix, tlc_function
from repro.graph.generators import random_dag
from repro.graph.spanning import spanning_forest


def _closed_table(graph):
    forest = spanning_forest(graph)
    labeling = assign_intervals(forest)
    return transitive_link_table(
        build_link_table(forest.nontree_edges, labeling))


class TestPaperValues:
    def test_N_9_3_and_N_11_3(self, paper_graph):
        """The paper: N(9,3) = 1 (link 9->[1,5) qualifies) and
        N(11,3) = 0."""
        table = _closed_table(paper_graph)
        N = tlc_function(table)
        assert N(9, 3) == 1
        assert N(11, 3) == 0

    def test_grid_values(self, paper_graph):
        table = _closed_table(paper_graph)
        tlc = build_tlc_matrix(table)
        # Grid: xs = (7, 9), ys = (1, 6).
        assert tlc.xs == (7, 9)
        assert tlc.ys == (1, 6)
        # N(7,1): links with tail>=7 covering 1 -> {7->[1,5), 9->[1,5)}.
        assert tlc.value(0, 0) == 2
        # N(7,6): tails>=7 covering 6 -> {9->[6,9)}.
        assert tlc.value(0, 1) == 1
        # N(9,1): {9->[1,5)}.
        assert tlc.value(1, 0) == 1
        # N(9,6): {9->[6,9)}.
        assert tlc.value(1, 1) == 1
        # Sentinel border is zero.
        assert tlc.value(2, 0) == 0
        assert tlc.value(0, 2) == 0


class TestConstruction:
    def test_empty_table(self, chain10):
        table = _closed_table(chain10)
        tlc = build_tlc_matrix(table)
        assert tlc.matrix.shape == (1, 1)
        assert tlc.value(0, 0) == 0

    def test_shape_has_sentinel_border(self, paper_graph):
        tlc = build_tlc_matrix(_closed_table(paper_graph))
        assert tlc.matrix.shape == (3, 3)
        assert np.all(tlc.matrix[-1, :] == 0)
        assert np.all(tlc.matrix[:, -1] == 0)
        assert tlc.sentinel_x == 2
        assert tlc.sentinel_y == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TLCMatrix((1,), (2,), np.zeros((3, 3), dtype=np.int64))

    def test_rows_monotone_decreasing_in_x(self):
        g = random_dag(50, 130, seed=1)
        tlc = build_tlc_matrix(_closed_table(g))
        m = tlc.matrix
        # N(x, y) counts tails >= x, so values fall as x grows.
        assert np.all(m[:-1, :] >= m[1:, :])

    def test_nbytes_positive(self, paper_graph):
        tlc = build_tlc_matrix(_closed_table(paper_graph))
        assert tlc.nbytes == tlc.matrix.nbytes > 0
        assert "TLCMatrix" in repr(tlc)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_grid_points_match_definition1(self, seed):
        g = random_dag(40, 100, seed=seed)
        table = _closed_table(g)
        tlc = build_tlc_matrix(table)
        N = tlc_function(table)
        for ix, x in enumerate(table.xs):
            for iy, y in enumerate(table.ys):
                assert tlc.value(ix, iy) == N(x, y), (x, y)

    @pytest.mark.parametrize("seed", range(4))
    def test_lookup_snaps_x_correctly(self, seed):
        g = random_dag(30, 80, seed=seed)
        table = _closed_table(g)
        if not table.ys:
            pytest.skip("graph produced no non-tree edges")
        tlc = build_tlc_matrix(table)
        N = tlc_function(table)
        max_x = max(table.xs) + 2
        for x in range(max_x):
            for iy, y in enumerate(table.ys):
                assert tlc.lookup(x, iy) == N(x, y), (x, y)


class TestPackedMatrix:
    def test_pack_preserves_values(self, paper_graph):
        from repro.core.tlc_matrix import pack_tlc_matrix
        tlc = build_tlc_matrix(_closed_table(paper_graph))
        packed = pack_tlc_matrix(tlc)
        assert packed.matrix.dtype == np.uint8
        assert np.array_equal(packed.matrix, tlc.matrix)
        assert packed.nbytes < tlc.nbytes

    def test_pack_picks_wider_dtype_when_needed(self):
        from repro.core.linktable import Link, LinkTable
        from repro.core.tlc_matrix import pack_tlc_matrix
        # 300 identical-interval links with distinct tails: N at the
        # lowest tail counts all of them -> needs uint16.
        links = tuple(Link(10 + i, 0, 5) for i in range(300))
        table = LinkTable(links=links,
                          xs=tuple(10 + i for i in range(300)), ys=(0,))
        tlc = build_tlc_matrix(table)
        packed = pack_tlc_matrix(tlc)
        assert packed.matrix.dtype == np.uint16
        assert packed.value(0, 0) == 300

    def test_pack_empty(self, chain10):
        from repro.core.tlc_matrix import pack_tlc_matrix
        tlc = build_tlc_matrix(_closed_table(chain10))
        packed = pack_tlc_matrix(tlc)
        assert packed.value(0, 0) == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_compact_dual_i_same_answers(self, seed):
        from repro.core.dual_i import DualIIndex
        from repro.graph.generators import gnm_random_digraph
        g = gnm_random_digraph(60, 150, seed=seed)
        plain = DualIIndex.build(g)
        compact = DualIIndex.build(g, compact=True)
        nodes = list(g.nodes())
        for u in nodes:
            for v in nodes:
                assert plain.reachable(u, v) == compact.reachable(u, v)
        assert compact.stats().space_bytes["tlc_matrix"] <= \
            plain.stats().space_bytes["tlc_matrix"]
