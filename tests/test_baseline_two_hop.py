"""Unit tests for the 2-hop baseline."""

from __future__ import annotations

import pytest

from repro.baselines.two_hop import TwoHopIndex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph, single_rooted_dag
from tests.conftest import assert_index_matches_oracle, sample_pairs


class TestTwoHopIndex:
    @pytest.mark.parametrize("strategy", ["greedy", "static"])
    def test_diamond(self, strategy, diamond):
        index = TwoHopIndex.build(diamond, strategy=strategy)
        assert_index_matches_oracle(index, diamond)

    def test_invalid_strategy_rejected(self, diamond):
        with pytest.raises(ValueError):
            TwoHopIndex.build(diamond, strategy="chaotic")

    def test_unknown_option_rejected(self, diamond):
        with pytest.raises(TypeError):
            TwoHopIndex.build(diamond, bogus=1)

    @pytest.mark.parametrize("strategy", ["greedy", "static"])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, strategy, seed):
        g = gnm_random_digraph(40, 100, seed=seed)
        index = TwoHopIndex.build(g, strategy=strategy)
        assert_index_matches_oracle(index, g, sample_pairs(g, 300, seed))

    @pytest.mark.parametrize("seed", range(3))
    def test_rooted_dags_fully(self, seed):
        g = single_rooted_dag(60, 85, seed=seed)
        index = TwoHopIndex.build(g)
        assert_index_matches_oracle(index, g)

    def test_cyclic(self, two_cycle_graph):
        index = TwoHopIndex.build(two_cycle_graph)
        assert index.reachable(2, 0)
        assert index.reachable(1, 6)
        assert not index.reachable(6, 4)

    def test_unknown_vertex_raises(self, diamond):
        index = TwoHopIndex.build(diamond)
        with pytest.raises(QueryError):
            index.reachable("a", "ghost")

    def test_labels_sorted(self):
        g = gnm_random_digraph(40, 110, seed=5)
        index = TwoHopIndex.build(g)
        for label in index._c_out + index._c_in:
            assert label == sorted(label)

    def test_greedy_labels_no_larger_than_static(self):
        g = single_rooted_dag(150, 230, seed=2)
        greedy = TwoHopIndex.build(g, strategy="greedy")
        static = TwoHopIndex.build(g, strategy="static")
        assert greedy.average_label_length <= \
            static.average_label_length * 1.25  # allow small wobble

    def test_stats(self, diamond):
        stats = TwoHopIndex.build(diamond).stats()
        assert stats.scheme == "2hop"
        assert "hop_labels" in stats.space_bytes
        assert "greedy_cover" in stats.phase_seconds

    def test_empty_graph(self):
        index = TwoHopIndex.build(DiGraph())
        with pytest.raises(QueryError):
            index.reachable(0, 0)
        assert index.average_label_length == 0.0

    def test_single_node(self):
        index = TwoHopIndex.build(DiGraph(nodes=["x"]))
        assert index.reachable("x", "x")

    def test_chain_covered(self, chain10):
        index = TwoHopIndex.build(chain10)
        assert_index_matches_oracle(index, chain10)

    def test_repr(self, diamond):
        assert "TwoHopIndex" in repr(TwoHopIndex.build(diamond))
