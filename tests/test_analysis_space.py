"""Unit tests for the space-analysis helpers."""

from __future__ import annotations

from repro.analysis.space import (
    closure_matrix_bytes,
    compare_schemes_space,
    space_report,
    tlc_matrix_bound_bytes,
)
from repro.core.base import build_index
from repro.graph.generators import single_rooted_dag


class TestYardsticks:
    def test_closure_matrix_bytes(self):
        assert closure_matrix_bytes(8) == 8
        assert closure_matrix_bytes(2000) == 500_000
        assert closure_matrix_bytes(0) == 0
        assert closure_matrix_bytes(3) == 2  # 9 bits -> 2 bytes

    def test_tlc_bound(self):
        assert tlc_matrix_bound_bytes(0) == 8
        assert tlc_matrix_bound_bytes(10) == 11 * 11 * 8


class TestSpaceReport:
    def test_report_fields(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        report = space_report(index)
        assert report.scheme == "dual-i"
        assert report.num_nodes == 4
        assert report.total_bytes == index.stats().total_space_bytes
        assert report.bytes_per_node == report.total_bytes / 4

    def test_as_dict(self, diamond):
        report = space_report(build_index(diamond, scheme="dual-ii"))
        d = report.as_dict()
        assert d["scheme"] == "dual-ii"
        assert d["total_bytes"] == report.total_bytes
        assert any(key.startswith("bytes_") for key in d)

    def test_empty_graph_bytes_per_node(self):
        from repro.graph.digraph import DiGraph
        report = space_report(build_index(DiGraph(), scheme="dual-i"))
        assert report.bytes_per_node == 0.0


class TestCompareSchemes:
    def test_matrix_grows_fastest(self):
        """Figure 12's shape on one graph: Dual-I's TLC matrix dominates
        Dual-II's search tree at equal t."""
        g = single_rooted_dag(300, 430, max_fanout=5, seed=1)
        reports = {r.scheme: r for r in compare_schemes_space(
            g, ["dual-i", "dual-ii", "interval"])}
        assert reports["dual-i"].total_bytes > \
            reports["dual-ii"].total_bytes
        assert reports["interval"].total_bytes < \
            reports["dual-i"].total_bytes

    def test_options_forwarding(self, diamond):
        reports = compare_schemes_space(diamond, ["dual-i"],
                                        dual_i={"use_meg": False})
        assert reports[0].scheme == "dual-i"
