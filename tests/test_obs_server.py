"""Integration tests for the gateway's observability surface.

These drive a real server over real sockets and verify the contracts
``docs/OBSERVABILITY.md`` documents: the ``metrics`` verb and the HTTP
scrape endpoint return valid Prometheus exposition covering the
required families; a traced request's span breakdown sums to its
end-to-end latency; the access log carries trace + stage timings and
rotates at its size bound; and both reset verbs drain atomically under
concurrent batch load (no lost increments, no negative counters).
"""

from __future__ import annotations

import json
import re
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.core.base import build_index
from repro.core.service import QueryService
from repro.graph.generators import single_rooted_dag
from repro.obs.prometheus import CONTENT_TYPE, parse_exposition
from repro.obs.smoke import REQUIRED_FAMILIES, run_metrics_smoke
from repro.server.client import ReachClient
from repro.server.server import ReachServer, ServerConfig, ServerThread


@contextmanager
def serve(index, scheme: str = "dual-ii", **config_kwargs):
    server = ReachServer(QueryService(index), scheme=scheme,
                         config=ServerConfig(**config_kwargs))
    handle = ServerThread(server).start()
    try:
        yield handle, server
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def graph():
    return single_rooted_dag(120, 240, seed=3)


@pytest.fixture(scope="module")
def index(graph):
    return build_index(graph, scheme="dual-ii")


def some_pairs(graph, n=64):
    nodes = sorted(graph.nodes())
    return [(nodes[i % len(nodes)], nodes[(i * 7 + 3) % len(nodes)])
            for i in range(n)]


def sample_value(text: str, sample: str) -> float:
    match = re.search(rf"^{re.escape(sample)} (\S+)$", text,
                      re.MULTILINE)
    return float(match.group(1)) if match else 0.0


# ---------------------------------------------------------------------
# exposition: metrics verb + HTTP scrape
# ---------------------------------------------------------------------

class TestExpositionSurface:
    def test_metrics_verb_covers_required_families(self, graph, index):
        with serve(index) as (handle, _server), \
                ReachClient(port=handle.port) as client:
            client.query_batch(some_pairs(graph))
            doc = client.metrics()
            assert doc["content_type"] == CONTENT_TYPE
            families = parse_exposition(doc["exposition"])
            for name in REQUIRED_FAMILIES:
                assert name in families, name
            assert families["reach_request_seconds"]["type"] == \
                "histogram"
            assert families["reach_stage_seconds"]["type"] == "histogram"

    def test_http_scrape_matches_verb(self, graph, index):
        with serve(index, metrics_port=0) as (handle, server), \
                ReachClient(port=handle.port) as client:
            client.query_batch(some_pairs(graph))
            base = f"http://127.0.0.1:{server.metrics_port}"
            with urllib.request.urlopen(base + "/metrics",
                                        timeout=10.0) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                scraped = response.read().decode("utf-8")
            families = parse_exposition(scraped)
            for name in REQUIRED_FAMILIES:
                assert name in families, name
            # A plain scrape never resets: the batch is still visible.
            assert sample_value(
                scraped, "reach_service_queries_total") >= 64.0

    def test_http_scrape_unknown_path_404(self, index):
        with serve(index, metrics_port=0) as (_handle, server):
            url = f"http://127.0.0.1:{server.metrics_port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=10.0)
            assert excinfo.value.code == 404

    def test_metrics_smoke_passes(self):
        report = run_metrics_smoke(nodes=80, seed=1)
        assert report.ok, "\n".join(report.summary_lines())


# ---------------------------------------------------------------------
# tracing: spans sum to end-to-end latency (acceptance criterion)
# ---------------------------------------------------------------------

class TestTraceSpans:
    def test_span_breakdown_sums_to_latency(self, graph, index):
        with serve(index) as (handle, _server), \
                ReachClient(port=handle.port, trace=True) as client:
            pairs = some_pairs(graph, 32)
            for _ in range(8):
                client.query_batch(pairs)
            slow = client.stats()["slow_queries"]
            assert slow, "slow-query log is empty"
            for entry in slow:
                stages = entry["stages_ms"]
                assert set(stages) <= {"parse", "admission",
                                       "queue_wait", "kernel",
                                       "serialize"}
                # Contiguous spans: the breakdown accounts for the
                # whole request (each stage rounded to 1µs).
                assert sum(stages.values()) == pytest.approx(
                    entry["ms"], abs=0.01)

    def test_client_trace_id_appears_server_side(self, graph, index):
        with serve(index) as (handle, _server), \
                ReachClient(port=handle.port, trace=True) as client:
            client.query_batch(some_pairs(graph, 16))
            trace = client.last_trace_id
            assert trace
            slow = client.stats()["slow_queries"]
            assert trace in {entry["trace"] for entry in slow}

    def test_server_mints_trace_for_untraced_clients(self, graph, index):
        with serve(index) as (handle, _server), \
                ReachClient(port=handle.port) as client:
            client.query_batch(some_pairs(graph, 16))
            slow = client.stats()["slow_queries"]
            assert slow and all(entry["trace"] for entry in slow)

    def test_stats_reports_stage_percentiles(self, graph, index):
        with serve(index) as (handle, _server), \
                ReachClient(port=handle.port) as client:
            client.query_batch(some_pairs(graph))
            stages = client.stats()["stages"]
            assert "kernel" in stages and "queue_wait" in stages
            for block in stages.values():
                assert {"p50_ms", "p95_ms", "p99_ms",
                        "max_ms"} <= set(block)
                assert block["max_ms"] >= block["p50_ms"] >= 0.0


# ---------------------------------------------------------------------
# access log: trace + stages, size-bounded rotation
# ---------------------------------------------------------------------

class TestAccessLog:
    def test_entries_carry_trace_and_stage_timings(self, graph, index,
                                                   tmp_path):
        log_path = tmp_path / "access.log"
        with serve(index, access_log=log_path) as (handle, _server), \
                ReachClient(port=handle.port, trace=True) as client:
            client.query_batch(some_pairs(graph, 16))
            trace = client.last_trace_id
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        batch = [r for r in records if r["verb"] == "batch"]
        assert batch
        entry = batch[-1]
        assert entry["trace"] == trace
        assert entry["pairs"] == 16
        assert sum(entry["stages_ms"].values()) == pytest.approx(
            entry["ms"], abs=0.01)

    def test_rotation_bounds_log_size(self, graph, index, tmp_path):
        log_path = tmp_path / "access.log"
        max_bytes = 2000
        with serve(index, access_log=log_path,
                   access_log_max_bytes=max_bytes) as (handle, _server), \
                ReachClient(port=handle.port) as client:
            for _ in range(100):
                client.ping()
        rotated = log_path.with_name(log_path.name + ".1")
        assert rotated.exists()
        assert log_path.stat().st_size <= max_bytes + 400
        # Every line in both generations is intact JSON.
        for path in (log_path, rotated):
            for line in path.read_text().splitlines():
                json.loads(line)


# ---------------------------------------------------------------------
# reset semantics under concurrent load (acceptance criterion)
# ---------------------------------------------------------------------

class ResetRace:
    """Drive batches from worker threads while a drainer resets."""

    BATCHES_PER_WORKER = 30
    WORKERS = 3
    PAIRS_PER_BATCH = 16

    def hammer(self, port, graph, drain_once):
        """Returns (total_pairs_sent, drained_values)."""
        pairs = some_pairs(graph, self.PAIRS_PER_BATCH)
        drained, errors = [], []
        done = threading.Event()

        def work():
            try:
                with ReachClient(port=port) as client:
                    for _ in range(self.BATCHES_PER_WORKER):
                        client.query_batch(pairs)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        def drain():
            with ReachClient(port=port) as client:
                while not done.is_set():
                    drained.append(drain_once(client))
                drained.append(drain_once(client))  # the remainder

        workers = [threading.Thread(target=work)
                   for _ in range(self.WORKERS)]
        drainer = threading.Thread(target=drain)
        drainer.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        done.set()
        drainer.join()
        assert not errors, errors
        total = (self.WORKERS * self.BATCHES_PER_WORKER
                 * self.PAIRS_PER_BATCH)
        return total, drained


class TestStatsResetUnderLoad(ResetRace):
    def test_no_lost_service_queries(self, graph, index):
        with serve(index) as (handle, _server):
            total, drained = self.hammer(
                handle.port, graph,
                lambda client: client.stats(reset=True)
                ["service"]["queries"])
        assert all(v >= 0 for v in drained)
        assert sum(drained) == total


class TestMetricsResetUnderLoad(ResetRace):
    def test_no_lost_increments_in_drained_expositions(self, graph,
                                                       index):
        def drain_once(client):
            doc = client.metrics(reset=True)
            text = doc["exposition"]
            parse_exposition(text)  # stays well-formed mid-race
            return sample_value(text, "reach_service_queries_total")

        with serve(index) as (handle, _server):
            total, drained = self.hammer(handle.port, graph, drain_once)
        assert all(v >= 0 for v in drained)
        assert sum(drained) == total
