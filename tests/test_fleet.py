"""The multi-process worker fleet: differential answers, swaps, and
supervision.

One two-worker :class:`~repro.server.router.WorkerFleet` is stood up
per module (spawning interpreters is the expensive part) and driven
through the same seeded graph families as the differential harness
(:mod:`tests.test_differential`): every graph is hot-swapped into the
fleet and answered through real TCP connections, and every reply must
be bit-identical to a direct in-process index.  On top of that ride
the fleet-specific invariants: a mid-traffic generation swap never
yields a blended batch (every reply matches exactly one generation's
truth), a SIGKILLed worker is respawned onto the current generation by
the pool supervisor, a failed reload degrades only until the next
good swap, and a stopped fleet leaves no shared-memory segment behind.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest

from repro.core.base import build_index
from repro.core.shm import list_segments
from repro.graph.generators import gnm_random_digraph
from repro.graph.io import write_edge_list
from repro.server.client import ReachClient, RetryPolicy, ServerReplyError
from repro.server.router import WorkerFleet
from tests.test_differential import FAMILIES, SEEDS

pytestmark = pytest.mark.slow

#: Queries per graph; well under the server's max_batch so one request
#: is always answered out of a single-generation flush.
PAIRS_PER_GRAPH = 96


def _pairs(graph, count=PAIRS_PER_GRAPH, seed=13):
    rng = random.Random(seed)
    n = graph.num_nodes
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("fleet")


@pytest.fixture(scope="module")
def fleet(workdir):
    graph = FAMILIES["sparse-dag"](0)
    index = build_index(graph, scheme="dual-i")
    before = set(list_segments())
    handle = WorkerFleet(
        index, scheme="dual-i", workers=2,
        server_options=dict(max_delay=0.001, request_timeout=10.0,
                            drain_timeout=2.0),
        # Fast enough that the kill/hang tests finish promptly, slow
        # enough that a busy CI box never false-kills a healthy worker.
        probe_interval=0.5, probe_timeout=8.0)
    handle.start()
    yield handle
    handle.stop()
    assert not handle.pids(), "workers survived fleet.stop()"
    leaked = set(list_segments()) - before
    assert not leaked, f"fleet.stop() leaked segments: {leaked}"


def _swap_in(fleet, workdir, graph, scheme, name):
    path = workdir / f"{name}.edges"
    write_edge_list(graph, path)
    summary = fleet.reload(graph=str(path), scheme=scheme)
    assert summary["swapped"], summary
    assert summary["scheme"] == scheme, summary
    return summary


class TestFleetDifferential:
    """Satellite 1: the 51-graph harness through the fleet, each graph
    arriving via a hot swap, half under each scheme."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_bit_identical_through_fleet(self, fleet, workdir,
                                                family):
        for seed in SEEDS:
            graph = FAMILIES[family](seed)
            scheme = "dual-i" if seed % 2 == 0 else "dual-ii"
            summary = _swap_in(fleet, workdir, graph, scheme,
                               f"{family}-{seed}")
            assert summary["nodes"] == graph.num_nodes
            pairs = _pairs(graph, seed=seed)
            expected = build_index(graph, scheme=scheme) \
                .reachable_many(pairs)
            with ReachClient(port=fleet.port) as client:
                got = client.query_batch([list(p) for p in pairs])
                worker = client.stats()["worker"]
            assert got == expected, (
                f"fleet diverged from the direct index on "
                f"{family} seed={seed} scheme={scheme} "
                f"(answered by worker {worker})")

    def test_generation_advances_once_per_swap(self, fleet, workdir):
        graph = FAMILIES["cyclic-gnm"](3)
        start = fleet.generation
        _swap_in(fleet, workdir, graph, "dual-ii", "gen-probe")
        assert fleet.generation == start + 1
        assert fleet.segment.endswith(f"-g{fleet.generation}")
        # Exactly one generation lives in /dev/shm afterwards.
        ours = [s for s in list_segments()
                if s.startswith(fleet.segment[:-3])]
        assert ours == [fleet.segment]


class TestSwapAtomicity:
    """Satellite 1: a reload mid-traffic moves the whole fleet with no
    wrong answer in flight and no mixed-generation batch."""

    def test_no_blended_batches_across_swaps(self, fleet, workdir):
        graph_a = gnm_random_digraph(48, 150, seed=21)
        graph_b = gnm_random_digraph(48, 20, seed=22)  # much sparser
        pairs = _pairs(graph_a, seed=23)
        truth = {
            "a": build_index(graph_a, scheme="dual-i")
            .reachable_many(pairs),
            "b": build_index(graph_b, scheme="dual-i")
            .reachable_many(pairs),
        }
        assert truth["a"] != truth["b"], "families must disagree"
        _swap_in(fleet, workdir, graph_a, "dual-i", "atomic-a")

        replies: list[list[bool]] = []
        stop = threading.Event()

        def hammer() -> None:
            retry = RetryPolicy(max_attempts=4, attempt_timeout=5.0,
                                breaker_threshold=0, seed=0)
            with ReachClient(port=fleet.port, retry=retry) as client:
                while not stop.is_set():
                    replies.append(
                        client.query_batch([list(p) for p in pairs]))

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        try:
            for name, graph in (("b", graph_b), ("a", graph_a),
                                ("b", graph_b)):
                _swap_in(fleet, workdir, graph, "dual-i",
                         f"atomic-{name}2")
        finally:
            stop.set()
            thread.join(timeout=30)
        assert len(replies) > 3
        for reply in replies:
            assert reply == truth["a"] or reply == truth["b"], (
                "a reply matches neither generation — a batch blended "
                "two indexes mid-swap")
        # Traffic genuinely straddled the swaps: both truths observed.
        assert any(r == truth["b"] for r in replies)
        assert any(r == truth["a"] for r in replies)


class TestSupervision:
    """Satellite: the worker-pool supervisor and the reload error
    path."""

    def test_workers_carry_distinct_labels(self, fleet):
        seen = {}
        deadline = time.monotonic() + 30
        while len(seen) < 2 and time.monotonic() < deadline:
            with ReachClient(port=fleet.port) as client:
                stats = client.stats()
                seen[stats["worker"]] = stats
                text = client.metrics()["exposition"]
            assert f'worker="{stats["worker"]}"' in text
        assert sorted(seen) == ["0", "1"], (
            f"accept sharding never reached both workers: {sorted(seen)}")

    def test_sigkilled_worker_is_respawned(self, fleet, workdir):
        # Pin down the current truth so the respawned worker can be
        # checked against it after re-attaching the live generation.
        graph = FAMILIES["sparse-dag"](1)
        _swap_in(fleet, workdir, graph, "dual-i", "respawn")
        pairs = _pairs(graph, seed=31)
        expected = build_index(graph, scheme="dual-i") \
            .reachable_many(pairs)

        before_pids = set(fleet.pids())
        restarts_before = fleet.restarts
        victim = sorted(before_pids)[0]
        os.kill(victim, signal.SIGKILL)

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            pids = set(fleet.pids())
            if len(pids) == 2 and victim not in pids:
                break
            time.sleep(0.05)
        pids = set(fleet.pids())
        assert len(pids) == 2 and victim not in pids, (
            f"supervisor never replaced worker {victim}: {pids}")
        assert fleet.restarts > restarts_before
        assert any(reason == "worker process died"
                   for _, reason, _ in fleet.crashes)

        # The replacement attached the current generation and serves
        # correct answers; sample fresh connections until both workers
        # (including the newcomer) have answered.
        seen = set()
        deadline = time.monotonic() + 30
        while len(seen) < 2 and time.monotonic() < deadline:
            with ReachClient(port=fleet.port) as client:
                assert client.query_batch(
                    [list(p) for p in pairs]) == expected
                seen.add(client.stats()["worker"])
        assert sorted(seen) == ["0", "1"]

    def test_failed_reload_degrades_until_next_good_swap(
            self, fleet, workdir):
        graph = FAMILIES["fanout9-tree"](2)
        _swap_in(fleet, workdir, graph, "dual-ii", "degrade-base")
        with ReachClient(port=fleet.port, timeout=60.0) as client:
            with pytest.raises(ServerReplyError) as excinfo:
                client.reload(index=str(workdir / "no-such-index.json"))
            assert excinfo.value.code == "reload_failed"
            # Same connection == same worker: it must report degraded
            # while still answering from its last good generation.
            assert client.health()["status"] == "degraded"
            pairs = _pairs(graph, seed=37)
            expected = build_index(graph, scheme="dual-ii") \
                .reachable_many(pairs)
            assert client.query_batch(
                [list(p) for p in pairs]) == expected
            path = workdir / "degrade-good.edges"
            write_edge_list(graph, path)
            swap = client.reload(graph=str(path), scheme="dual-ii")
            assert swap["swapped"]
            assert client.health()["status"] == "ok"

    def test_reload_rejects_ambiguous_source(self, fleet, workdir):
        with ReachClient(port=fleet.port, timeout=60.0) as client:
            with pytest.raises(ServerReplyError) as excinfo:
                client.reload()
            assert excinfo.value.code == "reload_failed"


class TestFleetTenancy:
    """Multi-tenant catalog through the fleet: a mutation sent to any
    worker must move every worker's catalog together."""

    def _await_both_workers(self, fleet, check):
        """Open fresh connections until both workers passed ``check``
        (generous deadline: a respawning worker may still be attaching
        its manifest when the first connections land)."""
        seen = set()
        deadline = time.monotonic() + 60
        while len(seen) < 2 and time.monotonic() < deadline:
            with ReachClient(port=fleet.port, timeout=60.0) as client:
                check(client)
                seen.add(client.stats()["worker"])
        assert sorted(seen) == ["0", "1"], (
            f"accept sharding never reached both workers: {sorted(seen)}")

    def test_catalog_lifecycle_spans_all_workers(self, fleet, workdir):
        graph = gnm_random_digraph(40, 90, seed=41)
        path = workdir / "tenant-ft1.edges"
        write_edge_list(graph, path)
        pairs = _pairs(graph, seed=43)
        expected = build_index(graph, scheme="dual-ii") \
            .reachable_many(pairs)

        with ReachClient(port=fleet.port, timeout=60.0) as client:
            created = client.catalog("create", name="ft1",
                                     scheme="dual-ii")
            built = client.catalog("build", name="ft1",
                                   graph=str(path))
            assert built["swapped"] and built["index_name"] == "ft1"
            ft1_id = created["index_id"]

        # Every worker (not just the one that took the build) serves
        # the tenant — by name over JSON and by id over binary frames.
        def serves_tenant(client):
            assert client.query_batch([list(p) for p in pairs],
                                      index="ft1") == expected

        self._await_both_workers(fleet, serves_tenant)
        from repro.server.client import BinaryReachClient
        with BinaryReachClient(port=fleet.port,
                               index_id=ft1_id) as binary:
            assert binary.query_batch(pairs) == expected

        # The drop broadcast lands on every worker before the reply.
        with ReachClient(port=fleet.port, timeout=60.0) as client:
            assert client.catalog("drop", name="ft1")["dropped"] == "ft1"

        def gone(client):
            with pytest.raises(ServerReplyError) as excinfo:
                client.query(0, 1, index="ft1")
            assert excinfo.value.code == "unknown_index"

        self._await_both_workers(fleet, gone)

    def test_respawned_worker_inherits_the_catalog(self, fleet,
                                                   workdir):
        graph = gnm_random_digraph(40, 60, seed=47)
        path = workdir / "tenant-ft2.edges"
        write_edge_list(graph, path)
        pairs = _pairs(graph, seed=48)
        expected = build_index(graph, scheme="dual-i") \
            .reachable_many(pairs)
        with ReachClient(port=fleet.port, timeout=60.0) as client:
            client.catalog("create", name="ft2")
            client.catalog("build", name="ft2", graph=str(path))

        victim = sorted(fleet.pids())[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            pids = set(fleet.pids())
            if len(pids) == 2 and victim not in pids:
                break
            time.sleep(0.05)
        assert victim not in set(fleet.pids())

        # The replacement's spawn manifest carried the tenant entry and
        # its live segment: both workers answer the tenant correctly.
        def serves_tenant(client):
            assert client.query_batch([list(p) for p in pairs],
                                      index="ft2") == expected

        self._await_both_workers(fleet, serves_tenant)
        with ReachClient(port=fleet.port, timeout=60.0) as client:
            client.catalog("drop", name="ft2")
