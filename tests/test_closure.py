"""Unit tests for transitive closure (bitset and matrix backends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.closure import (
    count_reachable_pairs,
    transitive_closure_bitsets,
    transitive_closure_matrix,
    transitive_closure_pairs,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph, random_dag
from repro.graph.traversal import is_reachable_search


def _closure_says(desc, index, u, v) -> bool:
    return bool((desc[index[u]] >> index[v]) & 1)


class TestBitsetClosure:
    def test_reflexive(self, chain10):
        desc, index = transitive_closure_bitsets(chain10)
        for node in chain10.nodes():
            assert _closure_says(desc, index, node, node)

    def test_chain(self, chain10):
        desc, index = transitive_closure_bitsets(chain10)
        assert _closure_says(desc, index, 0, 9)
        assert not _closure_says(desc, index, 9, 0)
        assert _closure_says(desc, index, 3, 7)

    def test_cyclic_graph(self, two_cycle_graph):
        desc, index = transitive_closure_bitsets(two_cycle_graph)
        # Inside a cycle everyone reaches everyone.
        for u in (0, 1, 2):
            for v in (0, 1, 2):
                assert _closure_says(desc, index, u, v)
        assert _closure_says(desc, index, 0, 6)
        assert not _closure_says(desc, index, 6, 0)

    def test_empty(self):
        desc, index = transitive_closure_bitsets(DiGraph())
        assert desc == []
        assert index == {}

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_search(self, seed):
        g = gnm_random_digraph(30, 70, seed=seed)
        desc, index = transitive_closure_bitsets(g)
        for u in g.nodes():
            for v in g.nodes():
                assert _closure_says(desc, index, u, v) == \
                    is_reachable_search(g, u, v)


class TestMatrixClosure:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bitsets(self, seed):
        g = gnm_random_digraph(25, 60, seed=seed)
        matrix, midx = transitive_closure_matrix(g)
        desc, bidx = transitive_closure_bitsets(g)
        assert midx == bidx
        n = len(midx)
        for i in range(n):
            for j in range(n):
                assert bool(matrix[i, j]) == bool((desc[i] >> j) & 1)

    def test_matrix_dtype_and_shape(self, diamond):
        matrix, index = transitive_closure_matrix(diamond)
        assert matrix.dtype == np.bool_
        assert matrix.shape == (4, 4)
        assert np.all(np.diagonal(matrix))

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        for seed in range(4):
            g = random_dag(25, 55, seed=seed)
            matrix, index = transitive_closure_matrix(g)
            ng = nx.DiGraph(list(g.edges()))
            ng.add_nodes_from(g.nodes())
            closure = nx.transitive_closure(ng, reflexive=True)
            for u in g.nodes():
                for v in g.nodes():
                    assert bool(matrix[index[u], index[v]]) == \
                        closure.has_edge(u, v) or u == v


class TestPairHelpers:
    def test_pairs_excludes_diagonal(self, chain10):
        pairs = transitive_closure_pairs(chain10)
        assert (0, 9) in pairs
        assert (0, 0) not in pairs
        assert len(pairs) == 45  # 10 choose 2 ordered pairs along a chain

    def test_count_includes_diagonal(self, chain10):
        assert count_reachable_pairs(chain10) == 45 + 10

    def test_count_on_cycle(self):
        g = DiGraph([(0, 1), (1, 2), (2, 0)])
        assert count_reachable_pairs(g) == 9
