"""Integration tests: every experiment function runs at tiny scale and
produces rows with the expected columns and the paper's qualitative
shape."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablation_meg,
    ablation_tlc,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    preprocess,
    table2,
)
from repro.graph.generators import gnm_random_digraph

TINY = dict(n=150, edge_counts=(160, 200), num_queries=500, seed=1)


class TestPreprocess:
    def test_counters(self):
        g = gnm_random_digraph(60, 150, seed=1)
        dag, counters = preprocess(g)
        assert counters["nodes_original"] == 60
        assert counters["edges_original"] == 150
        assert dag.num_nodes == counters["nodes_dag"]
        assert dag.num_edges == counters["edges_meg"]
        assert counters["edges_meg"] <= counters["edges_dag"]


class TestFigureExperiments:
    def test_fig8_rows_and_ratios(self):
        result = fig8(**TINY)
        assert result.name == "fig8"
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0 < row["node_ratio"] <= 1
            assert 0 < row["edge_ratio"] <= 1.0
            for scheme in ("interval", "dual-i", "dual-ii", "2hop"):
                assert row[f"{scheme}_index_ms"] >= 0
                assert row[f"{scheme}_query_ms"] >= 0
                assert row[f"{scheme}_space_bytes"] > 0

    def test_fig9_and_fig10(self):
        for func, name in ((fig9, "fig9"), (fig10, "fig10")):
            result = func(n=150, edge_counts=(170,), num_queries=300,
                          seed=2)
            assert result.name == name
            assert len(result.rows) == 1
            assert result.rows[0]["max_fanout"] in (5, 9)

    def test_fig11(self):
        result = fig11(sizes=(100, 200), num_queries=300, seed=3)
        assert [row["n"] for row in result.rows] == [100, 200]
        assert all(row["m"] == int(row["n"] * 1.5) for row in result.rows)

    def test_fig12_space_columns(self):
        result = fig12(n=150, edge_counts=(160, 210), seed=4)
        for row in result.rows:
            assert row["closure_space_bytes"] == (150 * 150 + 7) // 8
            assert row["dual-i_space_bytes"] > 0
            assert "t" in row

    def test_fig13_includes_closure(self):
        result = fig13(n=120, edge_counts=(130,), num_queries=300, seed=5)
        assert "closure_query_ms" in result.rows[0]

    def test_fig14_no_2hop(self):
        result = fig14(n=300, edge_counts=(320,), seed=6)
        row = result.rows[0]
        assert "2hop_space_bytes" not in row
        assert row["interval_space_bytes"] > 0


class TestTable2:
    def test_small_datasets(self):
        result = table2(names=("XMark",), num_queries=300, seed=1)
        row = result.rows[0]
        assert row["graph"] == "XMark"
        assert row["V_G"] == 6483
        assert row["paper_V_DAG"] == 6080
        # Calibration: measured DAG counts within 2% of the paper's.
        assert abs(row["V_DAG"] - row["paper_V_DAG"]) <= \
            0.02 * row["paper_V_DAG"]
        for scheme in ("interval", "dual-i", "dual-ii"):
            assert row[f"{scheme}_index_ms"] > 0


class TestAblations:
    def test_meg_ablation_shape(self):
        result = ablation_meg(n=150, edge_counts=(200,), seed=7)
        row = result.rows[0]
        assert row["meg_t"] <= row["no_meg_t"]
        assert row["meg_transitive_links"] <= row["no_meg_transitive_links"]

    def test_tlc_ablation_columns(self):
        result = ablation_tlc(n=150, edge_counts=(180,), num_queries=300,
                              seed=8)
        row = result.rows[0]
        for scheme in ("dual-i", "dual-ii", "dual-rt"):
            assert row[f"{scheme}_build_ms"] >= 0
            assert row[f"{scheme}_query_ms"] >= 0
            assert row[f"{scheme}_space_bytes"] > 0


class TestExtensionExperiments:
    def test_amortization(self):
        from repro.bench.experiments import amortization
        result = amortization(n=150, num_queries=800, seed=1,
                              schemes=("dual-i",))
        row = result.rows[0]
        assert row["scheme"] == "dual-i"
        assert row["build_ms"] > 0
        assert row["per_query_us"] >= 0

    def test_latency_tails(self):
        from repro.bench.experiments import latency_tails
        result = latency_tails(n=150, num_queries=500, seed=2,
                               schemes=("dual-i", "online-bfs"))
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["p50_us"] <= row["p99_us"] <= row["max_us"]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "table2", "ablation_meg", "ablation_tlc",
            "amortization", "latency_tails"}

    def test_column_order_helper(self):
        result = fig11(sizes=(100,), num_queries=100, seed=9,
                       schemes=("dual-i",))
        columns = result.column_order()
        assert columns[0] == "n"
        assert "dual-i_index_ms" in columns
