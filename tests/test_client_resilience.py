"""Client-side resilience: reconnect, retry, breaker, error taxonomy.

Every test runs against a real gateway on a background thread, with a
:class:`~repro.testing.faults.ChaosProxy` in between when the network
itself must fail.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.core.base import build_index
from repro.core.service import QueryService
from repro.graph.digraph import DiGraph
from repro.server.client import (
    IDEMPOTENT_VERBS,
    CircuitOpenError,
    ReachClient,
    RetryPolicy,
    ServerReplyError,
)
from repro.server.server import ReachServer, ServerConfig, ServerThread
from repro.testing.faults import ChaosProxy


def _make_server(**config_kwargs) -> ServerThread:
    graph = DiGraph([("a", "b"), ("b", "c"), ("d", "c")])
    index = build_index(graph, scheme="dual-i")
    config = ServerConfig(max_delay=0.0, **config_kwargs)
    server = ReachServer(QueryService(index), scheme="dual-i",
                         config=config)
    return ServerThread(server).start()


@pytest.fixture
def server():
    thread = _make_server()
    try:
        yield thread
    finally:
        thread.stop()


RETRY = RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05,
                    attempt_timeout=2.0, breaker_threshold=0, seed=0)


class TestReconnect:
    def test_queries_survive_a_severed_connection(self, server):
        with ChaosProxy("127.0.0.1", server.port) as proxy:
            client = ReachClient("127.0.0.1", proxy.port, retry=RETRY)
            try:
                assert client.query("a", "c") is True
                proxy.sever_all()
                # The next call reconnects and retries transparently.
                assert client.query("a", "c") is True
                report = client.error_report()
                assert report["reconnects"] >= 1
                assert report["resets"] + report["timeouts"] >= 1
                assert report["retries"] >= 1
            finally:
                client.close()

    def test_garbled_reply_counts_as_transport_failure(self, server):
        with ChaosProxy("127.0.0.1", server.port) as proxy:
            client = ReachClient("127.0.0.1", proxy.port, retry=RETRY)
            try:
                assert client.ping() == "pong"
                proxy.garble_next(1)
                assert client.query("a", "c") is True
                assert client.error_report()["resets"] \
                    + client.error_report()["timeouts"] >= 1
            finally:
                client.close()

    def test_deferred_connect_with_policy(self, server):
        # Nothing listens yet on a fresh port: with a policy the
        # constructor defers; the first call connects.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        dead_port = sock.getsockname()[1]
        sock.close()
        client = ReachClient("127.0.0.1", dead_port,
                             retry=RetryPolicy(max_attempts=1,
                                               attempt_timeout=0.2,
                                               breaker_threshold=0))
        try:
            assert client.error_report()["connect_failures"] >= 1
        finally:
            client.close()

    def test_without_policy_connect_failure_raises(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        dead_port = sock.getsockname()[1]
        sock.close()
        with pytest.raises(OSError):
            ReachClient("127.0.0.1", dead_port, timeout=0.2)


class TestRetryDiscrimination:
    def test_reload_is_never_retried(self, server):
        client = ReachClient("127.0.0.1", server.port, retry=RETRY)
        try:
            assert "reload" not in IDEMPOTENT_VERBS
            with pytest.raises(ServerReplyError) as excinfo:
                client.reload(index="/nonexistent/index.json")
            assert excinfo.value.code == "reload_failed"
            # One reply error, zero retries spent on it.
            assert client.error_report()["retries"] == 0
        finally:
            client.close()

    def test_exhausted_retries_surface_the_failure(self, server):
        with ChaosProxy("127.0.0.1", server.port) as proxy:
            policy = RetryPolicy(max_attempts=2, base_delay=0.01,
                                 attempt_timeout=0.3,
                                 breaker_threshold=0, seed=0)
            client = ReachClient("127.0.0.1", proxy.port, retry=policy)
            try:
                assert client.ping() == "pong"
                proxy.stop()  # no route at all now
                with pytest.raises((ConnectionError, OSError)):
                    client.query("a", "c")
                assert client.error_report()["retries"] >= 1
            finally:
                client.close()


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_then_recovers(self, server):
        with ChaosProxy("127.0.0.1", server.port) as proxy:
            policy = RetryPolicy(max_attempts=1, base_delay=0.01,
                                 attempt_timeout=0.2,
                                 breaker_threshold=2,
                                 breaker_cooldown=0.2, seed=0)
            client = ReachClient("127.0.0.1", proxy.port, retry=policy)
            try:
                assert client.ping() == "pong"
                proxy.blackhole(60.0)  # every attempt now times out
                for _ in range(2):
                    with pytest.raises(ConnectionError):
                        client.ping()
                # Threshold reached: the breaker fails fast.
                with pytest.raises(CircuitOpenError):
                    client.ping()
                assert client.error_report()["circuit_open"] >= 1
                # After the cooldown a half-open probe goes through.
                proxy.blackhole(0.0)
                time.sleep(0.25)
                assert client.ping() == "pong"
            finally:
                client.close()


class TestProbeVerbs:
    def test_health_and_ready(self, server):
        with ReachClient("127.0.0.1", server.port) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["reason"] is None
            assert health["uptime_seconds"] >= 0
            ready = client.ready()
            assert ready["ready"] is True
            assert ready["degraded"] is False

    def test_degraded_health_is_tallied(self, server):
        with ReachClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServerReplyError):
                client.reload(index="/nonexistent/index.json")
            health = client.health()
            assert health["status"] == "degraded"
            assert "reason" in health and health["reason"]
            assert client.error_report()["degraded"] == 1


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestRestartGrace:
    """``RetryPolicy.restart_grace``: refused connections during a
    full-server restart are ridden out, not breaker-tripped."""

    def test_query_spans_a_full_server_restart(self):
        import threading

        port = _free_port()
        first = _make_server(host="127.0.0.1", port=port)
        policy = RetryPolicy(max_attempts=3, base_delay=0.01,
                             attempt_timeout=2.0, breaker_threshold=2,
                             breaker_cooldown=30.0, restart_grace=10.0,
                             seed=0)
        client = ReachClient("127.0.0.1", port, retry=policy)
        second: list = []

        def restart() -> None:
            first.stop()
            time.sleep(0.3)  # the refused-connection window
            second.append(_make_server(host="127.0.0.1", port=port))

        try:
            assert client.query("a", "c") is True
            restarter = threading.Thread(target=restart)
            restarter.start()
            try:
                # Issued while the listener is down: the grace window
                # absorbs every refusal until the new server binds.
                assert client.query("a", "c") is True
                assert client.query("d", "a") is False
            finally:
                restarter.join()
            report = client.error_report()
            assert report["server_restarting"] >= 1
            # The restart never opened the breaker, even though the
            # threshold (2) is below the number of refused connects.
            assert report["circuit_open"] == 0
        finally:
            client.close()
            for thread in second:
                thread.stop()

    def test_refused_beyond_grace_surfaces_failure(self):
        port = _free_port()  # nothing ever listens here
        policy = RetryPolicy(max_attempts=1, base_delay=0.01,
                             breaker_threshold=0, restart_grace=0.2,
                             seed=0)
        client = ReachClient("127.0.0.1", port, retry=policy)
        try:
            started = time.monotonic()
            with pytest.raises(ConnectionError):
                client.ping()
            assert time.monotonic() - started >= 0.2
            report = client.error_report()
            assert report["server_restarting"] >= 1
            assert report["connect_failures"] >= 1
        finally:
            client.close()

    def test_zero_grace_keeps_the_old_behaviour(self):
        port = _free_port()
        client = ReachClient("127.0.0.1", port,
                             retry=RetryPolicy(max_attempts=1,
                                               breaker_threshold=0))
        try:
            with pytest.raises(ConnectionError):
                client.ping()
            assert client.error_report()["server_restarting"] == 0
        finally:
            client.close()

    def test_loadgen_stream_spans_a_restart(self):
        import threading

        from repro.server.loadgen import run_loadgen

        port = _free_port()
        first = _make_server(host="127.0.0.1", port=port)
        pairs = [("a", "c"), ("c", "a"), ("b", "c"), ("d", "c"),
                 ("a", "d")]
        expected = [True, False, True, True, False]
        second: list = []

        def restart() -> None:
            time.sleep(0.5)
            first.stop()
            time.sleep(0.3)
            second.append(_make_server(host="127.0.0.1", port=port))

        restarter = threading.Thread(target=restart)
        restarter.start()
        try:
            result = run_loadgen("127.0.0.1", port, pairs,
                                 connections=2, duration=2.0,
                                 pipeline=2, expected=expected)
        finally:
            restarter.join()
            for thread in second:
                thread.stop()
        # The stream rode through the restart: answers kept verifying
        # differentially on both sides of it, and not one was wrong.
        assert result.wrong_answers == 0
        assert result.ok > 0
        assert result.reconnects >= 1 \
            or result.errors.get("connect_failed", 0) >= 1


class TestErrorTaxonomy:
    def test_shed_replies_are_counted_separately(self):
        thread = _make_server(max_pending=1, policy="shed",
                              max_request_pairs=4096)
        try:
            policy = RetryPolicy(max_attempts=1, breaker_threshold=0)
            with ReachClient("127.0.0.1", thread.port,
                             retry=policy) as client:
                shed = 0
                for _ in range(20):
                    try:
                        client.query_batch(
                            [("a", "c")] * 64)
                    except ServerReplyError as exc:
                        assert exc.code == "overloaded"
                        shed += 1
                report = client.error_report()
                assert report["shed"] == shed
                assert shed > 0
                assert report["reply_errors"].get("overloaded") == shed
                # Transport counters stayed clean: shed is not a fault.
                assert report["resets"] == 0
                assert report["timeouts"] == 0
        finally:
            thread.stop()
