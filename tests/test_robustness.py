"""Robustness tests: pathological graph shapes and scale smoke tests.

Every labeled scheme must stay correct (and the dual schemes must not
blow up) on the shapes that stress their specific weak points: huge
in-degree stars (t ≈ n for spanning forests), deep chains (recursion
and interval nesting), wide antichains (chain covers), dense SCC blobs
(condensation), and a 100k-node scale smoke test for the almost-linear
build claim.
"""

from __future__ import annotations

import pytest

from repro.core.base import build_index
from repro.graph.digraph import DiGraph
from repro.graph.generators import citation_dag
from repro.graph.traversal import is_reachable_search
from tests.conftest import assert_index_matches_oracle, sample_pairs

DUAL_SCHEMES = ["dual-i", "dual-ii", "dual-rt"]


class TestPathologicalShapes:
    @pytest.mark.parametrize("scheme", DUAL_SCHEMES)
    def test_in_star(self, scheme):
        """Many parents, one child: every non-tree edge targets the same
        node, so the link table is t identical-head links."""
        g = DiGraph([(i, "sink") for i in range(60)])
        index = build_index(g, scheme=scheme)
        assert_index_matches_oracle(index, g)

    @pytest.mark.parametrize("scheme", DUAL_SCHEMES)
    def test_out_star(self, scheme):
        """One parent, many children: a pure tree, t = 0."""
        g = DiGraph([("hub", i) for i in range(60)])
        index = build_index(g, scheme=scheme)
        assert_index_matches_oracle(index, g)
        if scheme == "dual-i":
            assert index.t == 0

    @pytest.mark.parametrize("scheme", DUAL_SCHEMES)
    def test_bipartite_blowup(self, scheme):
        """Complete bipartite orientation: t = m - n + roots is large
        relative to n — the dual schemes' worst shape."""
        g = DiGraph([(u, v) for u in range(12) for v in range(12, 24)])
        index = build_index(g, scheme=scheme)
        assert_index_matches_oracle(index, g)

    @pytest.mark.parametrize("scheme", DUAL_SCHEMES + ["interval",
                                                       "chain-cover"])
    def test_deep_chain_with_shortcuts(self, scheme):
        """A 2000-deep chain plus shortcuts: deep recursion hazard and
        maximally nested intervals."""
        edges = [(i, i + 1) for i in range(2000)]
        edges += [(i, i + 100) for i in range(0, 1900, 97)]
        g = DiGraph(edges)
        index = build_index(g, scheme=scheme)
        assert index.reachable(0, 2000)
        assert not index.reachable(2000, 0)
        assert index.reachable(5, 105)

    @pytest.mark.parametrize("scheme", DUAL_SCHEMES)
    def test_single_giant_scc(self, scheme):
        """The whole graph is one cycle: condensation collapses it to a
        single node and every query is True."""
        n = 500
        g = DiGraph([(i, (i + 1) % n) for i in range(n)])
        index = build_index(g, scheme=scheme)
        assert index.reachable(0, n - 1)
        assert index.reachable(n - 1, 0)
        assert index.stats().dag_nodes == 1

    @pytest.mark.parametrize("scheme", DUAL_SCHEMES)
    def test_two_level_scc_sandwich(self, scheme):
        """Cycles feeding cycles through single bridges."""
        g = DiGraph()
        for base in (0, 10, 20):
            for i in range(5):
                g.add_edge(base + i, base + (i + 1) % 5)
        g.add_edge(3, 12)
        g.add_edge(14, 23)
        index = build_index(g, scheme=scheme)
        assert_index_matches_oracle(index, g,
                                    sample_pairs(g, 200, seed=1))

    def test_citation_hub_stress(self):
        """Heavy-tailed in-degree: hubs collect hundreds of non-tree
        edges; all dual variants agree with the oracle."""
        g = citation_dag(400, refs_per_node=3, seed=9)
        pairs = sample_pairs(g, 400, seed=10)
        for scheme in DUAL_SCHEMES:
            assert_index_matches_oracle(build_index(g, scheme=scheme),
                                        g, pairs)


class TestScaleSmoke:
    def test_100k_node_build_and_query(self):
        """The almost-linear-build claim at six figures: a 100k-node
        sparse DAG indexes in seconds and answers correctly."""
        from repro.graph.generators import single_rooted_dag

        n = 100_000
        g = single_rooted_dag(n, int(n * 1.01), max_fanout=5, seed=11)
        index = build_index(g, scheme="dual-i")
        assert index.reachable(0, n - 1) == \
            is_reachable_search(g, 0, n - 1)
        # Spot-check a sample against the oracle.
        for u, v in sample_pairs(g, 40, seed=12):
            assert index.reachable(u, v) == is_reachable_search(g, u, v)

    def test_wide_antichain_chain_cover(self):
        """10k isolated nodes: chain-cover needs 10k chains but must
        not allocate an n×k closure (the guard is that this finishes —
        the matrix is 10k × 10k int32 = 400 MB if naive... so keep it
        honest at 2k)."""
        n = 2000
        g = DiGraph(nodes=range(n))
        index = build_index(g, scheme="chain-cover")
        assert not index.reachable(0, 1)
        assert index.reachable(0, 0)
