"""Unit tests for the transitive-closure matrix baseline."""

from __future__ import annotations

import pytest

from repro.baselines.closure_index import TransitiveClosureIndex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from tests.conftest import assert_index_matches_oracle, sample_pairs


class TestTransitiveClosureIndex:
    def test_diamond(self, diamond):
        assert_index_matches_oracle(TransitiveClosureIndex.build(diamond),
                                    diamond)

    def test_cyclic(self, two_cycle_graph):
        index = TransitiveClosureIndex.build(two_cycle_graph)
        assert index.reachable(2, 1)
        assert index.reachable(0, 6)
        assert not index.reachable(6, 5)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        g = gnm_random_digraph(40, 100, seed=seed)
        index = TransitiveClosureIndex.build(g)
        assert_index_matches_oracle(index, g, sample_pairs(g, 300, seed))

    def test_unknown_vertex_raises(self, diamond):
        index = TransitiveClosureIndex.build(diamond)
        with pytest.raises(QueryError):
            index.reachable("a", "ghost")

    def test_unknown_option_rejected(self, diamond):
        with pytest.raises(TypeError):
            TransitiveClosureIndex.build(diamond, bogus=1)

    def test_space_is_quadratic_bits(self):
        g = gnm_random_digraph(64, 100, seed=1)
        stats = TransitiveClosureIndex.build(g).stats()
        assert stats.space_bytes == {"closure_matrix": 64 * 64 // 8}

    def test_empty_graph(self):
        index = TransitiveClosureIndex.build(DiGraph())
        with pytest.raises(QueryError):
            index.reachable(0, 0)

    def test_repr(self, diamond):
        index = TransitiveClosureIndex.build(diamond)
        assert "TransitiveClosureIndex" in repr(index)
