"""End-to-end verification of the paper's running example.

The fixtures reconstruct the graph of Figures 1/2/5; this module walks
the full Dual-I pipeline across it and asserts every intermediate value
the paper states, then the reachability answers of Theorem 3, including
the two narrated queries (u ⇝ v via one non-tree edge, u ⇝ w via two).
"""

from __future__ import annotations

import pytest

from repro.core.dual_i import DualIIndex
from repro.core.dual_ii import DualIIIndex
from repro.core.tlc_rangetree import DualRangeTreeIndex
from tests.conftest import brute_force_pairs, make_paper_graph


@pytest.fixture(scope="module")
def dual_i():
    # use_meg=False: the figures label the original spanning tree; MEG
    # would remove the redundant tree edges r->a / r->v first and change
    # the intervals.
    return DualIIndex.build(make_paper_graph(), use_meg=False)


class TestPipelineArtefacts:
    def test_t_and_transitive_links(self, dual_i):
        assert dual_i.t == 2
        assert dual_i.pipeline.num_transitive_links == 3

    def test_tlc_grid(self, dual_i):
        assert dual_i.tlc_matrix.xs == (7, 9)
        assert dual_i.tlc_matrix.ys == (1, 6)


class TestNarratedQueries:
    def test_u_reaches_v_via_one_link(self, dual_i):
        """Paper §3.1: the path u ⇝ v uses non-tree edge 9 -> [6,9)."""
        assert dual_i.reachable("u", "v")

    def test_u_reaches_w_via_two_links(self, dual_i):
        """Paper §3.1/§3.4: u ⇝ w chains 9 -> [6,9) and 7 -> [1,5);
        by Theorem 3, N[1,0] − N[−,0] = 1 > 0."""
        assert dual_i.reachable("u", "w")

    def test_w_does_not_reach_u(self, dual_i):
        assert not dual_i.reachable("w", "u")

    def test_tree_queries(self, dual_i):
        assert dual_i.reachable("r", "w")     # pure tree path
        assert dual_i.reachable("v", "g")
        assert not dual_i.reachable("e", "w")  # sibling subtrees

    def test_reflexive(self, dual_i):
        for node in "ravwu":
            assert dual_i.reachable(node, node)


class TestAllSchemesOnPaperGraph:
    @pytest.mark.parametrize("builder", [
        DualIIndex, DualIIIndex, DualRangeTreeIndex])
    def test_full_truth_table(self, builder):
        graph = make_paper_graph()
        index = builder.build(graph, use_meg=False)
        expected = brute_force_pairs(graph)
        for u in graph.nodes():
            for v in graph.nodes():
                assert index.reachable(u, v) == ((u, v) in expected), \
                    (builder.__name__, u, v)

    @pytest.mark.parametrize("builder", [
        DualIIndex, DualIIIndex, DualRangeTreeIndex])
    def test_full_truth_table_with_meg(self, builder):
        """MEG changes the spanning tree but never the answers."""
        graph = make_paper_graph()
        index = builder.build(graph, use_meg=True)
        expected = brute_force_pairs(graph)
        for u in graph.nodes():
            for v in graph.nodes():
                assert index.reachable(u, v) == ((u, v) in expected), \
                    (builder.__name__, u, v)
