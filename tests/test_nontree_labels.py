"""Unit tests for non-tree label assignment (Algorithm 2)."""

from __future__ import annotations

from bisect import bisect_left

import pytest

from repro.core.intervals import assign_intervals
from repro.core.linktable import build_link_table, transitive_link_table
from repro.core.nontree_labels import assign_nontree_labels
from repro.graph.generators import random_dag
from repro.graph.spanning import spanning_forest


def _artefacts(graph):
    forest = spanning_forest(graph)
    labeling = assign_intervals(forest)
    base = build_link_table(forest.nontree_edges, labeling)
    closed = transitive_link_table(base)
    return forest, labeling, closed


class TestPaperFigure5:
    def test_root_label(self, paper_graph):
        forest, labeling, table = _artefacts(paper_graph)
        labels = assign_nontree_labels(forest, labeling, table)
        # Paper: root is <0, -, ->; sentinels are len(xs)=2 / len(ys)=2.
        assert labels["r"] == (0, 2, 2)
        assert labels.is_sentinel_z("r")

    def test_u_label(self, paper_graph):
        forest, labeling, table = _artefacts(paper_graph)
        labels = assign_nontree_labels(forest, labeling, table)
        # Paper: u = <1, -, ->.
        assert labels["u"] == (1, 2, 2)

    def test_g_label_is_paper_figure5_v(self, paper_graph):
        """Figure 5 shows a node labeled <1,1,1>: the child [8,9) of the
        link target [6,9) — node `g` in our reconstruction."""
        forest, labeling, table = _artefacts(paper_graph)
        labels = assign_nontree_labels(forest, labeling, table)
        assert labels["g"] == (1, 1, 1)

    def test_w_label(self, paper_graph):
        forest, labeling, table = _artefacts(paper_graph)
        labels = assign_nontree_labels(forest, labeling, table)
        # Paper: w = <0, 0, 0>.
        assert labels["w"] == (0, 0, 0)

    def test_link_targets_have_own_z(self, paper_graph):
        forest, labeling, table = _artefacts(paper_graph)
        labels = assign_nontree_labels(forest, labeling, table)
        # v=[6,9) and a=[1,5) have incoming links: z points at themselves.
        assert labels["v"][2] == table.index_y(6)
        assert labels["a"][2] == table.index_y(1)


class TestDefinition2:
    @pytest.mark.parametrize("seed", range(8))
    def test_labels_match_definition(self, seed):
        """Every ⟨x, y, z⟩ equals Definition 2 evaluated directly."""
        g = random_dag(35, 85, seed=seed)
        forest, labeling, table = _artefacts(g)
        labels = assign_nontree_labels(forest, labeling, table)
        xs, ys = table.xs, table.ys
        has_incoming = set(ys)
        for node in g.nodes():
            interval = labeling.interval[node]
            expected_x = bisect_left(xs, interval.start)
            expected_y = bisect_left(xs, interval.end)
            # Walk up the tree for the lowest ancestor-or-self with an
            # incoming link.
            expected_z = len(ys)
            cursor = node
            while True:
                if labeling.start(cursor) in has_incoming:
                    expected_z = bisect_left(ys, labeling.start(cursor))
                    break
                if cursor not in forest.parent:
                    break
                cursor = forest.parent[cursor]
            assert labels[node] == (expected_x, expected_y, expected_z), \
                node

    def test_tree_only_graph_all_sentinels(self, chain10):
        forest, labeling, table = _artefacts(chain10)
        labels = assign_nontree_labels(forest, labeling, table)
        for node in chain10.nodes():
            assert labels[node] == (0, 0, 0)  # len(xs)=len(ys)=0 sentinels
            assert labels.is_sentinel_z(node)

    def test_len(self, paper_graph):
        forest, labeling, table = _artefacts(paper_graph)
        labels = assign_nontree_labels(forest, labeling, table)
        assert len(labels) == 12
