"""Unit tests for the GRAIL-style extension baseline."""

from __future__ import annotations

import pytest

from repro.baselines.grail import GrailIndex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph, random_tree, single_rooted_dag
from tests.conftest import assert_index_matches_oracle, sample_pairs


class TestGrailIndex:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_diamond(self, k, diamond):
        index = GrailIndex.build(diamond, k=k)
        assert_index_matches_oracle(index, diamond)

    def test_invalid_k_rejected(self, diamond):
        with pytest.raises(ValueError):
            GrailIndex.build(diamond, k=0)

    def test_unknown_option_rejected(self, diamond):
        with pytest.raises(TypeError):
            GrailIndex.build(diamond, bogus=1)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        g = gnm_random_digraph(40, 100, seed=seed)
        index = GrailIndex.build(g, seed=seed)
        assert_index_matches_oracle(index, g, sample_pairs(g, 300, seed))

    @pytest.mark.parametrize("seed", range(3))
    def test_rooted_dags_fully(self, seed):
        g = single_rooted_dag(60, 90, seed=seed)
        index = GrailIndex.build(g, k=3, seed=seed)
        assert_index_matches_oracle(index, g)

    def test_cyclic(self, two_cycle_graph):
        index = GrailIndex.build(two_cycle_graph)
        assert index.reachable(1, 2)
        assert index.reachable(0, 6)
        assert not index.reachable(6, 0)

    def test_unknown_vertex_raises(self, diamond):
        index = GrailIndex.build(diamond)
        with pytest.raises(QueryError):
            index.reachable("ghost", "a")

    def test_filter_is_sound_on_trees(self):
        """On a tree the label filter alone is exact: no false negatives
        and — with a tree's nested intervals — no fallback errors."""
        tree = random_tree(80, max_fanout=4, seed=2)
        index = GrailIndex.build(tree, k=2, seed=3)
        assert_index_matches_oracle(
            index, tree, sample_pairs(tree, 400, 4))

    def test_labels_necessary_condition(self):
        """If u reaches v, every GRAIL label of v nests inside u's."""
        from repro.graph.traversal import is_reachable_search
        g = single_rooted_dag(70, 100, seed=5)
        index = GrailIndex.build(g, k=3, seed=6)
        comp = index._component_of
        for u in g.nodes():
            for v in g.nodes():
                if is_reachable_search(g, u, v):
                    assert index._maybe_reachable(comp[u], comp[v])

    def test_stats(self, diamond):
        stats = GrailIndex.build(diamond, k=2).stats()
        assert stats.scheme == "grail"
        assert stats.space_bytes["grail_labels"] == 2 * 2 * 4 * 4

    def test_empty_graph(self):
        index = GrailIndex.build(DiGraph())
        with pytest.raises(QueryError):
            index.reachable(0, 0)

    def test_repr(self, diamond):
        assert "GrailIndex" in repr(GrailIndex.build(diamond, k=2))
