"""Unit tests for the Dual-I index."""

from __future__ import annotations

import pytest

from repro.core.dual_i import DualIIndex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    random_tree,
    single_rooted_dag,
)
from tests.conftest import assert_index_matches_oracle, sample_pairs


class TestBuild:
    def test_unknown_option_rejected(self, diamond):
        with pytest.raises(TypeError):
            DualIIndex.build(diamond, bogus=True)

    def test_empty_graph(self):
        index = DualIIndex.build(DiGraph())
        with pytest.raises(QueryError):
            index.reachable(0, 0)

    def test_single_node(self):
        index = DualIIndex.build(DiGraph(nodes=["x"]))
        assert index.reachable("x", "x")

    def test_tree_has_t_zero(self):
        index = DualIIndex.build(random_tree(60, seed=1))
        assert index.t == 0

    def test_repr(self, diamond):
        assert "DualIIndex" in repr(DualIIndex.build(diamond))


class TestQueries:
    def test_diamond(self, diamond):
        index = DualIIndex.build(diamond)
        assert_index_matches_oracle(index, diamond)

    def test_unknown_vertex_raises(self, diamond):
        index = DualIIndex.build(diamond)
        with pytest.raises(QueryError):
            index.reachable("a", "ghost")
        with pytest.raises(QueryError):
            index.reachable("ghost", "a")

    def test_same_scc_members_reach_each_other(self, two_cycle_graph):
        index = DualIIndex.build(two_cycle_graph)
        assert index.reachable(0, 2)
        assert index.reachable(2, 0)
        assert index.reachable(0, 6)
        assert not index.reachable(6, 0)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_cyclic_graphs(self, seed):
        g = gnm_random_digraph(45, 110, seed=seed)
        index = DualIIndex.build(g)
        assert_index_matches_oracle(index, g, sample_pairs(g, 400, seed))

    @pytest.mark.parametrize("seed", range(4))
    def test_rooted_dags_without_meg(self, seed):
        g = single_rooted_dag(120, 170, max_fanout=5, seed=seed)
        index = DualIIndex.build(g, use_meg=False)
        assert_index_matches_oracle(index, g, sample_pairs(g, 400, seed))

    def test_reachable_many(self, diamond):
        index = DualIIndex.build(diamond)
        answers = index.reachable_many([("a", "d"), ("d", "a")])
        assert answers == [True, False]

    def test_contains(self, diamond):
        index = DualIIndex.build(diamond)
        assert "a" in index
        assert "ghost" not in index


class TestStats:
    def test_stats_fields(self, two_cycle_graph):
        index = DualIIndex.build(two_cycle_graph)
        stats = index.stats()
        assert stats.scheme == "dual-i"
        assert stats.num_nodes == 7
        assert stats.num_edges == 8
        assert stats.dag_nodes == 3
        assert stats.t is not None
        assert stats.transitive_links is not None
        assert stats.build_seconds > 0
        assert {"interval_labels", "nontree_labels",
                "tlc_matrix"} == set(stats.space_bytes)
        assert stats.total_space_bytes > 0

    def test_as_dict_contains_phases(self, diamond):
        stats = DualIIndex.build(diamond).stats()
        d = stats.as_dict()
        assert d["scheme"] == "dual-i"
        assert any(key.startswith("seconds_") for key in d)
        assert any(key.startswith("bytes_") for key in d)

    def test_tlc_matrix_scales_with_t_squared(self):
        small = DualIIndex.build(
            single_rooted_dag(200, 220, seed=1), use_meg=False)
        large = DualIIndex.build(
            single_rooted_dag(200, 320, seed=1), use_meg=False)
        assert large.t > small.t
        assert large.stats().space_bytes["tlc_matrix"] > \
            small.stats().space_bytes["tlc_matrix"]
