"""Unit tests for ASCII chart rendering."""

from __future__ import annotations

from repro.bench.charts import experiment_chart, render_series_chart
from repro.bench.experiments import ExperimentResult


class TestRenderSeriesChart:
    ROWS = [
        {"m": 100, "a_query_ms": 1.0, "b_query_ms": 100.0},
        {"m": 200, "a_query_ms": 2.0, "b_query_ms": 400.0},
    ]

    def test_contains_labels_and_values(self):
        chart = render_series_chart(self.ROWS, "m",
                                    ["a_query_ms", "b_query_ms"],
                                    title="T")
        assert "T" in chart
        assert "m=100" in chart and "m=200" in chart
        assert "a_query_ms" in chart
        assert "400" in chart

    def test_log_scale_autodetected(self):
        chart = render_series_chart(self.ROWS, "m", ["a_query_ms",
                                                     "b_query_ms"],
                                    title="T")
        assert "log scale" in chart

    def test_linear_scale_for_narrow_spread(self):
        rows = [{"m": 1, "a": 10.0, "b": 12.0}]
        chart = render_series_chart(rows, "m", ["a", "b"], title="T")
        assert "linear scale" in chart

    def test_forced_scale(self):
        chart = render_series_chart(self.ROWS, "m", ["a_query_ms"],
                                    title="T", log_scale=False)
        assert "linear scale" in chart

    def test_bigger_value_longer_bar(self):
        chart = render_series_chart(self.ROWS, "m",
                                    ["a_query_ms", "b_query_ms"],
                                    log_scale=False)
        lines = [ln for ln in chart.splitlines() if "query_ms" in ln]
        bar_a = lines[0].count("█")
        bar_b = lines[1].count("█")
        assert bar_b > bar_a

    def test_empty_rows(self):
        assert "(no data)" in render_series_chart([], "m", ["a"],
                                                  title="T")

    def test_missing_values_skipped(self):
        rows = [{"m": 1, "a": None, "b": 3.0}]
        chart = render_series_chart(rows, "m", ["a", "b"])
        assert "b" in chart

    def test_single_value(self):
        chart = render_series_chart([{"m": 1, "a": 5.0}], "m", ["a"])
        assert "5" in chart


class TestExperimentChart:
    def test_picks_query_columns(self):
        result = ExperimentResult(
            name="x", title="X",
            rows=[{"m": 10, "dual-i_query_ms": 1.0,
                   "dual-i_index_ms": 2.0}])
        chart = experiment_chart(result)
        assert "dual-i_query_ms" in chart
        assert "index_ms" not in chart

    def test_falls_back_to_space(self):
        result = ExperimentResult(
            name="x", title="X",
            rows=[{"n": 10, "dual-i_space_bytes": 100}])
        assert "dual-i_space_bytes" in experiment_chart(result)

    def test_empty_result(self):
        assert experiment_chart(
            ExperimentResult(name="x", title="X", rows=[])) == ""

    def test_no_chartable_series(self):
        result = ExperimentResult(name="x", title="X",
                                  rows=[{"m": 1, "note": "hi"}])
        assert experiment_chart(result) == ""
