"""Unit tests for the minimal equivalent graph (Algorithm 3 + baseline)."""

from __future__ import annotations

import pytest

from repro.exceptions import NotADAGError
from repro.graph.closure import transitive_closure_pairs
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag
from repro.graph.meg import (
    minimal_equivalent_graph,
    minimal_equivalent_graph_closure,
)


def _figure7_graph() -> DiGraph:
    """The paper's Figure 7(a): a 6-node DAG with superfluous edges.

    Reconstructed to exercise the paper's worked example: visiting C in
    topological order removes A -> C because A is an ancestor of C's
    other parent B.
    """
    return DiGraph([
        ("A", "B"), ("A", "C"), ("B", "C"),
        ("C", "D"), ("C", "E"), ("B", "E"),
        ("D", "F"), ("E", "F"), ("B", "F"),
    ])


class TestAlgorithm3:
    def test_removes_direct_shortcut(self):
        g = DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        result = minimal_equivalent_graph(g)
        assert ("a", "c") in result.removed_edges
        assert result.graph.num_edges == 2

    def test_diamond_is_already_minimal(self, diamond):
        result = minimal_equivalent_graph(diamond)
        assert result.num_removed == 0
        assert result.graph == diamond

    def test_figure7_example(self):
        g = _figure7_graph()
        result = minimal_equivalent_graph(g)
        removed = set(result.removed_edges)
        # The paper's narration: A -> C goes because A reaches C via B.
        assert ("A", "C") in removed
        # B -> E (via C) and B -> F (via C ... F) are also superfluous.
        assert ("B", "E") in removed
        assert ("B", "F") in removed
        assert result.graph.num_edges == 6

    def test_input_untouched(self):
        g = DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        minimal_equivalent_graph(g)
        assert g.num_edges == 3

    def test_chain_untouched(self, chain10):
        assert minimal_equivalent_graph(chain10).num_removed == 0

    def test_cycle_rejected(self, two_cycle_graph):
        with pytest.raises(NotADAGError):
            minimal_equivalent_graph(two_cycle_graph)

    def test_empty_graph(self):
        result = minimal_equivalent_graph(DiGraph())
        assert result.num_removed == 0
        assert result.graph.num_nodes == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_preserves_reachability(self, seed):
        g = random_dag(30, 120, seed=seed)
        reduced = minimal_equivalent_graph(g).graph
        assert transitive_closure_pairs(reduced) == \
            transitive_closure_pairs(g)

    @pytest.mark.parametrize("seed", range(6))
    def test_is_minimal(self, seed):
        """Removing any surviving edge changes reachability (Theorem 4)."""
        g = random_dag(15, 40, seed=seed)
        reduced = minimal_equivalent_graph(g).graph
        original_pairs = transitive_closure_pairs(g)
        for u, v in list(reduced.edges()):
            probe = reduced.copy()
            probe.remove_edge(u, v)
            assert transitive_closure_pairs(probe) != original_pairs, \
                f"edge ({u}, {v}) was removable but kept"


class TestClosureBaselineAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_two_implementations_agree(self, seed):
        g = random_dag(25, 90, seed=seed)
        ours = minimal_equivalent_graph(g).graph
        baseline = minimal_equivalent_graph_closure(g).graph
        assert ours == baseline

    def test_baseline_rejects_cycles(self, two_cycle_graph):
        with pytest.raises(NotADAGError):
            minimal_equivalent_graph_closure(two_cycle_graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx_transitive_reduction(self, seed):
        nx = pytest.importorskip("networkx")
        g = random_dag(30, 100, seed=seed)
        ours = minimal_equivalent_graph(g).graph
        ng = nx.DiGraph(list(g.edges()))
        ng.add_nodes_from(g.nodes())
        reduction = nx.transitive_reduction(ng)
        assert sorted(ours.edges()) == sorted(reduction.edges())
