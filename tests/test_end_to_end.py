"""End-to-end scenario tests: full user workflows through the public
surface only — generate, persist, reload, query, validate, benchmark,
compare — the paths a downstream adopter actually walks."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_result_files
from repro.bench.runner import main as bench_main
from repro.cli import main as cli_main


class TestIndexLifecycleWorkflow:
    def test_generate_build_save_reload_query_validate(self, tmp_path,
                                                       capsys):
        """The full CLI lifecycle on one graph."""
        graph_file = tmp_path / "pipeline.txt"
        index_file = tmp_path / "pipeline-index.json"

        # 1. generate a sparse DAG
        assert cli_main(["generate", "dag", "--nodes", "500", "--edges",
                         "650", "--seed", "5",
                         "--out", str(graph_file)]) == 0
        # 2. inspect it
        assert cli_main(["stats", str(graph_file)]) == 0
        # 3. build + persist the index
        assert cli_main(["build", str(graph_file), "--scheme", "dual-i",
                         "--save", str(index_file)]) == 0
        # 4. the saved document is valid JSON with our format marker
        document = json.loads(index_file.read_text())
        assert document["format"] == "repro-dual-i"
        # 5. reload and query without the graph
        capsys.readouterr()
        assert cli_main(["query", "--index", str(index_file),
                         "--pairs", "0:250", "250:0"]) == 0
        out = capsys.readouterr().out
        assert "0 -> 250" in out
        # 6. validate the freshly built index against ground truth
        assert cli_main(["validate", str(graph_file), "--sample",
                         "400"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_dataset_workflow(self, tmp_path, capsys):
        """Dataset stand-in → file → every-scheme CLI query agreement."""
        graph_file = tmp_path / "xmark.txt"
        assert cli_main(["generate", "dataset", "--dataset", "XMark",
                         "--out", str(graph_file)]) == 0
        answers = {}
        for scheme in ("dual-i", "dual-ii", "interval"):
            capsys.readouterr()
            assert cli_main(["query", str(graph_file), "--scheme",
                             scheme, "--pairs", "0:5000",
                             "5000:0"]) == 0
            answers[scheme] = capsys.readouterr().out
        assert answers["dual-i"] == answers["dual-ii"] == \
            answers["interval"]


class TestBenchmarkRegressionWorkflow:
    def test_run_twice_and_compare(self, tmp_path):
        """Two runner invocations produce CSVs the comparison tool can
        diff; identical parameters should not flag regressions beyond a
        generous timing tolerance."""
        out_a = tmp_path / "run-a"
        out_b = tmp_path / "run-b"
        assert bench_main(["run", "ablation_meg", "--scale", "quick",
                           "--out", str(out_a)]) == 0
        assert bench_main(["run", "ablation_meg", "--scale", "quick",
                           "--out", str(out_b)]) == 0
        report = compare_result_files(out_a / "ablation_meg.csv",
                                      out_b / "ablation_meg.csv",
                                      tolerance=20.0)
        # Space columns are deterministic; only timing wobbles, and the
        # 20x tolerance absorbs CI noise.
        assert report.ok, report.summary()
        space_deltas = [d for d in report.deltas
                        if d.column.endswith("_bytes")]
        assert all(d.ratio == 1.0 for d in space_deltas)


class TestLibraryWorkflow:
    def test_explain_and_witness_round_trip(self):
        """Library-level flow: build, query, explain, verify evidence."""
        from repro.core import (
            DualIIndex,
            expand_witness,
            explain_query,
            verify_witness,
        )
        from repro.graph.generators import single_rooted_dag
        from repro.graph.traversal import reachable_set

        graph = single_rooted_dag(300, 400, max_fanout=4, seed=6)
        index = DualIIndex.build(graph, use_meg=False)
        source = 2
        targets = sorted(reachable_set(graph, source) - {source})
        assert targets, "generator should give node 2 descendants"
        for target in targets[:10]:
            explanation = explain_query(index, source, target)
            assert explanation.reachable
            if explanation.kind == "non-tree":
                full = expand_witness(graph, explanation.witness)
                assert verify_witness(graph, full)

    def test_batch_and_analytics_agree(self):
        """BatchQuerier, analytics counts, and scalar queries line up."""
        from repro.analysis.reachability import descendant_counts
        from repro.core import DualIIndex
        from repro.core.batch import BatchQuerier
        from repro.graph.generators import gnm_random_digraph

        graph = gnm_random_digraph(80, 200, seed=7)
        index = DualIIndex.build(graph)
        querier = BatchQuerier(index)
        nodes = list(graph.nodes())
        matrix = querier.reachability_matrix(nodes, nodes)
        counts = descendant_counts(graph)
        for i, node in enumerate(nodes):
            assert int(matrix[i].sum()) == counts[node]
