"""QueryService serving layer: batching, cache, sharding, metrics."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.reporting import format_kv_table
from repro.bench.workloads import chunked, random_query_pairs
from repro.core.base import build_index
from repro.core.service import QueryService, ServiceMetrics
from repro.exceptions import QueryError
from repro.graph.generators import random_dag, single_rooted_dag

VECTOR_SCHEME = "dual-i"      # serves through a label-array kernel
FALLBACK_SCHEME = "2hop"      # no kernel: scalar reachable_many path


@pytest.fixture(scope="module")
def graph():
    return random_dag(60, 90, seed=11)


@pytest.fixture(scope="module")
def vector_index(graph):
    return build_index(graph, scheme=VECTOR_SCHEME)


@pytest.fixture(scope="module")
def fallback_index(graph):
    return build_index(graph, scheme=FALLBACK_SCHEME)


@pytest.fixture(scope="module")
def workload(graph):
    return random_query_pairs(graph, 500, seed=5)


@pytest.fixture(scope="module")
def expected(vector_index, workload):
    reach = vector_index.reachable
    return [reach(u, v) for u, v in workload]


class TestQueryBatch:
    def test_empty_batch(self, vector_index):
        with QueryService(vector_index) as service:
            assert service.query_batch([]) == []
            assert service.metrics.batches == 1
            assert service.metrics.queries == 0

    def test_matches_scalar_loop(self, vector_index, workload, expected):
        with QueryService(vector_index) as service:
            assert service.query_batch(workload) == expected

    def test_fallback_matches_scalar_loop(self, fallback_index, workload,
                                          expected):
        with QueryService(fallback_index) as service:
            assert not service.vectorised
            assert service.query_batch(workload) == expected
            assert service.metrics.scalar_queries == len(workload)
            assert service.metrics.kernel_queries == 0

    def test_duplicate_pairs(self, vector_index):
        pairs = [(0, 7), (0, 7), (7, 0), (0, 7)]
        with QueryService(vector_index) as service:
            answers = service.query_batch(pairs)
        assert answers[0] == answers[1] == answers[3]

    def test_self_pairs_reflexive(self, vector_index, graph):
        pairs = [(u, u) for u in list(graph.nodes())[:10]]
        with QueryService(vector_index) as service:
            assert service.query_batch(pairs) == [True] * len(pairs)

    @pytest.mark.parametrize("scheme", [VECTOR_SCHEME, FALLBACK_SCHEME])
    def test_unknown_node_raises(self, graph, scheme):
        index = build_index(graph, scheme=scheme)
        with QueryService(index) as service:
            with pytest.raises(QueryError):
                service.query_batch([(0, 1), (0, 10_000)])
            with pytest.raises(QueryError):
                service.query_batch([("ghost", 0)])

    def test_single_query_endpoint(self, vector_index, expected, workload):
        with QueryService(vector_index) as service:
            u, v = workload[0]
            assert service.query(u, v) == expected[0]
            assert service.metrics.queries == 1


class TestSharding:
    def test_sharded_equals_serial(self, vector_index, workload, expected):
        with QueryService(vector_index, max_workers=4,
                          chunk_size=32) as service:
            assert service.query_batch(workload) == expected

    def test_sharded_scalar_fallback(self, fallback_index, workload,
                                     expected):
        with QueryService(fallback_index, max_workers=3,
                          chunk_size=64) as service:
            assert service.query_batch(workload) == expected

    def test_invalid_parameters(self, vector_index):
        with pytest.raises(ValueError):
            QueryService(vector_index, cache_size=-1)
        with pytest.raises(ValueError):
            QueryService(vector_index, max_workers=0)
        with pytest.raises(ValueError):
            QueryService(vector_index, chunk_size=0)


class TestCache:
    def test_cache_hits_match_cold_answers(self, vector_index, workload,
                                           expected):
        with QueryService(vector_index, cache_size=10_000) as service:
            cold = service.query_batch(workload)
            misses = service.metrics.cache_misses
            warm = service.query_batch(workload)
            assert cold == warm == expected
            assert service.metrics.cache_misses == misses  # all hits
            assert service.metrics.cache_hits >= len(workload)
            assert 0 < service.metrics.cache_hit_rate < 1

    def test_in_batch_dedupe_counts_as_hit(self, vector_index):
        with QueryService(vector_index, cache_size=64) as service:
            service.query_batch([(0, 9), (0, 9), (0, 9)])
            assert service.metrics.cache_misses == 1
            assert service.metrics.cache_hits == 2

    def test_lru_eviction_bounds_cache(self, vector_index, workload):
        with QueryService(vector_index, cache_size=16) as service:
            service.query_batch(workload)
            assert len(service._cache) <= 16

    def test_clear_cache(self, vector_index, workload):
        with QueryService(vector_index, cache_size=1000) as service:
            service.query_batch(workload)
            service.clear_cache()
            misses = service.metrics.cache_misses
            service.query_batch(workload[:5])
            assert service.metrics.cache_misses > misses

    def test_cached_scalar_fallback(self, fallback_index, workload,
                                    expected):
        with QueryService(fallback_index, cache_size=10_000) as service:
            assert service.query_batch(workload) == expected
            assert service.query_batch(workload) == expected


class TestQueryMatrix:
    def test_matrix_matches_scalar(self, vector_index, graph):
        nodes = list(graph.nodes())
        sources, targets = nodes[:8], nodes[8:20]
        with QueryService(vector_index) as service:
            matrix = service.query_matrix(sources, targets)
        assert matrix.shape == (8, 12)
        reach = vector_index.reachable
        for i, u in enumerate(sources):
            for j, v in enumerate(targets):
                assert matrix[i, j] == reach(u, v)

    def test_matrix_scalar_fallback(self, fallback_index, vector_index,
                                    graph):
        nodes = list(graph.nodes())[:6]
        with QueryService(fallback_index) as scalar_service, \
                QueryService(vector_index) as vector_service:
            assert np.array_equal(
                scalar_service.query_matrix(nodes, nodes),
                vector_service.query_matrix(nodes, nodes))

    @pytest.mark.parametrize("scheme", [VECTOR_SCHEME, FALLBACK_SCHEME])
    def test_matrix_unknown_node_raises(self, graph, scheme):
        index = build_index(graph, scheme=scheme)
        with QueryService(index) as service:
            with pytest.raises(QueryError):
                service.query_matrix([0, 10_000], [1])


class TestMetrics:
    def test_counters_and_timers(self, vector_index, workload):
        with QueryService(vector_index) as service:
            for batch in chunked(workload, 128):
                service.query_batch(batch)
            metrics = service.metrics
            assert metrics.queries == len(workload)
            assert metrics.batches == len(list(chunked(workload, 128)))
            assert metrics.kernel_queries == len(workload)
            assert metrics.positives == sum(
                vector_index.reachable_many(workload))
            assert metrics.queries_per_second > 0
            assert metrics.stage_seconds["total"] >= \
                metrics.stage_seconds["kernel"]

    def test_as_dict_keys_and_kv_table(self, vector_index, workload):
        with QueryService(vector_index) as service:
            service.query_batch(workload)
            row = service.metrics.as_dict()
        for key in ("queries", "batches", "positives", "cache_hits",
                    "cache_misses", "cache_hit_rate", "kernel_queries",
                    "scalar_queries", "queries_per_second",
                    "seconds_kernel", "seconds_map", "seconds_total"):
            assert key in row, key
        table = format_kv_table(row, title="serve report")
        assert "### serve report" in table
        assert "| queries |" in table.replace("  ", " ")

    def test_fresh_metrics_are_zero(self):
        metrics = ServiceMetrics()
        assert metrics.cache_hit_rate == 0.0
        assert metrics.queries_per_second == 0.0

    def test_uptime_advances(self):
        metrics = ServiceMetrics()
        time.sleep(0.01)
        first = metrics.uptime_seconds
        assert first >= 0.01
        time.sleep(0.005)
        assert metrics.uptime_seconds > first
        assert metrics.as_dict()["uptime_seconds"] > first

    def test_reset_zeroes_counters_and_restarts_uptime(self,
                                                       vector_index,
                                                       workload):
        with QueryService(vector_index, cache_size=256) as service:
            service.query_batch(workload)
            metrics = service.metrics
            assert metrics.queries > 0
            time.sleep(0.01)
            uptime_before = metrics.uptime_seconds
            metrics.reset()
            assert metrics.queries == 0
            assert metrics.batches == 0
            assert metrics.positives == 0
            assert metrics.cache_hits == 0
            assert metrics.cache_misses == 0
            assert metrics.kernel_queries == 0
            assert metrics.scalar_queries == 0
            assert metrics.stage_seconds == {}
            assert metrics.uptime_seconds < uptime_before
            # The service keeps counting from zero after a reset.
            service.query_batch(workload[:10])
            assert metrics.queries == 10

    def test_repr_and_close_idempotent(self, vector_index):
        service = QueryService(vector_index, max_workers=2)
        assert "vectorised" in repr(service)
        service.close()
        service.close()


def test_batch_path_speedup_over_scalar_loop():
    """Acceptance criterion: the QueryService batch path answers a
    100k-pair workload >= 5x faster than the scalar ``reachable`` loop
    on the same backend (Dual-II here: its per-query bisects leave the
    most room, and the vectorised kernel answers via two gathers into
    precomputed rank tables)."""
    graph = single_rooted_dag(2000, 3400, max_fanout=5, seed=0)
    index = build_index(graph, scheme="dual-ii")
    pairs = random_query_pairs(graph, 100_000, seed=1)
    reach = index.reachable

    with QueryService(index) as service:
        service.query_batch(pairs)  # warm NumPy/code paths once
        service_seconds = min(
            _timed(lambda: service.query_batch(pairs)) for _ in range(3))
        batched = service.query_batch(pairs)
    scalar_seconds = min(
        _timed(lambda: [reach(u, v) for u, v in pairs])
        for _ in range(2))
    assert batched == [reach(u, v) for u, v in pairs]
    speedup = scalar_seconds / service_seconds
    assert speedup >= 5.0, (
        f"service {service_seconds * 1e3:.1f} ms vs scalar "
        f"{scalar_seconds * 1e3:.1f} ms = {speedup:.2f}x (need >= 5x)")


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
