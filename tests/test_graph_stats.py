"""Unit tests for graph statistics."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.stats import degree_histogram, graph_stats


class TestGraphStats:
    def test_chain(self, chain10):
        stats = graph_stats(chain10)
        assert stats.num_nodes == 10
        assert stats.num_edges == 9
        assert stats.num_roots == 1
        assert stats.num_leaves == 1
        assert stats.max_in_degree == 1
        assert stats.max_out_degree == 1
        assert stats.num_sccs == 10
        assert stats.largest_scc == 1
        assert stats.num_self_loops == 0

    def test_cyclic(self, two_cycle_graph):
        stats = graph_stats(two_cycle_graph)
        assert stats.num_sccs == 3
        assert stats.largest_scc == 3

    def test_self_loops_counted(self):
        g = DiGraph([(1, 1), (2, 2), (1, 2)])
        assert graph_stats(g).num_self_loops == 2

    def test_empty(self):
        stats = graph_stats(DiGraph())
        assert stats.num_nodes == 0
        assert stats.density == 0.0
        assert stats.largest_scc == 0

    def test_as_dict_round_trip(self, diamond):
        d = graph_stats(diamond).as_dict()
        assert d["num_nodes"] == 4
        assert d["num_edges"] == 4
        assert set(d) >= {"density", "num_sccs", "num_roots"}


class TestDegreeHistogram:
    def test_out(self, diamond):
        hist = degree_histogram(diamond, "out")
        assert hist == {2: 1, 1: 2, 0: 1}

    def test_in(self, diamond):
        hist = degree_histogram(diamond, "in")
        assert hist == {0: 1, 1: 2, 2: 1}

    def test_total(self, chain10):
        hist = degree_histogram(chain10, "total")
        assert hist == {1: 2, 2: 8}

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            degree_histogram(DiGraph(), "sideways")
