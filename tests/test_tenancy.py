"""Multi-tenant catalog: quotas, lifecycle, races, and isolation.

The unit half pins the :mod:`repro.server.tenancy` contracts —
:class:`TenantQuota` payload validation, the admission counters and
token bucket, catalog name/id resolution, and the label-size budget.
The integration half drives a live gateway through the catalog verbs
over both wire protocols and proves the lifecycle races are safe:
dropping an index while its queries are in flight, reloading tenant A
mid-flush of tenant B, binary-frame index dispatch, and the
``unknown_index`` error taxonomy a client must be able to rely on.
"""

from __future__ import annotations

import time

import pytest

from repro.core.base import build_index
from repro.core.serialize import save_dual_index
from repro.core.service import QueryService
from repro.exceptions import IndexBudgetExceeded
from repro.graph.generators import random_dag
from repro.graph.io import write_edge_list
from repro.server.batcher import OverloadedError
from repro.server.client import (
    BinaryReachClient,
    ReachClient,
    ServerReplyError,
)
from repro.server.loadgen import run_loadgen, run_loadgen_mix
from repro.server.protocol import ProtocolError
from repro.server.tenancy import (
    DEFAULT_INDEX,
    DEFAULT_INDEX_ID,
    CatalogService,
    TenantQuota,
)
from tests.test_server import raw_exchange, serve


# ---------------------------------------------------------------------
# unit: quota validation and admission counters
# ---------------------------------------------------------------------

class TestTenantQuota:
    def test_from_payload_none_is_unlimited(self):
        quota = TenantQuota.from_payload(None)
        assert quota == TenantQuota()
        assert all(v is None for v in quota.as_dict().values())

    def test_from_payload_coerces_types(self):
        quota = TenantQuota.from_payload(
            {"max_inflight": 4, "max_pending": 100.0, "rate": 7,
             "burst": 3, "max_label_bytes": 1 << 20})
        assert quota.max_inflight == 4
        assert quota.max_pending == 100
        assert quota.rate == 7.0 and isinstance(quota.rate, float)
        assert quota.burst == 3
        assert quota.max_label_bytes == 1 << 20

    @pytest.mark.parametrize("payload", [
        "not a dict",
        ["max_inflight", 4],
        {"max_inflight": 4, "bogus": 1},
        {"max_inflight": 0},
        {"max_pending": -5},
        {"rate": True},
        {"max_label_bytes": "1MB"},
    ])
    def test_from_payload_rejects_bad_payloads(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            TenantQuota.from_payload(payload)
        assert excinfo.value.code == "bad_request"


class TestAdmission:
    def _entry(self, **quota):
        return CatalogService(None).create("t", quota=TenantQuota(**quota))

    def test_inflight_quota_sheds_and_releases(self):
        entry = self._entry(max_inflight=2)
        entry.admit(1)
        entry.admit(1)
        with pytest.raises(OverloadedError, match="inflight quota"):
            entry.admit(1)
        assert (entry.admitted, entry.shed, entry.inflight) == (2, 1, 2)
        entry.release(1)
        entry.admit(1)  # the freed slot is reusable
        assert entry.shed == 1

    def test_pending_pairs_quota_counts_pairs_not_requests(self):
        entry = self._entry(max_pending=100)
        entry.admit(60)
        with pytest.raises(OverloadedError, match="pending-pairs"):
            entry.admit(41)
        entry.admit(40)  # exactly at the bound is admitted
        assert entry.pending_pairs == 100
        entry.release(60)
        assert entry.pending_pairs == 40

    def test_rate_quota_is_a_token_bucket(self):
        # rate so low no token regenerates inside the test; the burst
        # is the whole budget.
        entry = self._entry(rate=0.001, burst=2)
        entry.admit(1)
        entry.admit(1)
        with pytest.raises(OverloadedError, match="rate quota"):
            entry.admit(1)
        assert entry.shed == 1

    def test_unlimited_quota_never_sheds(self):
        entry = self._entry()
        for _ in range(1000):
            entry.admit(50)
        assert entry.shed == 0 and entry.admitted == 1000


class TestCatalogService:
    def test_default_entry_and_alias_resolution(self):
        graph = random_dag(20, 30, seed=0)
        service = QueryService(build_index(graph, scheme="dual-i"))
        catalog = CatalogService(service, scheme="dual-i")
        assert catalog.default.index_id == DEFAULT_INDEX_ID
        assert catalog.lookup(None) is catalog.default
        assert catalog.lookup(DEFAULT_INDEX) is catalog.default
        assert catalog.default.label_bytes > 0
        service.close()

    def test_create_allocates_sequential_ids(self):
        catalog = CatalogService(None)
        assert [catalog.create(f"t{i}").index_id
                for i in range(3)] == [1, 2, 3]
        assert catalog.names() == ["default", "t0", "t1", "t2"]

    @pytest.mark.parametrize("name", [
        None, 7, "", "-leading-dash", "has space", "x" * 65])
    def test_create_rejects_bad_names(self, name):
        with pytest.raises(ProtocolError) as excinfo:
            CatalogService(None).create(name)
        assert excinfo.value.code == "bad_request"

    def test_create_rejects_duplicates(self):
        catalog = CatalogService(None)
        catalog.create("t1")
        with pytest.raises(ProtocolError, match="already exists"):
            catalog.create("t1")
        with pytest.raises(ProtocolError, match="already taken"):
            catalog.create("t2", index_id=1)

    def test_unknown_and_unloaded_names_are_unknown_index(self):
        catalog = CatalogService(None)
        catalog.create("empty")
        for fail in (lambda: catalog.lookup("nope"),
                     lambda: catalog.resolve("empty"),
                     lambda: catalog.lookup_id(99),
                     lambda: catalog.resolve_id(1)):
            with pytest.raises(ProtocolError) as excinfo:
                fail()
            assert excinfo.value.code == "unknown_index"

    def test_drop_protects_the_default(self):
        catalog = CatalogService(None)
        with pytest.raises(ProtocolError, match="cannot be dropped"):
            catalog.drop(DEFAULT_INDEX)
        entry = catalog.create("t1")
        assert catalog.drop("t1") is entry
        with pytest.raises(ProtocolError):
            catalog.lookup("t1")

    def test_check_budget_enforces_label_bytes(self):
        catalog = CatalogService(None)
        index = build_index(random_dag(50, 80, seed=1), scheme="dual-i")
        roomy = catalog.create("roomy", quota=TenantQuota(
            max_label_bytes=1 << 30))
        assert catalog.check_budget(roomy, index) > 0
        tiny = catalog.create("tiny", quota=TenantQuota(
            max_label_bytes=8))
        with pytest.raises(IndexBudgetExceeded) as excinfo:
            catalog.check_budget(tiny, index)
        assert excinfo.value.index_name == "tiny"
        assert excinfo.value.budget_bytes == 8
        assert excinfo.value.label_bytes > 8

    def test_install_swaps_generations(self):
        catalog = CatalogService(None)
        entry = catalog.create("t1")
        index = build_index(random_dag(20, 30, seed=2), scheme="dual-i")
        first = QueryService(index)
        assert catalog.install(entry, first) is None
        assert entry.generation == 1 and entry.label_bytes > 0
        second = QueryService(index)
        assert catalog.install(entry, second) is first
        assert entry.generation == 2
        first.close()
        second.close()

    def test_collect_emits_per_tenant_families(self):
        catalog = CatalogService(None)
        entry = catalog.create("t1")
        entry.admit(5)
        families = {f["name"]: f for f in catalog.collect()}
        assert set(families) == {
            "reach_tenant_requests_total", "reach_tenant_shed_total",
            "reach_tenant_inflight", "reach_tenant_pending_pairs",
            "reach_tenant_label_bytes", "reach_tenant_generation"}
        samples = dict()
        for labels, value in families[
                "reach_tenant_pending_pairs"]["samples"]:
            samples[labels["index"]] = value
        assert samples == {"default": 0, "t1": 5}


# ---------------------------------------------------------------------
# integration: catalog verbs over a live gateway
# ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def graphs(tmp_path_factory):
    """Default graph plus two tenant graphs (files + direct indexes)."""
    base = tmp_path_factory.mktemp("tenancy")
    out = {}
    for name, seed, n, m in (("main", 1, 60, 120), ("t1", 2, 50, 100),
                             ("t2", 3, 40, 80)):
        graph = random_dag(n, m, seed=seed)
        path = base / f"{name}.edges"
        write_edge_list(graph, path)
        out[name] = (graph, str(path))
    return out


def _pairs(graph, count=40, seed=9):
    import random as _random
    rng = _random.Random(seed)
    nodes = list(graph.nodes())
    return [(rng.choice(nodes), rng.choice(nodes))
            for _ in range(count)]


class TestCatalogVerbs:
    def test_full_lifecycle_and_default_alias(self, graphs):
        graph, _ = graphs["main"]
        t1_graph, t1_path = graphs["t1"]
        index = build_index(graph, scheme="dual-i")
        t1_index = build_index(t1_graph, scheme="dual-ii")
        pairs = _pairs(t1_graph)
        expected = t1_index.reachable_many(pairs)
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            created = client.catalog("create", name="t1",
                                     scheme="dual-ii",
                                     quota={"max_inflight": 64})
            assert created["created"] == "t1"
            assert created["index_id"] == 1
            assert created["quota"]["max_inflight"] == 64
            # Registered but empty: resolvable in list, not in query.
            rows = {r["name"]: r for r in client.catalog_list()}
            assert rows["t1"]["loaded"] is False
            with pytest.raises(ServerReplyError) as excinfo:
                client.query(0, 1, index="t1")
            assert excinfo.value.code == "unknown_index"

            built = client.catalog("build", name="t1", graph=t1_path)
            assert built["swapped"] and built["index_name"] == "t1"
            assert built["scheme"] == "dual-ii"
            assert client.query_batch(pairs, index="t1") == expected

            # The default-tenant alias: all three spellings answer
            # from the same entry.
            main_pairs = _pairs(graph)
            default_answers = client.query_batch(main_pairs)
            assert client.query_batch(
                main_pairs, index="default") == default_answers
            for u, v in main_pairs[:5]:
                assert client.query(u, v, index="default") == \
                    client.query(u, v)

            # Named reload re-indexes the tenant in place.
            swapped = client.reload(graph=t1_path, name="t1",
                                    scheme="dual-i")
            assert swapped["index_name"] == "t1"
            assert swapped["generation"] == 2
            assert swapped["scheme"] == "dual-i"
            assert client.query_batch(pairs, index="t1") == expected

            dropped = client.catalog("drop", name="t1")
            assert dropped == {"dropped": "t1", "index_id": 1}
            with pytest.raises(ServerReplyError) as excinfo:
                client.query_batch(pairs, index="t1")
            assert excinfo.value.code == "unknown_index"
            # The default index never noticed any of it.
            assert client.query_batch(main_pairs) == default_answers
            assert client.health()["status"] == "ok"

    def test_catalog_error_taxonomy(self, graphs):
        graph, _ = graphs["main"]
        index = build_index(graph, scheme="dual-i")
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            cases = [
                (dict(op="nope"), "bad_request"),
                (dict(op="create", name="bad name!"), "bad_request"),
                (dict(op="create", name="t", quota={"rate": -1}),
                 "bad_request"),
                (dict(op="drop", name="default"), "bad_request"),
                (dict(op="drop", name="ghost"), "unknown_index"),
                (dict(op="build", name="ghost", graph="g"),
                 "unknown_index"),
                (dict(op="build", name="default", graph="g"),
                 "bad_request"),
                (dict(op="load", name="default", index="f"),
                 "bad_request"),
            ]
            for fields, code in cases:
                with pytest.raises(ServerReplyError) as excinfo:
                    client.catalog(**fields)
                assert excinfo.value.code == code, fields
            # A build pointing at a missing file fails cleanly...
            client.catalog("create", name="t")
            with pytest.raises(ServerReplyError) as excinfo:
                client.catalog("build", name="t", graph="/nope/missing")
            assert excinfo.value.code == "reload_failed"
            # ...and the error is in-band: the connection still works
            # and the server is NOT degraded (tenant trouble is the
            # tenant's alone).
            assert client.ping()
            assert client.health()["status"] == "ok"

    def test_label_budget_rejects_oversized_index(self, graphs):
        graph, _ = graphs["main"]
        _, t1_path = graphs["t1"]
        index = build_index(graph, scheme="dual-i")
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            client.catalog("create", name="tiny",
                           quota={"max_label_bytes": 8})
            with pytest.raises(ServerReplyError) as excinfo:
                client.catalog("build", name="tiny", graph=t1_path)
            assert excinfo.value.code == "reload_failed"
            assert "budget" in str(excinfo.value)
            # The rejected index was never installed.
            rows = {r["name"]: r for r in client.catalog_list()}
            assert rows["tiny"]["loaded"] is False
            assert client.health()["status"] == "ok"

    def test_load_saved_index_into_tenant(self, graphs, tmp_path):
        graph, _ = graphs["main"]
        t2_graph, _ = graphs["t2"]
        index = build_index(graph, scheme="dual-i")
        t2_index = build_index(t2_graph, scheme="dual-ii")
        saved = tmp_path / "t2.dual-ii.json"
        save_dual_index(t2_index, saved)
        pairs = _pairs(t2_graph)
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            client.catalog("create", name="t2")
            loaded = client.catalog("load", name="t2",
                                    index=str(saved))
            assert loaded["source"] == "index"
            assert loaded["scheme"] == "dual-ii"
            assert client.query_batch(pairs, index="t2") == \
                t2_index.reachable_many(pairs)

    def test_per_tenant_quota_sheds_only_that_tenant(self, graphs):
        graph, _ = graphs["main"]
        t1_graph, t1_path = graphs["t1"]
        index = build_index(graph, scheme="dual-i")
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            client.catalog("create", name="t1",
                           quota={"rate": 0.001, "burst": 2})
            client.catalog("build", name="t1", graph=t1_path)
            assert client.query(0, 1, index="t1") in (True, False)
            assert client.query(0, 1, index="t1") in (True, False)
            with pytest.raises(ServerReplyError) as excinfo:
                client.query(0, 1, index="t1")
            assert excinfo.value.code == "overloaded"
            # The default tenant has no quota and is untouched.
            for _ in range(10):
                client.query(0, 1)
            rows = {r["name"]: r for r in client.catalog_list()}
            assert rows["t1"]["shed"] == 1
            assert rows["default"]["shed"] == 0

    def test_stats_and_metrics_carry_tenant_series(self, graphs):
        graph, _ = graphs["main"]
        t1_graph, t1_path = graphs["t1"]
        index = build_index(graph, scheme="dual-i")
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            client.catalog("create", name="t1")
            client.catalog("build", name="t1", graph=t1_path)
            client.query_batch(_pairs(t1_graph), index="t1")
            rows = {r["name"]: r for r in
                    client.stats()["catalog"]}
            assert rows["t1"]["admitted"] >= 1
            assert rows["t1"]["label_bytes"] > 0
            exposition = client.metrics()["exposition"]
            tenant_lines = [line for line in exposition.splitlines()
                            if line.startswith(
                                "reach_tenant_requests_total{")]
            assert any('index="t1"' in line for line in tenant_lines)
            assert any('index="default"' in line
                       for line in tenant_lines)


# ---------------------------------------------------------------------
# integration: binary-frame index dispatch
# ---------------------------------------------------------------------

class TestBinaryDispatch:
    def test_index_id_routes_to_the_named_entry(self, graphs):
        graph, _ = graphs["main"]
        t1_graph, t1_path = graphs["t1"]
        index = build_index(graph, scheme="dual-i")
        t1_index = build_index(t1_graph, scheme="dual-ii")
        pairs = _pairs(t1_graph)
        with serve(index) as handle:
            with ReachClient(port=handle.port) as client:
                client.catalog("create", name="t1", scheme="dual-ii")
                client.catalog("build", name="t1", graph=t1_path)
                t1_id = {r["name"]: r["index_id"]
                         for r in client.catalog_list()}["t1"]
            with BinaryReachClient(port=handle.port,
                                   index_id=t1_id) as binary:
                assert binary.query_batch(pairs) == \
                    t1_index.reachable_many(pairs)
                # Per-call override beats the connection default.
                main_pairs = _pairs(graph)
                assert binary.query_batch(main_pairs, index_id=0) == \
                    index.reachable_many(main_pairs)

    def test_unknown_id_is_in_sync_and_recoverable(self, graphs):
        """A bad index id must answer ``unknown_index`` as a framed
        error — the connection stays usable, unlike a desync."""
        graph, _ = graphs["main"]
        index = build_index(graph, scheme="dual-i")
        pairs = _pairs(graph)
        with serve(index) as handle, \
                BinaryReachClient(port=handle.port) as binary:
            with pytest.raises(ServerReplyError) as excinfo:
                binary.query_batch(pairs, index_id=999)
            assert excinfo.value.code == "unknown_index"
            assert binary.query_batch(pairs) == \
                index.reachable_many(pairs)

    def test_empty_entry_id_is_unknown_index(self, graphs):
        graph, _ = graphs["main"]
        index = build_index(graph, scheme="dual-i")
        with serve(index) as handle:
            with ReachClient(port=handle.port) as client:
                created = client.catalog("create", name="hollow")
            with BinaryReachClient(port=handle.port) as binary:
                with pytest.raises(ServerReplyError) as excinfo:
                    binary.query_batch([(0, 1)],
                                       index_id=created["index_id"])
                assert excinfo.value.code == "unknown_index"


# ---------------------------------------------------------------------
# integration: lifecycle races
# ---------------------------------------------------------------------

class TestLifecycleRaces:
    def test_drop_while_queries_inflight(self, graphs):
        """Queries buffered in the tenant's lane when the drop lands
        must complete correctly (the retiring flush snapshots the
        service); queries after the drop answer ``unknown_index``."""
        import json as _json

        graph, _ = graphs["main"]
        t1_graph, t1_path = graphs["t1"]
        index = build_index(graph, scheme="dual-i")
        t1_index = build_index(t1_graph, scheme="dual-ii")
        pairs = _pairs(t1_graph, count=16)
        expected = t1_index.reachable_many(pairs)
        # A wide flush window keeps the batch buffered while the drop
        # races in behind it.
        with serve(index, max_delay=0.25, max_batch=4096) as handle:
            with ReachClient(port=handle.port) as client:
                client.catalog("create", name="t1", scheme="dual-ii")
                client.catalog("build", name="t1", graph=t1_path)
                line = _json.dumps(
                    {"id": 1, "verb": "batch", "index": "t1",
                     "pairs": [list(p) for p in pairs]}).encode() + b"\n"
                import socket as _socket
                with _socket.create_connection(
                        ("127.0.0.1", handle.port),
                        timeout=30.0) as sock:
                    sock.sendall(line)
                    # Let the batch reach the tenant's lane before the
                    # drop races in behind it (well inside the 0.25s
                    # flush window).
                    time.sleep(0.08)
                    assert client.catalog("drop", name="t1") == \
                        {"dropped": "t1", "index_id": 1}
                    reader = sock.makefile("rb")
                    reply = _json.loads(reader.readline())
                assert reply["ok"], reply
                assert reply["result"] == expected
                with pytest.raises(ServerReplyError) as excinfo:
                    client.query(0, 1, index="t1")
                assert excinfo.value.code == "unknown_index"

    def test_reload_tenant_a_during_tenant_b_flush(self, graphs):
        """Tenant B's buffered batch must be answered from B's own
        pre-flush snapshot even while tenant A swaps generations."""
        import json as _json

        graph, _ = graphs["main"]
        a_graph, a_path = graphs["t1"]
        b_graph, b_path = graphs["t2"]
        index = build_index(graph, scheme="dual-i")
        b_index = build_index(b_graph, scheme="dual-i")
        pairs = _pairs(b_graph, count=16)
        expected = b_index.reachable_many(pairs)
        with serve(index, max_delay=0.25, max_batch=4096) as handle:
            with ReachClient(port=handle.port) as client:
                client.catalog("create", name="a")
                client.catalog("build", name="a", graph=a_path)
                client.catalog("create", name="b")
                client.catalog("build", name="b", graph=b_path)
                line = _json.dumps(
                    {"id": 7, "verb": "batch", "index": "b",
                     "pairs": [list(p) for p in pairs]}).encode() + b"\n"
                import socket as _socket
                with _socket.create_connection(
                        ("127.0.0.1", handle.port),
                        timeout=30.0) as sock:
                    sock.sendall(line)
                    time.sleep(0.08)
                    swap = client.reload(graph=a_path, name="a",
                                         scheme="dual-ii")
                    assert swap["index_name"] == "a"
                    reader = sock.makefile("rb")
                    reply = _json.loads(reader.readline())
                assert reply["ok"], reply
                assert reply["result"] == expected

    def test_queries_span_tenants_on_one_connection(self, graphs):
        """Interleaved per-tenant requests pipelined on a single
        connection all answer from their own index."""
        graph, _ = graphs["main"]
        t1_graph, t1_path = graphs["t1"]
        index = build_index(graph, scheme="dual-i")
        t1_index = build_index(t1_graph, scheme="dual-ii")
        import json as _json

        with serve(index) as handle:
            with ReachClient(port=handle.port) as client:
                client.catalog("create", name="t1", scheme="dual-ii")
                client.catalog("build", name="t1", graph=t1_path)
            main_pairs = _pairs(graph, count=8)
            t1_pairs = _pairs(t1_graph, count=8)
            lines = []
            for i, (mp, tp) in enumerate(zip(main_pairs, t1_pairs)):
                lines.append(_json.dumps(
                    {"id": 2 * i, "verb": "query",
                     "u": mp[0], "v": mp[1]}).encode() + b"\n")
                lines.append(_json.dumps(
                    {"id": 2 * i + 1, "verb": "query", "index": "t1",
                     "u": tp[0], "v": tp[1]}).encode() + b"\n")
            replies = {r["id"]: r for r in raw_exchange(
                handle.port, lines, len(lines))}
            for i, (mp, tp) in enumerate(zip(main_pairs, t1_pairs)):
                assert replies[2 * i]["result"] == \
                    index.reachable(*mp)
                assert replies[2 * i + 1]["result"] == \
                    t1_index.reachable(*tp)


# ---------------------------------------------------------------------
# loadgen: per-tenant targeting and the concurrent mix
# ---------------------------------------------------------------------

class TestLoadgenTenancy:
    def test_single_stream_validation(self):
        with pytest.raises(ValueError, match="numeric id"):
            run_loadgen("h", 1, [(0, 1)], protocol="binary",
                        index="name")
        with pytest.raises(ValueError, match="by name"):
            run_loadgen("h", 1, [(0, 1)], protocol="json", index=3)
        with pytest.raises(ValueError, match="at least one"):
            run_loadgen_mix("h", 1, [])

    def test_mix_drives_tenants_concurrently(self, graphs):
        graph, _ = graphs["main"]
        t1_graph, t1_path = graphs["t1"]
        index = build_index(graph, scheme="dual-i")
        t1_index = build_index(t1_graph, scheme="dual-ii")
        pool_main = _pairs(graph, count=64)
        pool_t1 = _pairs(t1_graph, count=64)
        with serve(index) as handle:
            with ReachClient(port=handle.port) as client:
                client.catalog("create", name="t1", scheme="dual-ii")
                client.catalog("build", name="t1", graph=t1_path)
                t1_id = {r["name"]: r["index_id"]
                         for r in client.catalog_list()}["t1"]
            results = run_loadgen_mix("127.0.0.1", handle.port, [
                {"pairs": pool_main, "connections": 2,
                 "batch_size": 4,
                 "expected": index.reachable_many(pool_main)},
                {"pairs": pool_t1, "connections": 2, "batch_size": 4,
                 "index": "t1",
                 "expected": t1_index.reachable_many(pool_t1)},
                {"pairs": pool_t1, "connections": 2, "batch_size": 4,
                 "index": t1_id, "protocol": "binary",
                 "expected": t1_index.reachable_many(pool_t1)},
            ], duration=0.5)
            assert [r.index for r in results] == [None, "t1", t1_id]
            for result in results:
                assert result.ok > 0, result.as_dict()
                assert result.wrong_answers == 0, \
                    result.mismatch_samples
            assert results[0].as_dict()["index"] == "default"
