"""Smoke tests: the example scripts run cleanly end to end.

Each example is a deliverable in its own right; these tests run the
fast ones as subprocesses (fresh interpreter, like a user would) and
assert on their key output lines.  The two long-running demos
(`metabolic_network.py` ~15 s, `large_graph_demo.py` ~1 min,
`space_time_tradeoff.py` ~30 s) are exercised by the same underlying
APIs throughout the suite and are left to the RUNBOOK's
`for ex in examples/*.py` sweep.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": ["all schemes agree"],
    "paper_walkthrough.py": ["N(9, 3)  = 1", "N(11, 3) = 0",
                             "reachable via non-tree links"],
    "xml_reachability.py": ["Frank Herbert", "correctly not matched"],
    "ontology_subsumption.py": ["ex:Penguin ⊑ ex:Animal",
                                "ex:Cat ⋢ ex:Bird"],
    "dynamic_updates.py": ["incremental (non-tree side only)",
                           "cycle-closing -> full rebuild",
                           "witness is None"],
    "index_planning.py": ["cheaper O(1) index here: dual-i",
                          "cheaper O(1) index here: chain-cover"],
}


@pytest.mark.parametrize("script,expected",
                         sorted(FAST_EXAMPLES.items()),
                         ids=sorted(FAST_EXAMPLES))
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (script, needle)


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        head = script.read_text(encoding="utf-8")
        assert '"""' in head.split("\n", 3)[1] or \
            head.splitlines()[1].startswith('"""'), script.name
        assert "Run:" in head, f"{script.name} lacks a Run: line"
