"""Unit tests for reachability analytics."""

from __future__ import annotations

import pytest

from repro.analysis.reachability import (
    ancestor_counts,
    common_ancestors,
    common_descendants,
    descendant_counts,
    reachability_ratio,
    top_hubs,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from repro.graph.traversal import ancestor_set, reachable_set


class TestCounts:
    def test_chain(self, chain10):
        desc = descendant_counts(chain10)
        anc = ancestor_counts(chain10)
        for i in range(10):
            assert desc[i] == 10 - i
            assert anc[i] == i + 1

    def test_cycle_counts(self):
        g = DiGraph([(0, 1), (1, 2), (2, 0)])
        assert descendant_counts(g) == {0: 3, 1: 3, 2: 3}
        assert ancestor_counts(g) == {0: 3, 1: 3, 2: 3}

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_search(self, seed):
        g = gnm_random_digraph(30, 70, seed=seed)
        desc = descendant_counts(g)
        anc = ancestor_counts(g)
        for node in g.nodes():
            assert desc[node] == len(reachable_set(g, node))
            assert anc[node] == len(ancestor_set(g, node))

    def test_empty(self):
        assert descendant_counts(DiGraph()) == {}
        assert ancestor_counts(DiGraph()) == {}


class TestTopHubs:
    def test_out_direction(self, diamond):
        hubs = top_hubs(diamond, k=2)
        assert hubs[0] == ("a", 4)

    def test_in_direction(self, diamond):
        hubs = top_hubs(diamond, k=1, direction="in")
        assert hubs[0] == ("d", 4)

    def test_ties_break_by_insertion_order(self, diamond):
        hubs = top_hubs(diamond, k=4)
        # b and c tie at 2 descendants; b was inserted first.
        assert hubs[1][0] == "b"
        assert hubs[2][0] == "c"

    def test_k_bounds(self, diamond):
        assert len(top_hubs(diamond, k=100)) == 4
        assert top_hubs(diamond, k=0) == []

    def test_invalid_direction(self, diamond):
        with pytest.raises(ValueError):
            top_hubs(diamond, direction="up")


class TestCommonSets:
    def test_common_ancestors_diamond(self, diamond):
        assert common_ancestors(diamond, "b", "c") == {"a"}
        assert common_ancestors(diamond, "b", "d") == {"a", "b"}

    def test_common_descendants_diamond(self, diamond):
        assert common_descendants(diamond, "b", "c") == {"d"}
        assert common_descendants(diamond, "a", "b") == {"b", "d"}

    def test_disjoint(self):
        g = DiGraph([(0, 1), (2, 3)])
        assert common_ancestors(g, 1, 3) == set()
        assert common_descendants(g, 0, 2) == set()

    @pytest.mark.parametrize("seed", range(3))
    def test_against_search(self, seed):
        g = gnm_random_digraph(25, 60, seed=seed)
        nodes = list(g.nodes())
        u, v = nodes[3], nodes[17]
        assert common_ancestors(g, u, v) == \
            ancestor_set(g, u) & ancestor_set(g, v)
        assert common_descendants(g, u, v) == \
            reachable_set(g, u) & reachable_set(g, v)


class TestReachabilityRatio:
    def test_chain(self, chain10):
        assert reachability_ratio(chain10) == pytest.approx(45 / 90)

    def test_complete_cycle(self):
        g = DiGraph([(0, 1), (1, 2), (2, 0)])
        assert reachability_ratio(g) == 1.0

    def test_edgeless(self):
        assert reachability_ratio(DiGraph(nodes=[1, 2, 3])) == 0.0

    def test_tiny_graphs(self):
        assert reachability_ratio(DiGraph()) == 0.0
        assert reachability_ratio(DiGraph(nodes=[1])) == 0.0
