"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    layered_dag,
    random_dag,
    random_tree,
    single_rooted_dag,
)
from repro.graph.traversal import bfs_order, topological_sort


class TestGnm:
    def test_counts(self):
        g = gnm_random_digraph(100, 250, seed=1)
        assert g.num_nodes == 100
        assert g.num_edges == 250

    def test_no_self_loops(self):
        g = gnm_random_digraph(50, 200, seed=2)
        assert g.self_loops() == []

    def test_deterministic(self):
        a = gnm_random_digraph(40, 120, seed=7)
        b = gnm_random_digraph(40, 120, seed=7)
        assert a == b

    def test_seed_changes_graph(self):
        a = gnm_random_digraph(40, 120, seed=1)
        b = gnm_random_digraph(40, 120, seed=2)
        assert a != b

    def test_zero_sizes(self):
        assert gnm_random_digraph(0, 0).num_nodes == 0
        assert gnm_random_digraph(5, 0).num_edges == 0

    def test_rejects_impossible_m(self):
        with pytest.raises(ValueError):
            gnm_random_digraph(3, 7)
        with pytest.raises(ValueError):
            gnm_random_digraph(3, -1)
        with pytest.raises(ValueError):
            gnm_random_digraph(-1, 0)

    def test_max_density(self):
        g = gnm_random_digraph(4, 12, seed=3)
        assert g.num_edges == 12  # complete directed graph


class TestRandomTree:
    def test_is_a_tree(self):
        t = random_tree(80, max_fanout=3, seed=1)
        assert t.num_edges == 79
        assert t.roots() == [0]
        assert len(bfs_order(t, 0)) == 80

    def test_fanout_bound(self):
        t = random_tree(200, max_fanout=3, seed=4)
        assert max(t.out_degree(n) for n in t.nodes()) <= 3

    def test_fanout_one_is_a_path(self):
        t = random_tree(10, max_fanout=1, seed=0)
        degrees = sorted(t.out_degree(n) for n in t.nodes())
        assert degrees == [0] + [1] * 9

    def test_trivial_sizes(self):
        assert random_tree(0).num_nodes == 0
        assert random_tree(1).num_nodes == 1
        assert random_tree(1).num_edges == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_tree(-1)
        with pytest.raises(ValueError):
            random_tree(5, max_fanout=0)


class TestSingleRootedDag:
    def test_counts_and_acyclicity(self):
        g = single_rooted_dag(300, 420, max_fanout=5, seed=1)
        assert g.num_nodes == 300
        assert g.num_edges == 420
        topological_sort(g)  # must not raise

    def test_single_root(self):
        g = single_rooted_dag(200, 260, max_fanout=5, seed=2)
        assert g.roots() == [0]
        assert len(bfs_order(g, 0)) == 200

    def test_tree_case(self):
        g = single_rooted_dag(50, 49, max_fanout=4, seed=3)
        assert g.num_edges == 49
        assert g.roots() == [0]

    def test_fanout9(self):
        g = single_rooted_dag(300, 400, max_fanout=9, seed=4)
        topological_sort(g)
        assert g.num_edges == 400

    def test_deterministic(self):
        assert single_rooted_dag(100, 140, seed=5) == \
            single_rooted_dag(100, 140, seed=5)

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError):
            single_rooted_dag(10, 8)

    def test_empty(self):
        assert single_rooted_dag(0, 0).num_nodes == 0


class TestRandomDag:
    def test_counts_and_acyclicity(self):
        g = random_dag(60, 150, seed=1)
        assert g.num_nodes == 60
        assert g.num_edges == 150
        topological_sort(g)

    def test_rejects_impossible_m(self):
        with pytest.raises(ValueError):
            random_dag(4, 7)

    def test_deterministic(self):
        assert random_dag(30, 60, seed=9) == random_dag(30, 60, seed=9)


class TestLayeredDag:
    def test_forward_only_is_acyclic(self):
        g = layered_dag([10, 10, 10], forward_edges=40, seed=1)
        assert g.num_nodes == 30
        assert g.num_edges == 40
        topological_sort(g)

    def test_back_edges_create_cycles(self):
        from repro.graph.scc import strongly_connected_components
        g = layered_dag([15, 15, 15], forward_edges=80, back_edges=20,
                        seed=2)
        comps = strongly_connected_components(g)
        assert any(len(c) > 1 for c in comps)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            layered_dag([0, 5], forward_edges=1)
        with pytest.raises(ValueError):
            layered_dag([5], forward_edges=-1)
        with pytest.raises(ValueError):
            layered_dag([5, 5], forward_edges=1, back_edges=-2)

    def test_single_layer_no_edges(self):
        g = layered_dag([10], forward_edges=5, seed=3)
        assert g.num_edges == 0


class TestCitationDag:
    def test_counts_and_acyclicity(self):
        from repro.graph.generators import citation_dag
        g = citation_dag(200, refs_per_node=2, seed=1)
        assert g.num_nodes == 200
        topological_sort(g)
        assert g.num_edges <= 2 * 200

    def test_edges_point_backwards(self):
        from repro.graph.generators import citation_dag
        g = citation_dag(100, refs_per_node=3, seed=2)
        assert all(u > v for u, v in g.edges())

    def test_heavy_tail(self):
        """Preferential attachment concentrates citations: the top node
        collects far more than the mean in-degree."""
        from repro.graph.generators import citation_dag
        g = citation_dag(500, refs_per_node=2, seed=3)
        max_in = max(g.in_degree(v) for v in g.nodes())
        mean_in = g.num_edges / g.num_nodes
        assert max_in > 5 * mean_in

    def test_deterministic(self):
        from repro.graph.generators import citation_dag
        assert citation_dag(80, seed=4) == citation_dag(80, seed=4)

    def test_validation(self):
        from repro.graph.generators import citation_dag
        with pytest.raises(ValueError):
            citation_dag(-1)
        with pytest.raises(ValueError):
            citation_dag(5, refs_per_node=-1)

    def test_all_schemes_correct_on_citation_graphs(self):
        from repro.graph.generators import citation_dag
        from repro.core.base import available_schemes, build_index
        from repro.graph.traversal import is_reachable_search
        import random as _random
        g = citation_dag(60, refs_per_node=2, seed=5)
        rng = _random.Random(6)
        pairs = [(rng.randrange(60), rng.randrange(60))
                 for _ in range(150)]
        for scheme in available_schemes():
            index = build_index(g, scheme=scheme)
            for u, v in pairs:
                assert index.reachable(u, v) == \
                    is_reachable_search(g, u, v), scheme
