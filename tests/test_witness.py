"""Unit tests for witness-path reconstruction."""

from __future__ import annotations

import random

import pytest

from repro.core.dual_i import DualIIndex
from repro.core.witness import expand_witness, verify_witness, witness_path
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph, single_rooted_dag
from repro.graph.traversal import is_reachable_search
from tests.conftest import make_paper_graph


class TestVerifyWitness:
    def test_valid_path(self, chain10):
        assert verify_witness(chain10, [0, 1, 2, 3])

    def test_invalid_hop(self, chain10):
        assert not verify_witness(chain10, [0, 2])

    def test_single_node(self, chain10):
        assert verify_witness(chain10, [5])
        assert not verify_witness(chain10, [99])

    def test_empty(self, chain10):
        assert not verify_witness(chain10, [])


class TestWitnessOnPaperGraph:
    @pytest.fixture
    def setup(self):
        graph = make_paper_graph()
        index = DualIIndex.build(graph, use_meg=False)
        return graph, index

    def test_tree_witness(self, setup):
        graph, index = setup
        witness = witness_path(index, "r", "w")
        assert witness[0] == "r" and witness[-1] == "w"
        assert verify_witness(graph, expand_witness(graph, witness))

    def test_one_link_witness(self, setup):
        graph, index = setup
        witness = witness_path(index, "u", "v")
        expanded = expand_witness(graph, witness)
        assert verify_witness(graph, expanded)
        assert expanded[0] == "u" and expanded[-1] == "v"

    def test_two_link_witness(self, setup):
        """u ⇝ w chains both non-tree edges of Figure 2."""
        graph, index = setup
        witness = witness_path(index, "u", "w")
        expanded = expand_witness(graph, witness)
        assert verify_witness(graph, expanded)
        # The chain must pass through both non-tree edges' endpoints.
        assert "f" in expanded and "a" in expanded

    def test_unreachable_returns_none(self, setup):
        _, index = setup
        assert witness_path(index, "w", "u") is None
        assert witness_path(index, "e", "w") is None

    def test_self_witness(self, setup):
        graph, index = setup
        assert witness_path(index, "u", "u") == ["u"]

    def test_unknown_vertex(self, setup):
        _, index = setup
        with pytest.raises(QueryError):
            witness_path(index, "ghost", "u")


class TestWitnessRandomGraphs:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("use_meg", [False, True])
    def test_every_positive_pair_yields_valid_witness(self, seed,
                                                      use_meg):
        g = gnm_random_digraph(35, 90, seed=seed)
        index = DualIIndex.build(g, use_meg=use_meg)
        for u in g.nodes():
            for v in g.nodes():
                witness = witness_path(index, u, v)
                if is_reachable_search(g, u, v):
                    assert witness is not None, (u, v)
                    assert witness[0] == u and witness[-1] == v
                    expanded = expand_witness(g, witness)
                    assert verify_witness(g, expanded), (u, v, witness)
                else:
                    assert witness is None, (u, v)

    @pytest.mark.parametrize("seed", range(3))
    def test_rooted_dags(self, seed):
        g = single_rooted_dag(120, 170, max_fanout=5, seed=seed)
        index = DualIIndex.build(g, use_meg=False)
        rng = random.Random(seed)
        nodes = list(g.nodes())
        checked = 0
        while checked < 40:
            u, v = rng.choice(nodes), rng.choice(nodes)
            witness = witness_path(index, u, v)
            if witness is None:
                assert not is_reachable_search(g, u, v)
                continue
            assert verify_witness(g, expand_witness(g, witness))
            checked += 1

    def test_cyclic_same_component(self, two_cycle_graph):
        index = DualIIndex.build(two_cycle_graph)
        witness = witness_path(index, 0, 2)
        expanded = expand_witness(two_cycle_graph, witness)
        assert verify_witness(two_cycle_graph, expanded)
        assert expanded[0] == 0 and expanded[-1] == 2


class TestExpandWitness:
    def test_direct_edges_pass_through(self, chain10):
        assert expand_witness(chain10, [0, 1, 2]) == [0, 1, 2]

    def test_scc_gap_filled(self, two_cycle_graph):
        # 0 and 2 are in one SCC; only 0->1->2 exists as edges.
        expanded = expand_witness(two_cycle_graph, [0, 2])
        assert expanded == [0, 1, 2]

    def test_disconnected_raises(self):
        g = DiGraph([(0, 1), (2, 3)])
        with pytest.raises(QueryError):
            expand_witness(g, [0, 3])

    def test_trivial(self, chain10):
        assert expand_witness(chain10, [4]) == [4]
        assert expand_witness(chain10, []) == []


class TestExplainQuery:
    @pytest.fixture
    def explained(self):
        from repro.core.witness import explain_query
        graph = make_paper_graph()
        index = DualIIndex.build(graph, use_meg=False)
        return graph, index, explain_query

    def test_tree_explanation(self, explained):
        _, index, explain = explained
        result = explain(index, "r", "w")
        assert result.kind == "tree"
        assert result.reachable
        assert "spanning-tree" in str(result)

    def test_non_tree_explanation_carries_witness(self, explained):
        graph, index, explain = explained
        result = explain(index, "u", "w")
        assert result.kind == "non-tree"
        assert result.tlc_difference == 1  # the paper's N difference
        assert result.witness[0] == "u" and result.witness[-1] == "w"
        assert "non-tree links" in str(result)

    def test_unreachable_explanation(self, explained):
        _, index, explain = explained
        result = explain(index, "w", "u")
        assert result.kind == "unreachable"
        assert not result.reachable
        assert result.witness == []

    def test_same_component(self, two_cycle_graph):
        from repro.core.witness import explain_query
        index = DualIIndex.build(two_cycle_graph)
        result = explain_query(index, 0, 2)
        assert result.kind == "same-component"
        assert "strongly connected" in str(result)

    def test_unknown_vertex(self, explained):
        _, index, explain = explained
        with pytest.raises(QueryError):
            explain(index, "ghost", "u")

    @pytest.mark.parametrize("seed", range(3))
    def test_explanation_agrees_with_reachable(self, seed):
        from repro.core.witness import explain_query
        g = gnm_random_digraph(30, 75, seed=seed)
        index = DualIIndex.build(g)
        for u in g.nodes():
            for v in g.nodes():
                assert explain_query(index, u, v).reachable == \
                    index.reachable(u, v)
