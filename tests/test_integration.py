"""Cross-scheme integration tests: every registered index agrees with
the BFS ground truth (and therefore with every other index) across a
spectrum of graph families and preprocessing configurations."""

from __future__ import annotations

import pytest

from repro.core.base import available_schemes, build_index
from repro.datasets import DatasetSpec, build_calibrated_graph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    layered_dag,
    random_dag,
    random_tree,
    single_rooted_dag,
)
from tests.conftest import assert_index_matches_oracle, sample_pairs

ALL_SCHEMES = sorted(available_schemes())


def _spot_check_all_schemes(graph, num_pairs=250, seed=0, **opts_by_scheme):
    pairs = sample_pairs(graph, num_pairs, seed)
    for scheme in ALL_SCHEMES:
        options = opts_by_scheme.get(scheme.replace("-", "_"), {})
        index = build_index(graph, scheme=scheme, **options)
        assert_index_matches_oracle(index, graph, pairs)


class TestGraphFamilies:
    def test_trees(self):
        _spot_check_all_schemes(random_tree(80, max_fanout=3, seed=1))

    def test_chains(self):
        _spot_check_all_schemes(DiGraph([(i, i + 1) for i in range(60)]))

    def test_random_cyclic(self):
        _spot_check_all_schemes(gnm_random_digraph(70, 180, seed=2))

    def test_dense_cyclic(self):
        _spot_check_all_schemes(gnm_random_digraph(40, 500, seed=3))

    def test_single_rooted_dags(self):
        _spot_check_all_schemes(
            single_rooted_dag(90, 130, max_fanout=5, seed=4))

    def test_wide_fanout_dags(self):
        _spot_check_all_schemes(
            single_rooted_dag(90, 130, max_fanout=9, seed=5))

    def test_random_dags(self):
        _spot_check_all_schemes(random_dag(70, 200, seed=6))

    def test_layered_with_back_edges(self):
        _spot_check_all_schemes(
            layered_dag([20, 20, 20], forward_edges=90, back_edges=15,
                        seed=7))

    def test_disconnected_forest(self):
        g = DiGraph([(0, 1), (1, 2), (10, 11), (12, 11)])
        g.add_node(99)
        _spot_check_all_schemes(g, num_pairs=64)

    def test_calibrated_dataset_miniature(self):
        spec = DatasetSpec(name="mini", num_nodes=80, num_edges=100,
                           dag_nodes=70, dag_edges=82, meg_edges=76)
        _spot_check_all_schemes(build_calibrated_graph(spec, seed=8))

    def test_self_loops_everywhere(self):
        g = DiGraph([(i, i) for i in range(20)]
                    + [(i, i + 1) for i in range(19)])
        _spot_check_all_schemes(g, num_pairs=150)

    def test_complete_bipartite_like(self):
        g = DiGraph([(u, v) for u in range(8) for v in range(8, 16)])
        _spot_check_all_schemes(g, num_pairs=150)


class TestPreprocessingConfigurations:
    @pytest.mark.parametrize("use_meg", [False, True])
    def test_dual_schemes_meg_toggle(self, use_meg):
        g = gnm_random_digraph(80, 200, seed=9)
        pairs = sample_pairs(g, 300, 9)
        for scheme in ("dual-i", "dual-ii", "dual-rt"):
            index = build_index(g, scheme=scheme, use_meg=use_meg)
            assert_index_matches_oracle(index, g, pairs)

    def test_interval_probe_and_meg_matrix(self):
        g = single_rooted_dag(100, 150, seed=10)
        pairs = sample_pairs(g, 300, 10)
        for probe in ("linear", "bisect", "subset"):
            for use_meg in (False, True):
                index = build_index(g, scheme="interval", probe=probe,
                                    use_meg=use_meg)
                assert_index_matches_oracle(index, g, pairs)

    def test_2hop_strategies(self):
        g = gnm_random_digraph(60, 160, seed=11)
        pairs = sample_pairs(g, 300, 11)
        for strategy in ("greedy", "static"):
            index = build_index(g, scheme="2hop", strategy=strategy)
            assert_index_matches_oracle(index, g, pairs)


class TestPositiveWorkloads:
    def test_reachable_biased_pairs(self):
        """All schemes agree on reachability-heavy workloads too (the
        random workload is mostly negative; this covers the other
        side)."""
        from repro.bench.workloads import positive_query_pairs
        g = single_rooted_dag(120, 180, seed=12)
        pairs = positive_query_pairs(g, 300, seed=13)
        for scheme in ALL_SCHEMES:
            index = build_index(g, scheme=scheme)
            assert all(index.reachable(u, v) for u, v in pairs), scheme
