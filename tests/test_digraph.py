"""Unit tests for the DiGraph container."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty(self):
        g = DiGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = DiGraph([(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_from_nodes_and_edges(self):
        g = DiGraph(edges=[(1, 2)], nodes=[5, 6])
        assert set(g.nodes()) == {1, 2, 5, 6}
        assert g.num_edges == 1

    def test_isolated_nodes_kept(self):
        g = DiGraph(nodes=range(5))
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_hashable_node_types(self):
        g = DiGraph()
        g.add_edge("a", ("tuple", 1))
        g.add_edge(("tuple", 1), 3.5)
        assert g.has_edge("a", ("tuple", 1))
        assert g.has_edge(("tuple", 1), 3.5)


class TestMutation:
    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes == 1

    def test_add_edge_adds_endpoints(self):
        g = DiGraph()
        g.add_edge("x", "y")
        assert "x" in g and "y" in g

    def test_add_edge_idempotent(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        assert g.num_edges == 1

    def test_add_edges_bulk(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 3), (1, 2)])
        assert g.num_edges == 2

    def test_self_loop_allowed(self):
        g = DiGraph()
        g.add_edge(1, 1)
        assert g.has_edge(1, 1)
        assert g.self_loops() == [1]

    def test_remove_edge(self):
        g = DiGraph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert 1 in g and 2 in g  # endpoints stay

    def test_remove_missing_edge_raises(self):
        g = DiGraph([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(2, 1)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(7, 8)

    def test_remove_node_removes_incident_edges(self):
        g = DiGraph([(1, 2), (2, 3), (3, 1), (2, 2)])
        g.remove_node(2)
        assert 2 not in g
        assert g.num_edges == 1
        assert g.has_edge(3, 1)

    def test_remove_missing_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node("ghost")

    def test_clear(self):
        g = DiGraph([(1, 2)])
        g.clear()
        assert g.num_nodes == 0
        assert g.num_edges == 0


class TestInspection:
    def test_degrees(self):
        g = DiGraph([(1, 2), (1, 3), (2, 3)])
        assert g.out_degree(1) == 2
        assert g.in_degree(3) == 2
        assert g.in_degree(1) == 0
        assert g.out_degree(3) == 0

    def test_degree_unknown_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            g.out_degree(1)
        with pytest.raises(NodeNotFoundError):
            g.in_degree(1)

    def test_successors_predecessors(self):
        g = DiGraph([(1, 2), (1, 3), (2, 3)])
        assert list(g.successors(1)) == [2, 3]
        assert list(g.predecessors(3)) == [1, 2]
        with pytest.raises(NodeNotFoundError):
            g.successors(99)
        with pytest.raises(NodeNotFoundError):
            g.predecessors(99)

    def test_roots_and_leaves(self):
        g = DiGraph([(1, 2), (2, 3), (4, 3)])
        assert g.roots() == [1, 4]
        assert g.leaves() == [3]

    def test_density(self):
        g = DiGraph([(1, 2), (2, 3)])
        assert g.density == pytest.approx(2 / 3)
        assert DiGraph().density == 0.0

    def test_node_index_is_dense_and_insertion_ordered(self):
        g = DiGraph([(5, 3), (3, 9)])
        assert g.node_index() == {5: 0, 3: 1, 9: 2}

    def test_iteration_and_len(self):
        g = DiGraph([(1, 2)])
        assert len(g) == 2
        assert list(iter(g)) == [1, 2]

    def test_edges_iteration(self):
        edges = [(1, 2), (1, 3), (3, 2)]
        g = DiGraph(edges)
        assert sorted(g.edges()) == sorted(edges)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = DiGraph([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_edges == 1
        assert clone.num_edges == 2
        clone.remove_edge(1, 2)
        assert g.has_edge(1, 2)

    def test_copy_preserves_order(self):
        g = DiGraph([(3, 1), (1, 7)])
        assert list(g.copy().nodes()) == list(g.nodes())

    def test_reverse(self):
        g = DiGraph([(1, 2), (2, 3)])
        rev = g.reverse()
        assert rev.has_edge(2, 1)
        assert rev.has_edge(3, 2)
        assert rev.num_edges == 2
        assert set(rev.nodes()) == set(g.nodes())

    def test_reverse_keeps_isolated_nodes(self):
        g = DiGraph(nodes=[1, 2])
        assert set(g.reverse().nodes()) == {1, 2}

    def test_subgraph(self):
        g = DiGraph([(1, 2), (2, 3), (3, 4), (1, 4)])
        sub = g.subgraph([1, 2, 4])
        assert sub.num_nodes == 3
        assert sub.has_edge(1, 2)
        assert sub.has_edge(1, 4)
        assert not sub.has_edge(2, 3)

    def test_subgraph_unknown_node_raises(self):
        g = DiGraph([(1, 2)])
        with pytest.raises(NodeNotFoundError):
            g.subgraph([1, 99])


class TestEquality:
    def test_equal_graphs(self):
        a = DiGraph([(1, 2), (2, 3)])
        b = DiGraph([(1, 2), (2, 3)])
        assert a == b

    def test_different_edges(self):
        assert DiGraph([(1, 2)]) != DiGraph([(2, 1)])

    def test_different_nodes(self):
        assert DiGraph(nodes=[1]) != DiGraph(nodes=[2])

    def test_eq_other_type(self):
        assert DiGraph() != 42

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DiGraph())

    def test_repr(self):
        assert "num_nodes=2" in repr(DiGraph([(1, 2)]))


class TestBulkAndMixedNodes:
    def test_add_nodes_bulk(self):
        g = DiGraph()
        g.add_nodes(range(5))
        g.add_nodes([2, 3])  # idempotent overlap
        assert g.num_nodes == 5

    def test_mixed_node_types_coexist(self):
        g = DiGraph([(1, "1"), ("1", 2.5), (2.5, ("t", 0))])
        assert g.has_edge(1, "1")
        assert g.has_edge("1", 2.5)
        assert g.num_nodes == 4
        # int 1 and str "1" are distinct nodes.
        assert g.out_degree(1) == 1
        assert g.in_degree("1") == 1

    def test_bool_and_int_node_collision_semantics(self):
        # Python dict semantics: True == 1, so they are one node.  The
        # container follows hashing rules rather than fighting them;
        # this test documents the behaviour.
        g = DiGraph()
        g.add_node(1)
        g.add_node(True)
        assert g.num_nodes == 1
