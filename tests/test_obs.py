"""Unit tests for ``repro.obs`` — registry, exposition, tracing,
profiling.

The load-bearing property is atomic drain: a counter increment racing
``snapshot(reset=True)`` (or a ``render(..., reset=True)`` scrape)
must land in exactly one window — never lost, never doubled.  The
concurrency tests hammer that directly; the rest pins the instrument
semantics and the Prometheus text round-trip.
"""

from __future__ import annotations

import re
import threading

import pytest

from repro.obs.metrics import (
    BUILD_PHASE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    RECOVERY_BUCKETS,
    MetricsRegistry,
    format_bound,
)
from repro.obs.phases import PhaseProfiler
from repro.obs.prometheus import CONTENT_TYPE, parse_exposition, render
from repro.obs.tracing import (
    REQUEST_STAGES,
    BatchTicket,
    SlowQueryLog,
    SpanRecorder,
    TraceIds,
)


def sample_value(text: str, sample: str) -> float:
    """The value of one exact sample line (name + label block)."""
    match = re.search(rf"^{re.escape(sample)} (\S+)$", text,
                      re.MULTILINE)
    assert match is not None, f"no sample {sample!r} in:\n{text}"
    return float(match.group(1))


# ---------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------

class TestCounter:
    def test_inc_and_value(self):
        c = MetricsRegistry().counter("c", "help")
        c.inc()
        c.inc(5)
        assert c.value == 6.0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot_reset_drains(self):
        c = MetricsRegistry().counter("c")
        c.inc(3)
        assert c.snapshot(reset=True) == 3.0
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7.0

    def test_function_backed(self):
        g = MetricsRegistry().gauge("g")
        g.set_function(lambda: 42)
        assert g.value == 42.0

    def test_reset_immune(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        assert g.snapshot(reset=True) == 5.0
        assert g.value == 5.0


class TestHistogram:
    def test_percentile_never_understates_beyond_bucket(self):
        h = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            h.observe(v)
        # p50 lands in the (0.1, 1.0] bucket: the estimate is its upper
        # bound, i.e. >= every observation it could denote.
        assert h.percentile(0.5) == 1.0
        # The +Inf tail reports the exact max.
        h.observe(25.0)
        assert h.percentile(1.0) == 25.0

    def test_percentile_capped_at_max(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        h.observe(0.2)
        # All mass in the first bucket, max 0.2: report 0.2, not 1.0.
        assert h.percentile(0.99) == pytest.approx(0.2)

    def test_empty_percentile_is_zero(self):
        h = MetricsRegistry().histogram("h")
        assert h.percentile(0.99) == 0.0
        assert h.percentiles_ms() == {"p50_ms": 0.0, "p95_ms": 0.0,
                                      "p99_ms": 0.0, "max_ms": 0.0}

    def test_snapshot_reset_drains(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        snap = h.snapshot(reset=True)
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(2.5)
        assert snap["max"] == pytest.approx(2.0)
        assert snap["buckets"] == {"1": 1, "+Inf": 1}
        assert h.snapshot()["count"] == 0

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        # Empty bounds fall back to the default latency buckets.
        h = reg.histogram("h1", buckets=())
        assert h.bounds == DEFAULT_LATENCY_BUCKETS
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(2.0, 1.0))


def test_format_bound():
    assert format_bound(1.0) == "1"
    assert format_bound(0.005) == "0.005"
    assert format_bound(float("inf")) == "+Inf"


def test_bucket_presets_strictly_increasing():
    for preset in (DEFAULT_LATENCY_BUCKETS, BUILD_PHASE_BUCKETS,
                   RECOVERY_BUCKETS):
        assert all(a < b for a, b in zip(preset, preset[1:]))


# ---------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------

class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c", "one") is reg.counter("c", "two")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")
        with pytest.raises(ValueError):
            reg.counter("m", labels=("verb",))

    def test_labelled_children_cached(self):
        reg = MetricsRegistry()
        family = reg.counter("requests", labels=("verb",))
        family.labels("query").inc()
        family.labels("query").inc()
        assert family.labels("query").value == 2.0
        assert [values for values, _ in family.series()] == [("query",)]

    def test_wrong_label_arity_rejected(self):
        reg = MetricsRegistry()
        family = reg.counter("requests", labels=("verb",))
        with pytest.raises(ValueError):
            family.labels("a", "b")

    def test_collector_in_snapshot(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda: [{
            "name": "ext_total", "type": "counter", "help": "ext",
            "samples": [({"k": "v"}, 7)],
        }])
        snap = reg.snapshot()
        assert snap["ext_total"]["series"] == [
            {"labels": {"k": "v"}, "value": 7}]

    def test_reset_drains_counters_not_gauges(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        g = reg.gauge("g")
        c.inc(3)
        g.set(9)
        reg.reset()
        assert c.value == 0.0
        assert g.value == 9.0


class TestConcurrentDrain:
    """The acceptance property: reset under concurrent increments
    loses nothing and counters never go negative."""

    def test_no_lost_increments_across_resets(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        per_thread, threads = 2000, 4
        stop = threading.Event()
        drained = []

        def bump():
            for _ in range(per_thread):
                c.inc()

        def drain():
            while not stop.is_set():
                drained.append(c.snapshot(reset=True))

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        drainer = threading.Thread(target=drain)
        drainer.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        drainer.join()
        total = sum(drained) + c.value
        assert total == per_thread * threads
        assert all(d >= 0 for d in drained)

    def test_render_reset_drains_without_loss(self):
        reg = MetricsRegistry()
        c = reg.counter("reach_test_total", "t")
        per_thread, threads = 1000, 4
        stop = threading.Event()
        scraped = []

        def bump():
            for _ in range(per_thread):
                c.inc()

        def scrape():
            while not stop.is_set():
                text = render(reg, reset=True)
                parse_exposition(text)  # stays well-formed throughout
                scraped.append(sample_value(text, "reach_test_total"))

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        scraper = threading.Thread(target=scrape)
        scraper.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        scraper.join()
        assert sum(scraped) + c.value == per_thread * threads


# ---------------------------------------------------------------------
# prometheus text round-trip
# ---------------------------------------------------------------------

class TestExposition:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("reach_reqs_total", "Requests.",
                    labels=("verb",)).labels("query").inc(3)
        reg.gauge("reach_open", "Open.").set(2)
        h = reg.histogram("reach_lat_seconds", "Latency.",
                          buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_round_trip(self):
        text = render(self._registry())
        families = parse_exposition(text)
        assert families["reach_reqs_total"]["type"] == "counter"
        assert families["reach_open"]["type"] == "gauge"
        assert families["reach_lat_seconds"]["type"] == "histogram"
        assert sample_value(text,
                            'reach_reqs_total{verb="query"}') == 3.0
        assert sample_value(text, "reach_open") == 2.0
        # Buckets are cumulative: le=1 includes the le=0.1 observation.
        assert sample_value(text,
                            'reach_lat_seconds_bucket{le="0.1"}') == 1.0
        assert sample_value(text,
                            'reach_lat_seconds_bucket{le="1"}') == 2.0
        assert sample_value(
            text, 'reach_lat_seconds_bucket{le="+Inf"}') == 2.0
        assert sample_value(text, "reach_lat_seconds_count") == 2.0
        assert sample_value(text, "reach_lat_seconds_sum") == \
            pytest.approx(0.55)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("reach_err_total",
                    labels=("msg",)).labels('a"b\\c\nd').inc()
        text = render(reg)
        assert r'msg="a\"b\\c\nd"' in text
        families = parse_exposition(text)
        assert families["reach_err_total"]["samples"] == 1

    def test_parser_rejects_duplicate_type(self):
        bad = ("# TYPE x counter\nx 1\n"
               "# TYPE x counter\nx 2\n")
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_parser_rejects_non_cumulative_buckets(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="0.1"} 5\n'
               'h_bucket{le="1"} 3\n'
               'h_bucket{le="+Inf"} 5\n'
               "h_sum 1\nh_count 5\n")
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_parser_rejects_malformed_sample(self):
        with pytest.raises(ValueError):
            parse_exposition("reach total 1 2 3 4\n")

    def test_content_type_pinned(self):
        assert "0.0.4" in CONTENT_TYPE

    def test_multi_registry_render(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("from_a_total").inc()
        b.counter("from_b_total").inc()
        families = parse_exposition(render(a, b))
        assert "from_a_total" in families and "from_b_total" in families


# ---------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------

class TestTracing:
    def test_trace_ids_unique(self):
        mint = TraceIds()
        ids = {mint.next() for _ in range(1000)}
        assert len(ids) == 1000

    def test_ticket_spans_sum_to_elapsed(self):
        ticket = BatchTicket("t-1", started=10.0)
        ticket.parse_done = 10.1
        ticket.enqueued_at = 10.15
        ticket.flush_at = 10.4
        ticket.kernel_done = 10.9
        spans = ticket.spans(finished=11.0)
        assert set(spans) == set(REQUEST_STAGES)
        assert sum(spans.values()) == pytest.approx(1.0)
        assert spans["kernel"] == pytest.approx(0.5)

    def test_ticket_missing_stamps_absent(self):
        ticket = BatchTicket("t-2", started=5.0)
        ticket.parse_done = 5.2
        spans = ticket.spans(finished=5.5)
        # Never reached the batcher: serialize absorbs the tail.
        assert set(spans) == {"parse", "serialize"}
        assert sum(spans.values()) == pytest.approx(0.5)

    def test_span_recorder_percentiles(self):
        reg = MetricsRegistry()
        recorder = SpanRecorder(reg)
        recorder.record({"parse": 0.001, "kernel": 0.02})
        pcts = recorder.percentiles_ms()
        assert set(pcts) == {"parse", "kernel"}
        assert pcts["kernel"]["max_ms"] == pytest.approx(20.0)
        # And the observations are visible to a scrape.
        text = render(reg)
        assert sample_value(
            text, 'reach_stage_seconds_count{stage="kernel"}') == 1.0

    def test_slow_log_keeps_top_k(self):
        log = SlowQueryLog(capacity=3)
        for ms in (5, 1, 9, 3, 7):
            log.offer(ms / 1000.0, {"ms": ms})
        assert [e["ms"] for e in log.snapshot()] == [9, 7, 5]
        assert len(log) == 3

    def test_slow_log_snapshot_reset(self):
        log = SlowQueryLog(capacity=4)
        log.offer(0.1, {"ms": 100})
        assert log.snapshot(reset=True) == [{"ms": 100}]
        assert log.snapshot() == []

    def test_slow_log_zero_capacity(self):
        log = SlowQueryLog(capacity=0)
        log.offer(1.0, {"ms": 1000})
        assert log.snapshot() == []


# ---------------------------------------------------------------------
# build-phase profiling
# ---------------------------------------------------------------------

class TestPhaseProfiler:
    def test_phase_records_seconds(self):
        prof = PhaseProfiler()
        with prof.phase("condense"):
            pass
        prof.record("meg", 0.25)
        assert set(prof.seconds) == {"condense", "meg"}
        assert prof.seconds["meg"] == 0.25
        assert prof.total_seconds == pytest.approx(
            prof.seconds["condense"] + 0.25)

    def test_registry_observation(self):
        reg = MetricsRegistry()
        prof = PhaseProfiler(reg)
        prof.record("spanning", 0.5)
        prof.record("spanning", 1.5)
        text = render(reg)
        assert sample_value(
            text,
            'reach_build_phase_seconds_count{phase="spanning"}') == 2.0
        assert sample_value(
            text,
            'reach_build_phase_seconds_sum{phase="spanning"}') == 2.0
