"""Unit tests for latency profiles and amortization analysis."""

from __future__ import annotations

import pytest

from repro.bench.profiles import (
    AmortizationReport,
    LatencyProfile,
    amortization_point,
    latency_profile,
)
from repro.bench.workloads import random_query_pairs
from repro.core.base import build_index
from repro.graph.generators import single_rooted_dag


class TestLatencyProfile:
    def test_percentiles_ordered(self):
        g = single_rooted_dag(150, 210, max_fanout=5, seed=1)
        index = build_index(g, scheme="dual-i")
        pairs = random_query_pairs(g, 2000, seed=2)
        profile = latency_profile(index, pairs)
        assert profile.num_queries == 2000
        assert 0 <= profile.p50 <= profile.p90 <= profile.p99 \
            <= profile.maximum
        assert profile.mean > 0

    def test_as_dict_microseconds(self):
        g = single_rooted_dag(50, 70, seed=3)
        index = build_index(g, scheme="dual-ii")
        profile = latency_profile(index,
                                  random_query_pairs(g, 200, seed=4))
        d = profile.as_dict()
        assert d["scheme"] == "dual-ii"
        assert d["p50_us"] == pytest.approx(1e6 * profile.p50)

    def test_empty_workload(self):
        g = single_rooted_dag(20, 25, seed=5)
        index = build_index(g, scheme="dual-i")
        profile = latency_profile(index, [])
        assert profile.num_queries == 0
        assert profile.mean == 0.0
        assert profile.maximum == 0.0

    def test_online_bfs_has_heavier_tail_than_dual_i(self):
        """The data-dependent scheme's p99/p50 ratio exceeds the
        constant-time scheme's on a deep graph."""
        g = single_rooted_dag(800, 900, max_fanout=2, seed=6)
        pairs = random_query_pairs(g, 1500, seed=7)
        dual = latency_profile(build_index(g, scheme="dual-i"), pairs)
        bfs = latency_profile(build_index(g, scheme="online-bfs"), pairs)
        assert bfs.maximum > dual.maximum


class TestAmortization:
    def test_dual_i_pays_off(self):
        g = single_rooted_dag(400, 520, max_fanout=5, seed=8)
        pairs = random_query_pairs(g, 3000, seed=9)
        report = amortization_point(g, "dual-i", pairs)
        assert report.scheme == "dual-i"
        assert report.per_query_seconds < \
            report.baseline_per_query_seconds
        assert report.break_even_queries is not None
        assert report.break_even_queries >= 1
        # At the break-even count, the indexed total really is <= the
        # baseline's total (within float fuzz).
        q = report.break_even_queries
        baseline_total = q * report.baseline_per_query_seconds
        assert report.total_seconds(q) <= baseline_total * 1.001 + 1e-9

    def test_slower_scheme_never_pays_off(self):
        """A scheme whose per-query cost exceeds the baseline's has no
        break-even point.  Online BFS measured against the O(1) closure
        matrix gives a deterministic >10x margin."""
        g = single_rooted_dag(300, 390, seed=10)
        pairs = random_query_pairs(g, 1500, seed=11)
        report = amortization_point(g, "online-bfs", pairs,
                                    baseline_scheme="closure")
        assert report.per_query_seconds > \
            report.baseline_per_query_seconds
        assert report.break_even_queries is None

    def test_total_seconds(self):
        report = AmortizationReport(
            scheme="x", build_seconds=2.0, per_query_seconds=0.001,
            baseline_per_query_seconds=0.01, break_even_queries=223)
        assert report.total_seconds(1000) == pytest.approx(3.0)

    def test_options_forwarded(self):
        g = single_rooted_dag(150, 190, seed=12)
        pairs = random_query_pairs(g, 1000, seed=13)
        report = amortization_point(g, "dual-i", pairs, use_meg=False)
        assert report.build_seconds > 0
