"""Unit tests for the link table and its transitive closure."""

from __future__ import annotations

import pytest

from repro.core.intervals import assign_intervals
from repro.core.linktable import (
    Link,
    build_link_table,
    transitive_link_table,
)
from repro.graph.generators import random_dag
from repro.graph.spanning import spanning_forest


def _tables_for(graph):
    forest = spanning_forest(graph)
    labeling = assign_intervals(forest)
    base = build_link_table(forest.nontree_edges, labeling)
    return base, transitive_link_table(base)


class TestLink:
    def test_covers(self):
        link = Link(9, 6, 9)
        assert link.covers(6)
        assert link.covers(8)
        assert not link.covers(9)
        assert not link.covers(5)

    def test_head_interval(self):
        assert Link(9, 6, 9).head_interval.width == 3

    def test_repr(self):
        assert repr(Link(9, 6, 9)) == "9->[6,9)"


class TestBuildLinkTable:
    def test_paper_links(self, paper_graph):
        base, _ = _tables_for(paper_graph)
        assert set(base.links) == {Link(9, 6, 9), Link(7, 1, 5)}
        assert base.xs == (7, 9)
        assert base.ys == (1, 6)

    def test_empty_for_trees(self, chain10):
        base, closed = _tables_for(chain10)
        assert len(base) == 0
        assert len(closed) == 0

    def test_index_lookups(self, paper_graph):
        base, _ = _tables_for(paper_graph)
        assert base.index_x(7) == 0
        assert base.index_x(9) == 1
        assert base.index_y(1) == 0
        assert base.index_y(6) == 1
        with pytest.raises(KeyError):
            base.index_x(8)
        with pytest.raises(KeyError):
            base.index_y(2)

    def test_snap_x(self, paper_graph):
        base, _ = _tables_for(paper_graph)
        assert base.snap_x(0) == 0     # -> 7
        assert base.snap_x(7) == 0
        assert base.snap_x(8) == 1     # -> 9
        assert base.snap_x(9) == 1
        assert base.snap_x(10) is None

    def test_snap_y_down(self, paper_graph):
        base, _ = _tables_for(paper_graph)
        assert base.snap_y_down(0) is None
        assert base.snap_y_down(1) == 0
        assert base.snap_y_down(5) == 0
        assert base.snap_y_down(6) == 1
        assert base.snap_y_down(100) == 1


class TestTransitiveClosure:
    def test_paper_derivation(self, paper_graph):
        """The paper's worked example: 9->[6,9) and 7->[1,5) derive
        9->[1,5), giving exactly three transitive links."""
        _, closed = _tables_for(paper_graph)
        assert set(closed.links) == {
            Link(9, 6, 9), Link(7, 1, 5), Link(9, 1, 5)}

    def test_contains_base_links(self):
        g = random_dag(40, 90, seed=1)
        base, closed = _tables_for(g)
        assert set(base.links) <= set(closed.links)

    def test_coordinate_sets_unchanged(self):
        g = random_dag(40, 90, seed=2)
        base, closed = _tables_for(g)
        assert closed.xs == base.xs
        assert closed.ys == base.ys

    def test_idempotent(self):
        g = random_dag(40, 90, seed=3)
        _, closed = _tables_for(g)
        assert set(transitive_link_table(closed).links) == set(closed.links)

    @pytest.mark.parametrize("seed", range(6))
    def test_property1_size_bound(self, seed):
        """Property 1: at most t(t+1)/2 transitive links."""
        g = random_dag(40, 110, seed=seed)
        base, closed = _tables_for(g)
        t = len(base)
        assert len(closed) <= t * (t + 1) // 2

    @pytest.mark.parametrize("seed", range(6))
    def test_closure_matches_fixpoint(self, seed):
        """Independent oracle: the naive add-until-fixpoint loop."""
        g = random_dag(30, 75, seed=seed)
        base, closed = _tables_for(g)
        table = set(base.links)
        changed = True
        while changed:
            changed = False
            for e1 in list(table):
                for e2 in list(table):
                    if e1.covers(e2.tail):
                        derived = Link(e1.tail, e2.head_start, e2.head_end)
                        if derived not in table:
                            table.add(derived)
                            changed = True
        assert set(closed.links) == table

    def test_empty_table(self, chain10):
        base, closed = _tables_for(chain10)
        assert transitive_link_table(base) is base or len(closed) == 0
