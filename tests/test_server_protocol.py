"""Unit tests for the gateway wire protocol and the micro-batcher."""

from __future__ import annotations

import asyncio

import pytest

from repro.server import protocol
from repro.server.batcher import MicroBatcher, OverloadedError
from repro.server.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    error_reply,
    ok_reply,
    parse_pairs,
    parse_request,
)


class TestMessageCodec:
    def test_round_trip(self):
        doc = {"id": 7, "verb": "query", "u": 0, "v": 3}
        line = encode_message(doc)
        assert line.endswith(b"\n")
        assert b" " not in line  # compact separators
        assert decode_message(line) == doc

    def test_invalid_json_is_bad_request(self):
        with pytest.raises(ProtocolError) as info:
            decode_message(b"{nope\n")
        assert info.value.code == protocol.ERR_BAD_REQUEST

    def test_non_object_is_bad_request(self):
        with pytest.raises(ProtocolError) as info:
            decode_message(b"[1, 2]\n")
        assert info.value.code == protocol.ERR_BAD_REQUEST


class TestParseRequest:
    def test_valid_verbs(self):
        for verb in protocol.VERBS:
            request = parse_request({"id": 1, "verb": verb})
            assert request.verb == verb
            assert request.id == 1

    def test_unknown_verb(self):
        with pytest.raises(ProtocolError) as info:
            parse_request({"id": 1, "verb": "teleport"})
        assert info.value.code == protocol.ERR_UNKNOWN_VERB

    def test_missing_verb(self):
        with pytest.raises(ProtocolError) as info:
            parse_request({"id": 1})
        assert info.value.code == protocol.ERR_BAD_REQUEST

    def test_non_scalar_id(self):
        with pytest.raises(ProtocolError):
            parse_request({"id": [1], "verb": "ping"})

    def test_id_optional(self):
        assert parse_request({"verb": "ping"}).id is None


class TestParsePairs:
    def test_query_form(self):
        payload = {"verb": "query", "u": 0, "v": "x"}
        assert parse_pairs(payload) == [(0, "x")]

    def test_query_missing_field(self):
        with pytest.raises(ProtocolError):
            parse_pairs({"verb": "query", "u": 0})

    def test_batch_form(self):
        payload = {"verb": "batch", "pairs": [[0, 1], ["a", "b"]]}
        assert parse_pairs(payload) == [(0, 1), ("a", "b")]

    def test_batch_requires_list(self):
        with pytest.raises(ProtocolError):
            parse_pairs({"verb": "batch", "pairs": "0,1"})

    def test_malformed_pair(self):
        with pytest.raises(ProtocolError):
            parse_pairs({"verb": "batch", "pairs": [[0, 1, 2]]})

    def test_non_scalar_node(self):
        with pytest.raises(ProtocolError):
            parse_pairs({"verb": "batch", "pairs": [[0, {"v": 1}]]})

    def test_too_large_cap(self):
        payload = {"verb": "batch", "pairs": [[0, 1]] * 5}
        assert len(parse_pairs(payload, max_pairs=5)) == 5
        with pytest.raises(ProtocolError) as info:
            parse_pairs(payload, max_pairs=4)
        assert info.value.code == protocol.ERR_TOO_LARGE


class TestReplies:
    def test_ok_reply(self):
        assert ok_reply(3, True) == {"id": 3, "ok": True, "result": True}

    def test_error_reply(self):
        reply = error_reply(3, protocol.ERR_OVERLOADED, "shed")
        assert reply["ok"] is False
        assert reply["error"] == protocol.ERR_OVERLOADED


# ---------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------

def run(coro):
    return asyncio.run(coro)


def make_batcher(calls: list, **kwargs) -> MicroBatcher:
    """A batcher whose kernel records every flushed pair vector and
    answers ``u <= v`` (an order any scatter bug would break)."""

    async def run_batch(pairs: list) -> list:
        calls.append(list(pairs))
        return [u <= v for u, v in pairs]

    return MicroBatcher(run_batch, **kwargs)


class TestFlushTriggers:
    def test_flush_by_size_coalesces(self):
        async def scenario():
            calls: list = []
            batcher = make_batcher(calls, max_batch=4, max_delay=60.0)
            answers = await asyncio.gather(
                batcher.submit([(0, 1), (5, 2)]),
                batcher.submit([(3, 3), (9, 1)]))
            await batcher.close()
            return calls, answers

        calls, answers = run(scenario())
        assert calls == [[(0, 1), (5, 2), (3, 3), (9, 1)]]  # one flush
        assert answers == [[True, False], [True, False]]

    def test_flush_by_deadline(self):
        async def scenario():
            calls: list = []
            batcher = make_batcher(calls, max_batch=10_000,
                                   max_delay=0.005)
            answers = await batcher.submit([(1, 2)])
            await batcher.close()
            return calls, answers

        calls, answers = run(scenario())
        assert answers == [True]
        assert calls == [[(1, 2)]]

    def test_zero_delay_is_unbatched(self):
        async def scenario():
            calls: list = []
            batcher = make_batcher(calls, max_batch=512, max_delay=0.0)
            await batcher.submit([(0, 1)])
            await batcher.submit([(2, 1)])
            await batcher.close()
            return calls

        assert run(scenario()) == [[(0, 1)], [(2, 1)]]  # one per request

    def test_multi_query_flush_counters(self):
        async def scenario():
            calls: list = []
            batcher = make_batcher(calls, max_batch=4, max_delay=60.0)
            await asyncio.gather(batcher.submit([(0, 1), (1, 2)]),
                                 batcher.submit([(2, 3), (3, 4)]))
            stats = batcher.stats()
            await batcher.close()
            return stats

        stats = run(scenario())
        assert stats["flushes"] == 1
        assert stats["multi_query_flushes"] == 1
        assert stats["flushed_requests"] == 2
        assert stats["flushed_pairs"] == 4
        assert stats["mean_flush_pairs"] == 4.0
        assert stats["occupancy_histogram"] == {"2": 1}
        assert stats["flush_pairs_histogram"] == {"4": 1}

    def test_empty_submit(self):
        async def scenario():
            batcher = make_batcher([], max_batch=4)
            answers = await batcher.submit([])
            await batcher.close()
            return answers

        assert run(scenario()) == []


class TestAdmission:
    def test_try_submit_returns_none_when_block_queue_full(self):
        async def scenario():
            batcher = make_batcher([], max_batch=10_000, max_delay=60.0,
                                   max_pending=2, policy="block")
            first = batcher.try_submit([(0, 1), (1, 2)])
            assert first is not None
            overflow = batcher.try_submit([(2, 3)])
            first.cancel()
            await batcher.close()
            return overflow

        assert run(scenario()) is None

    def test_block_policy_waits_for_room(self):
        async def scenario():
            calls: list = []
            batcher = make_batcher(calls, max_batch=2, max_delay=60.0,
                                   max_pending=2, policy="block")
            answers = await asyncio.gather(
                batcher.submit([(0, 1), (1, 2)]),
                batcher.submit([(2, 3), (3, 4)]),
                batcher.submit([(4, 5), (5, 6)]))
            await batcher.close()
            return calls, answers

        calls, answers = run(scenario())
        assert len(calls) == 3  # every request served, sequentially
        assert answers == [[True, True]] * 3

    def test_shed_policy_raises(self):
        async def scenario():
            batcher = make_batcher([], max_batch=10_000, max_delay=60.0,
                                   max_pending=2, policy="shed")
            admitted = batcher.try_submit([(0, 1), (1, 2)])
            try:
                with pytest.raises(OverloadedError):
                    batcher.try_submit([(2, 3)])
                with pytest.raises(OverloadedError):
                    await batcher.submit([(2, 3)])
                stats = batcher.stats()
            finally:
                admitted.cancel()
                await batcher.close()
            return stats

        assert run(scenario())["shed_requests"] == 2

    @pytest.mark.parametrize("policy", ["block", "shed"])
    def test_oversize_request_always_shed(self, policy):
        async def scenario():
            batcher = make_batcher([], max_pending=4, policy=policy)
            with pytest.raises(OverloadedError):
                await batcher.submit([(i, i) for i in range(5)])
            await batcher.close()

        run(scenario())

    def test_invalid_parameters(self):
        async def noop(pairs):
            return []

        with pytest.raises(ValueError):
            MicroBatcher(noop, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(noop, max_pending=0)
        with pytest.raises(ValueError):
            MicroBatcher(noop, policy="drop")

    def test_closed_batcher_sheds(self):
        async def scenario():
            batcher = make_batcher([])
            await batcher.close()
            with pytest.raises(OverloadedError):
                batcher.try_submit([(0, 1)])

        run(scenario())


class TestIsolation:
    def test_failing_member_does_not_poison_the_flush(self):
        async def scenario():
            async def run_batch(pairs: list) -> list:
                if any(u == "ghost" for u, _ in pairs):
                    raise KeyError("ghost")
                return [True] * len(pairs)

            batcher = MicroBatcher(run_batch, max_batch=4,
                                   max_delay=60.0)
            good, bad = await asyncio.gather(
                batcher.submit([(0, 1), (1, 2)]),
                batcher.submit([("ghost", 3), (4, 5)]),
                return_exceptions=True)
            stats = batcher.stats()
            await batcher.close()
            return good, bad, stats

        good, bad, stats = run(scenario())
        assert good == [True, True]  # shared-flush survivor
        assert isinstance(bad, KeyError)
        assert stats["isolation_reruns"] == 1
        assert stats["in_flight_pairs"] == 0  # admission fully released


class TestFlushFailurePaths:
    def test_hard_kernel_failure_fails_only_that_batch(self):
        """A kernel that raises for everyone fails every member of the
        flush with the exception — and the batcher keeps accepting and
        answering once the kernel recovers."""
        async def scenario():
            fail = {"armed": 2}

            async def run_batch(pairs: list) -> list:
                if fail["armed"] > 0:
                    fail["armed"] -= 1
                    raise RuntimeError("kernel down")
                return [True] * len(pairs)

            batcher = MicroBatcher(run_batch, max_batch=2,
                                   max_delay=60.0)
            # One flush of two requests: the flush call fails (1),
            # then each isolation rerun fails/succeeds per arming.
            first, second = await asyncio.gather(
                batcher.submit([(0, 1)]),
                batcher.submit([(2, 3)]),
                return_exceptions=True)
            # The batcher is still open for business afterwards.
            recovered = await batcher.submit([(4, 5)])
            stats = batcher.stats()
            await batcher.close()
            return first, second, recovered, stats

        first, second, recovered, stats = run(scenario())
        # Armed twice: the shared flush burns one, the first isolated
        # rerun burns the other; the second rerun succeeds.
        assert isinstance(first, RuntimeError)
        assert second == [True]
        assert recovered == [True]
        assert stats["isolation_reruns"] == 1
        assert stats["flush_failures"] == 1
        assert stats["in_flight_pairs"] == 0

    def test_every_member_failing_releases_admission(self):
        async def scenario():
            async def run_batch(pairs: list) -> list:
                raise RuntimeError("kernel permanently down")

            batcher = MicroBatcher(run_batch, max_batch=4,
                                   max_delay=60.0, max_pending=8)
            results = await asyncio.gather(
                *[batcher.submit([(i, i + 1)]) for i in range(4)],
                return_exceptions=True)
            stats = batcher.stats()
            await batcher.close()
            return results, stats

        results, stats = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert stats["flush_failures"] == 4
        assert stats["in_flight_pairs"] == 0  # nothing leaked

    def test_sustained_shed_stays_explicit(self):
        """Under sustained overload with policy=shed every rejected
        submission raises OverloadedError (the gateway's 'overloaded'
        reply) — requests are never silently dropped."""
        async def scenario():
            release = asyncio.Event()

            async def run_batch(pairs: list) -> list:
                await release.wait()
                return [True] * len(pairs)

            batcher = MicroBatcher(run_batch, max_batch=1,
                                   max_delay=60.0, max_pending=2,
                                   policy="shed")
            admitted = [asyncio.ensure_future(batcher.submit([(0, 1)]))
                        for _ in range(2)]
            await asyncio.sleep(0)
            shed = 0
            for _ in range(10):
                try:
                    await batcher.submit([(2, 3)])
                except OverloadedError:
                    shed += 1
            release.set()
            answers = await asyncio.gather(*admitted)
            stats = batcher.stats()
            await batcher.close()
            return shed, answers, stats

        shed, answers, stats = run(scenario())
        assert shed == 10  # every over-capacity submit said so loudly
        assert answers == [[True], [True]]  # admitted work completed
        assert stats["shed_requests"] == 10
        assert stats["in_flight_pairs"] == 0
