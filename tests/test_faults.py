"""Unit tests of the fault injectors themselves (repro.testing.faults).

The injectors are test infrastructure, so they get their own tests:
a broken chaos proxy would make the soak vacuously green.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.testing.faults import ChaosProxy, FaultEvent, FaultPlan, FlakyService


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_events_sorted_and_popped_in_time_order(self):
        plan = FaultPlan([FaultEvent(2.0, "b"), FaultEvent(0.5, "a"),
                          FaultEvent(1.0, "c")])
        assert [e.kind for e in plan.events] == ["a", "c", "b"]
        assert [e.kind for e in plan.pop_due(1.0)] == ["a", "c"]
        assert plan.remaining == 1
        assert plan.pop_due(0.9) == []
        assert [e.kind for e in plan.pop_due(10.0)] == ["b"]
        assert plan.remaining == 0

    def test_random_plan_is_deterministic(self):
        kwargs = dict(seed=42, duration=10.0,
                      kinds=["sever", "garble", "delay"], count=7)
        first = FaultPlan.random(**kwargs)
        second = FaultPlan.random(**kwargs)
        assert first.events == second.events
        assert FaultPlan.random(**{**kwargs, "seed": 43}).events \
            != first.events

    def test_random_plan_covers_every_kind(self):
        kinds = ["a", "b", "c", "d", "e"]
        plan = FaultPlan.random(seed=0, duration=5.0, kinds=kinds,
                                count=len(kinds))
        assert sorted(e.kind for e in plan.events) == kinds
        assert all(0.0 <= e.at < 5.0 for e in plan.events)

    def test_random_plan_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            FaultPlan.random(seed=0, duration=1.0, kinds=[], count=1)
        with pytest.raises(ValueError):
            FaultPlan.random(seed=0, duration=1.0, kinds=["x"],
                             count=-1)


# ---------------------------------------------------------------------------
# ChaosProxy (against a plain echo server — no gateway involved)
# ---------------------------------------------------------------------------

@pytest.fixture
def echo_server():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    stop = threading.Event()

    def serve():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            def pump(c=conn):
                try:
                    while True:
                        data = c.recv(4096)
                        if not data:
                            return
                        c.sendall(data)
                except OSError:
                    pass
                finally:
                    c.close()
            threading.Thread(target=pump, daemon=True).start()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        yield listener.getsockname()[1]
    finally:
        stop.set()
        listener.close()
        thread.join(timeout=2.0)


class TestChaosProxy:
    def test_forwards_both_directions(self, echo_server):
        with ChaosProxy("127.0.0.1", echo_server) as proxy:
            with socket.create_connection(("127.0.0.1", proxy.port),
                                          timeout=5.0) as sock:
                sock.sendall(b"hello chaos\n")
                sock.settimeout(5.0)
                assert sock.recv(4096) == b"hello chaos\n"
            assert proxy.connections_accepted == 1
            assert proxy.bytes_forwarded >= 2 * len(b"hello chaos\n")

    def test_sever_all_resets_live_connections(self, echo_server):
        with ChaosProxy("127.0.0.1", echo_server) as proxy:
            sock = socket.create_connection(("127.0.0.1", proxy.port),
                                            timeout=5.0)
            sock.settimeout(5.0)
            sock.sendall(b"x\n")
            assert sock.recv(4096) == b"x\n"
            assert proxy.sever_all() == 1
            # The severed socket yields EOF or a reset, never a hang.
            try:
                assert sock.recv(4096) == b""
            except OSError:
                pass
            sock.close()
            assert proxy.severed == 1

    def test_garble_corrupts_then_heals(self, echo_server):
        with ChaosProxy("127.0.0.1", echo_server) as proxy:
            with socket.create_connection(("127.0.0.1", proxy.port),
                                          timeout=5.0) as sock:
                sock.settimeout(5.0)
                proxy.garble_next(1)
                sock.sendall(b"abc\n")
                garbled = sock.recv(4096)
                assert garbled != b"abc\n"
                # XOR is an involution: un-garbling recovers the bytes,
                # proving corruption (not truncation) happened.
                assert bytes(b ^ 0x5A for b in garbled) == b"abc\n"
                sock.sendall(b"clean\n")
                assert sock.recv(4096) == b"clean\n"
            assert proxy.garbled_chunks == 1

    def test_spike_delay_slows_the_wire(self, echo_server):
        with ChaosProxy("127.0.0.1", echo_server) as proxy:
            with socket.create_connection(("127.0.0.1", proxy.port),
                                          timeout=5.0) as sock:
                sock.settimeout(5.0)
                proxy.spike_delay(0.15, duration=1.0)
                started = time.monotonic()
                sock.sendall(b"slow\n")
                assert sock.recv(4096) == b"slow\n"
                assert time.monotonic() - started >= 0.15
            assert proxy.delayed_chunks >= 1

    def test_blackhole_stalls_but_delivers(self, echo_server):
        with ChaosProxy("127.0.0.1", echo_server) as proxy:
            with socket.create_connection(("127.0.0.1", proxy.port),
                                          timeout=5.0) as sock:
                sock.settimeout(5.0)
                proxy.blackhole(0.2)
                started = time.monotonic()
                sock.sendall(b"held\n")
                assert sock.recv(4096) == b"held\n"
                assert time.monotonic() - started >= 0.15


# ---------------------------------------------------------------------------
# FlakyService
# ---------------------------------------------------------------------------

class _FakeService:
    def __init__(self):
        self.calls = 0
        self.closed = False

    def query_batch(self, pairs):
        self.calls += 1
        return [True] * len(pairs)

    def close(self):
        self.closed = True


class TestFlakyService:
    def test_passthrough_until_armed(self):
        inner = _FakeService()
        flaky = FlakyService(inner)
        assert flaky.query_batch([(0, 1)]) == [True]
        flaky.fail_next(2, exc_type=ValueError)
        with pytest.raises(ValueError):
            flaky.query_batch([(0, 1)])
        with pytest.raises(ValueError):
            flaky.query_batch([(0, 1)])
        assert flaky.query_batch([(0, 1), (1, 2)]) == [True, True]
        assert flaky.injected_failures == 2
        assert flaky.armed == 0
        # Only the successful calls reached the inner service.
        assert inner.calls == 2

    def test_delegates_everything_else(self):
        inner = _FakeService()
        flaky = FlakyService(inner)
        assert flaky.calls == 0  # __getattr__ delegation
        with flaky:
            pass
        assert inner.closed

    def test_rewrap_keeps_armed_state(self):
        first, second = _FakeService(), _FakeService()
        flaky = FlakyService(first)
        flaky.fail_next(1)
        assert flaky.rewrap(second) is flaky
        with pytest.raises(RuntimeError):
            flaky.query_batch([(0, 1)])
        assert flaky.query_batch([(0, 1)]) == [True]
        assert second.calls == 1 and first.calls == 0
