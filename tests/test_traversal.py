"""Unit tests for traversals, topological sorts, and search reachability."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError, NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    ancestor_set,
    bfs_layers,
    bfs_order,
    dfs_events,
    dfs_postorder,
    dfs_preorder,
    is_reachable_search,
    is_topological_order,
    reachable_set,
    topological_sort,
    topological_sort_dfs,
)


class TestDFS:
    def test_preorder_chain(self, chain10):
        assert dfs_preorder(chain10) == list(range(10))

    def test_postorder_chain(self, chain10):
        assert dfs_postorder(chain10) == list(range(9, -1, -1))

    def test_preorder_respects_insertion_order(self):
        g = DiGraph([(0, 2), (0, 1), (2, 3)])
        assert dfs_preorder(g) == [0, 2, 3, 1]

    def test_events_classify_edges(self, diamond):
        events = list(dfs_events(diamond, sources=["a"]))
        tree = [e for kind, e in events if kind == "tree"]
        nontree = [e for kind, e in events if kind == "nontree"]
        assert ("a", "b") in tree
        assert ("b", "d") in tree
        assert ("a", "c") in tree
        assert ("c", "d") in nontree

    def test_events_enter_leave_balanced(self, paper_graph):
        events = list(dfs_events(paper_graph))
        enters = sum(1 for kind, _ in events if kind == "enter")
        leaves = sum(1 for kind, _ in events if kind == "leave")
        assert enters == leaves == paper_graph.num_nodes

    def test_forest_covers_all_nodes(self):
        g = DiGraph([(0, 1), (2, 3)])
        assert set(dfs_preorder(g)) == {0, 1, 2, 3}

    def test_explicit_sources(self):
        g = DiGraph([(0, 1), (2, 3)])
        assert dfs_preorder(g, sources=[2]) == [2, 3]

    def test_unknown_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            dfs_preorder(DiGraph(), sources=[1])

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        g = DiGraph([(i, i + 1) for i in range(n)])
        order = dfs_preorder(g, sources=[0])
        assert len(order) == n + 1

    def test_cycle_terminates(self):
        g = DiGraph([(0, 1), (1, 0)])
        assert set(dfs_preorder(g)) == {0, 1}


class TestBFS:
    def test_order_chain(self, chain10):
        assert bfs_order(chain10, 0) == list(range(10))

    def test_order_only_reachable(self, chain10):
        assert bfs_order(chain10, 7) == [7, 8, 9]

    def test_layers(self, diamond):
        assert bfs_layers(diamond, "a") == [["a"], ["b", "c"], ["d"]]

    def test_layers_single_node(self):
        g = DiGraph(nodes=[1])
        assert bfs_layers(g, 1) == [[1]]

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            bfs_order(DiGraph(), 0)
        with pytest.raises(NodeNotFoundError):
            bfs_layers(DiGraph(), 0)


class TestTopologicalSort:
    def test_valid_on_dag(self, diamond):
        order = topological_sort(diamond)
        assert is_topological_order(diamond, order)

    def test_dfs_variant_valid(self, diamond):
        order = topological_sort_dfs(diamond)
        assert is_topological_order(diamond, order)

    def test_both_detect_cycles(self, two_cycle_graph):
        with pytest.raises(NotADAGError):
            topological_sort(two_cycle_graph)
        with pytest.raises(NotADAGError):
            topological_sort_dfs(two_cycle_graph)

    def test_self_loop_is_a_cycle(self):
        g = DiGraph([(1, 1)])
        with pytest.raises(NotADAGError):
            topological_sort(g)

    def test_empty_graph(self):
        assert topological_sort(DiGraph()) == []
        assert topological_sort_dfs(DiGraph()) == []

    def test_deterministic(self):
        g = DiGraph([(2, 3), (1, 3), (0, 1)])
        assert topological_sort(g) == topological_sort(g)

    def test_is_topological_order_rejects_wrong_order(self, chain10):
        order = list(range(10))
        order[0], order[1] = order[1], order[0]
        assert not is_topological_order(chain10, order)

    def test_is_topological_order_rejects_wrong_nodes(self, chain10):
        assert not is_topological_order(chain10, list(range(9)))
        assert not is_topological_order(chain10, list(range(11)))

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.graph.generators import random_dag
        for seed in range(5):
            g = random_dag(40, 80, seed=seed)
            order = topological_sort(g)
            ng = nx.DiGraph(list(g.edges()))
            ng.add_nodes_from(g.nodes())
            assert is_topological_order(g, order)
            # networkx agrees our graph is a DAG
            assert nx.is_directed_acyclic_graph(ng)


class TestReachability:
    def test_reflexive(self, chain10):
        assert is_reachable_search(chain10, 5, 5)

    def test_forward_only(self, chain10):
        assert is_reachable_search(chain10, 0, 9)
        assert not is_reachable_search(chain10, 9, 0)

    def test_through_cycle(self, two_cycle_graph):
        assert is_reachable_search(two_cycle_graph, 0, 6)
        assert not is_reachable_search(two_cycle_graph, 6, 0)
        assert is_reachable_search(two_cycle_graph, 1, 0)  # inside cycle

    def test_unknown_nodes(self, chain10):
        with pytest.raises(NodeNotFoundError):
            is_reachable_search(chain10, 99, 0)
        with pytest.raises(NodeNotFoundError):
            is_reachable_search(chain10, 0, 99)

    def test_reachable_set(self, diamond):
        assert reachable_set(diamond, "a") == {"a", "b", "c", "d"}
        assert reachable_set(diamond, "b") == {"b", "d"}

    def test_ancestor_set(self, diamond):
        assert ancestor_set(diamond, "d") == {"a", "b", "c", "d"}
        assert ancestor_set(diamond, "a") == {"a"}

    def test_ancestor_set_unknown(self):
        with pytest.raises(NodeNotFoundError):
            ancestor_set(DiGraph(), 1)

    def test_ancestor_set_is_reverse_reachability(self, two_cycle_graph):
        g = two_cycle_graph
        rev = g.reverse()
        for node in g.nodes():
            assert ancestor_set(g, node) == reachable_set(rev, node)
