"""Unit tests for interval labeling of spanning forests."""

from __future__ import annotations

import pytest

from repro.core.intervals import Interval, assign_intervals
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, random_tree
from repro.graph.spanning import spanning_forest
from tests.conftest import PAPER_INTERVALS


class TestInterval:
    def test_membership(self):
        iv = Interval(2, 5)
        assert 2 in iv
        assert 4 in iv
        assert 5 not in iv
        assert 1 not in iv

    def test_nesting(self):
        outer, inner = Interval(0, 10), Interval(3, 6)
        assert outer.contains_interval(inner)
        assert not inner.contains_interval(outer)
        assert outer.contains_interval(outer)

    def test_width(self):
        assert Interval(3, 7).width == 4

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 5)
        with pytest.raises(ValueError):
            Interval(6, 2)

    def test_ordering_and_repr(self):
        assert Interval(1, 3) < Interval(2, 3)
        assert repr(Interval(1, 3)) == "[1,3)"


class TestAssignIntervals:
    def test_paper_figure2_labels(self, paper_graph):
        forest = spanning_forest(paper_graph)
        labeling = assign_intervals(forest)
        for node, (start, end) in PAPER_INTERVALS.items():
            assert labeling.interval[node] == Interval(start, end), node

    def test_single_node(self):
        g = DiGraph(nodes=["x"])
        labeling = assign_intervals(spanning_forest(g))
        assert labeling.interval["x"] == Interval(0, 1)

    def test_chain(self, chain10):
        labeling = assign_intervals(spanning_forest(chain10))
        for i in range(10):
            assert labeling.interval[i] == Interval(i, 10)

    def test_root_spans_everything(self):
        tree = random_tree(60, max_fanout=4, seed=1)
        labeling = assign_intervals(spanning_forest(tree))
        assert labeling.interval[0] == Interval(0, 60)

    def test_forest_uses_disjoint_ranges(self):
        g = DiGraph([(0, 1), (2, 3), (2, 4)])
        labeling = assign_intervals(spanning_forest(g))
        iv0, iv2 = labeling.interval[0], labeling.interval[2]
        assert iv0.end <= iv2.start or iv2.end <= iv0.start

    def test_start_values_are_a_permutation(self):
        dag = random_dag(50, 110, seed=2)
        labeling = assign_intervals(spanning_forest(dag))
        starts = sorted(iv.start for iv in labeling.interval.values())
        assert starts == list(range(50))

    def test_node_at_start_inverse(self):
        dag = random_dag(30, 60, seed=3)
        labeling = assign_intervals(spanning_forest(dag))
        for node, iv in labeling.interval.items():
            assert labeling.node_at_start[iv.start] == node

    def test_width_equals_subtree_size(self):
        tree = random_tree(40, max_fanout=3, seed=4)
        forest = spanning_forest(tree)
        labeling = assign_intervals(forest)

        def subtree_size(node):
            return 1 + sum(subtree_size(c) for c in forest.children[node])

        for node in tree.nodes():
            assert labeling.interval[node].width == subtree_size(node)

    @pytest.mark.parametrize("seed", range(5))
    def test_containment_iff_tree_ancestor(self, seed):
        dag = random_dag(30, 70, seed=seed)
        forest = spanning_forest(dag)
        labeling = assign_intervals(forest)
        nodes = list(dag.nodes())
        for u in nodes:
            for v in nodes:
                assert labeling.is_tree_ancestor(u, v) == \
                    forest.is_tree_ancestor(u, v)

    def test_accessors(self, paper_graph):
        labeling = assign_intervals(spanning_forest(paper_graph))
        assert labeling.start("u") == 9
        assert labeling.end("u") == 11
        assert len(labeling) == 12
