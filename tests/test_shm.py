"""Shared-memory index publication: roundtrip, lifecycle, corruption.

The fleet's correctness rests on :mod:`repro.core.shm` honouring three
contracts: an attached index answers bit-identically to the published
one (the payload *is* the checksummed serialise document), the
publisher alone owns the segment's lifetime (attachers copy-parse and
detach, so even a SIGKILLed attacher leaks nothing), and any damage —
bad magic, truncated payload, flipped bits — surfaces as the typed
:class:`~repro.exceptions.CorruptIndexError` before a single query is
answered from garbage.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from multiprocessing import shared_memory

import pytest

from repro.core.base import build_index
from repro.core.shm import (
    MAGIC,
    SEGMENT_PREFIX,
    PublishedIndex,
    _untrack,
    attach_index,
    list_segments,
    publish_index,
    stale_segments,
    sweep_stale_segments,
)
from repro.exceptions import CorruptIndexError
from repro.graph.generators import gnm_random_digraph, random_dag


def _pairs(graph, count=256, seed=5):
    import random

    rng = random.Random(seed)
    n = graph.num_nodes
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def _open_raw(name: str) -> shared_memory.SharedMemory:
    """A second writable mapping of ``name`` for corruption tests,
    withdrawn from the resource tracker so closing it does not fight
    the publisher over ownership."""
    raw = shared_memory.SharedMemory(name=name)
    _untrack(raw)
    return raw


class TestRoundtrip:
    @pytest.mark.parametrize("scheme", ["dual-i", "dual-ii"])
    def test_attach_answers_bit_identically(self, scheme):
        graph = gnm_random_digraph(60, 140, seed=9)
        index = build_index(graph, scheme=scheme)
        pairs = _pairs(graph)
        with publish_index(index) as published:
            attached = attach_index(published.name)
            assert attached.reachable_many(pairs) == \
                index.reachable_many(pairs)
            stats = attached.stats()
            assert stats.scheme == scheme
            assert stats.num_nodes == graph.num_nodes

    def test_payload_is_the_serialize_document(self):
        import json

        from repro.core.serialize import dumps_index

        index = build_index(random_dag(30, 40, seed=1), scheme="dual-i")
        with publish_index(index) as published:
            raw = _open_raw(published.name)
            try:
                assert bytes(raw.buf[:8]) == MAGIC
                payload = bytes(raw.buf[16:16 + published.payload_bytes])
            finally:
                raw.close()
        assert payload == dumps_index(index)
        assert json.loads(payload)["checksum"]

    def test_attach_holds_no_mapping(self):
        # An attacher must be able to come and go without affecting
        # the segment: attach twice, then the publisher unlinks.
        index = build_index(random_dag(25, 32, seed=2), scheme="dual-i")
        published = publish_index(index)
        try:
            attach_index(published.name)
            attach_index(published.name)
        finally:
            published.unlink()
        with pytest.raises(FileNotFoundError):
            attach_index(published.name)


class TestLifecycle:
    def test_default_name_carries_the_scan_prefix(self):
        index = build_index(random_dag(20, 26, seed=3), scheme="dual-i")
        with publish_index(index) as published:
            assert published.name.startswith(SEGMENT_PREFIX)
            assert published.name in list_segments()
        assert published.name not in list_segments()

    def test_explicit_generation_names(self):
        index = build_index(random_dag(20, 26, seed=3), scheme="dual-i")
        name = f"{SEGMENT_PREFIX}test-{os.getpid()}-g0"
        with publish_index(index, name=name) as published:
            assert published.name == name
            assert attach_index(name).stats().num_nodes == 20

    def test_unlink_is_idempotent(self):
        index = build_index(random_dag(20, 26, seed=3), scheme="dual-i")
        published = publish_index(index)
        published.unlink()
        published.unlink()  # second call must be a no-op, not a raise
        assert published.name not in list_segments()

    def test_sigkilled_attacher_leaks_nothing(self):
        """A worker dying mid-attach must not leak or damage the
        segment — the publisher still owns it, the next attach still
        succeeds, and nothing strays in /dev/shm."""
        index = build_index(gnm_random_digraph(50, 110, seed=4),
                            scheme="dual-ii")
        before = set(list_segments())
        with publish_index(index) as published:
            ctx = multiprocessing.get_context("spawn")
            ready = ctx.Event()
            proc = ctx.Process(target=_attach_and_linger,
                               args=(published.name, ready),
                               daemon=True)
            proc.start()
            assert ready.wait(timeout=60), "attacher never attached"
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=10)
            # The segment survives its attacher's violent death...
            attached = attach_index(published.name)
            assert attached.stats().num_nodes == 50
            assert set(list_segments()) == before | {published.name}
        # ...and the publisher's unlink still wins in the end.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if set(list_segments()) == before:
                break
            time.sleep(0.05)
        assert set(list_segments()) == before


def _attach_and_linger(name: str, ready) -> None:
    """Child-process body for the SIGKILL test (spawn-importable)."""
    attach_index(name)
    ready.set()
    time.sleep(60)  # killed long before this expires


def _publish_and_die(conn) -> None:
    """Child body for the stale-sweep test: publish under the default
    (pid-embedding) name and hard-exit without unlinking — the exact
    leak shape of a SIGKILLed fleet parent."""
    index = build_index(random_dag(20, 26, seed=3), scheme="dual-i")
    published = publish_index(index)
    published.close()
    conn.send(published.name)
    conn.close()
    os._exit(0)


def _dead_pid() -> int:
    """A pid guaranteed dead: a child that already exited."""
    ctx = multiprocessing.get_context("spawn")
    proc = ctx.Process(target=_noop)
    proc.start()
    proc.join(timeout=30)
    return proc.pid


def _noop() -> None:
    pass


class TestStaleSweep:
    def test_dead_owner_segment_is_swept(self):
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_publish_and_die, args=(child_conn,))
        proc.start()
        child_conn.close()
        assert parent_conn.poll(timeout=60), "child never published"
        name = parent_conn.recv()
        proc.join(timeout=30)
        assert name in list_segments(), "child never published"
        assert name in stale_segments()
        removed = sweep_stale_segments()
        assert name in removed
        assert name not in list_segments()

    def test_live_owner_segment_survives_the_sweep(self):
        index = build_index(random_dag(20, 26, seed=3), scheme="dual-i")
        with publish_index(index) as published:
            assert published.name not in stale_segments()
            assert published.name not in sweep_stale_segments()
            assert published.name in list_segments()

    def test_explicit_non_pid_names_are_skipped(self):
        # Explicitly named segments carry no owner pid; the sweep must
        # leave them alone even though the prefix matches.
        index = build_index(random_dag(20, 26, seed=3), scheme="dual-i")
        name = f"{SEGMENT_PREFIX}test-sweep-{os.getpid()}"
        with publish_index(index, name=name):
            assert name not in stale_segments()
            assert name not in sweep_stale_segments()
            assert name in list_segments()

    def test_foreign_segment_without_magic_is_never_unlinked(self):
        # A dead-pid name that does NOT carry our publication magic is
        # somebody else's data (or garbage) — report nothing, touch
        # nothing.
        pid = _dead_pid()
        name = f"{SEGMENT_PREFIX}{pid}-deadbeef"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=64)
        try:
            shm.buf[:8] = b"NOTMAGIC"
            assert name not in stale_segments()
            assert name not in sweep_stale_segments()
            assert name in list_segments()
        finally:
            shm.close()
            shm.unlink()


class TestCorruption:
    @pytest.fixture()
    def published(self):
        index = build_index(gnm_random_digraph(40, 90, seed=6),
                            scheme="dual-i")
        handle = publish_index(index)
        yield handle
        handle.unlink()

    def test_bad_magic(self, published: PublishedIndex):
        raw = _open_raw(published.name)
        try:
            raw.buf[0] ^= 0xFF
        finally:
            raw.close()
        with pytest.raises(CorruptIndexError, match="bad magic"):
            attach_index(published.name)

    def test_length_overruns_segment(self, published: PublishedIndex):
        raw = _open_raw(published.name)
        try:
            raw.buf[8:16] = (2 ** 62).to_bytes(8, "little")
        finally:
            raw.close()
        with pytest.raises(CorruptIndexError, match="truncated"):
            attach_index(published.name)

    def test_flipped_payload_bit_fails_checksum(
            self, published: PublishedIndex):
        raw = _open_raw(published.name)
        try:
            middle = 16 + published.payload_bytes // 2
            raw.buf[middle] ^= 0x20
        finally:
            raw.close()
        with pytest.raises(CorruptIndexError):
            attach_index(published.name)

    def test_segment_smaller_than_header(self):
        name = f"{SEGMENT_PREFIX}tiny-{os.getpid()}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=4)
        try:
            with pytest.raises(CorruptIndexError, match="header"):
                attach_index(name)
        finally:
            shm.close()
            shm.unlink()

    def test_error_messages_name_the_segment(
            self, published: PublishedIndex):
        raw = _open_raw(published.name)
        try:
            raw.buf[0] ^= 0xFF
        finally:
            raw.close()
        with pytest.raises(CorruptIndexError,
                           match=f"shm:{published.name}"):
            attach_index(published.name)
