"""Unit tests for the RDF substrate (triples, ontology, generator)."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError, QueryError
from repro.rdf import (
    SUBCLASS_OF,
    TYPE,
    Ontology,
    TripleStore,
    generate_ontology,
)

ZOO = """
ex:Dog rdfs:subClassOf ex:Mammal .
ex:Cat rdfs:subClassOf ex:Mammal .
ex:Mammal rdfs:subClassOf ex:Animal .
ex:Bird rdfs:subClassOf ex:Animal .
ex:Penguin rdfs:subClassOf ex:Bird .
ex:Penguin rdfs:subClassOf ex:FlightlessThing .
ex:rex rdf:type ex:Dog .
ex:tweety rdf:type ex:Bird .
ex:pingu rdf:type ex:Penguin .
"""


class TestTripleStore:
    def test_add_and_contains(self):
        store = TripleStore()
        store.add("a", "p", "b")
        assert ("a", "p", "b") in store
        assert len(store) == 1

    def test_add_idempotent(self):
        store = TripleStore([("a", "p", "b"), ("a", "p", "b")])
        assert len(store) == 1

    def test_remove(self):
        store = TripleStore([("a", "p", "b")])
        store.remove("a", "p", "b")
        assert len(store) == 0
        with pytest.raises(KeyError):
            store.remove("a", "p", "b")

    def test_indexes(self):
        store = TripleStore([("a", "p", "b"), ("c", "p", "b"),
                             ("a", "q", "d")])
        assert store.predicates() == ["p", "q"]
        assert store.pairs("p") == {("a", "b"), ("c", "b")}
        assert store.subjects("p", "b") == {"a", "c"}
        assert store.objects("a", "p") == {"b"}
        assert store.objects("a", "missing") == set()

    def test_predicate_graph(self):
        store = TripleStore([("a", "p", "b"), ("b", "p", "c")])
        graph = store.predicate_graph("p")
        assert graph.has_edge("a", "b")
        assert graph.num_edges == 2
        assert store.predicate_graph("nope").num_nodes == 0

    def test_text_round_trip(self):
        store = TripleStore.loads(ZOO)
        again = TripleStore.loads(store.dumps())
        assert set(store) == set(again)

    def test_file_round_trip(self, tmp_path):
        store = TripleStore.loads(ZOO)
        path = tmp_path / "zoo.nt"
        store.save(path)
        assert set(TripleStore.load(path)) == set(store)

    def test_comments_and_blanks(self):
        store = TripleStore.loads("# comment\n\na p b .\n")
        assert len(store) == 1

    def test_malformed_line_raises(self):
        with pytest.raises(DatasetError):
            TripleStore.loads("a p b\n")       # missing dot
        with pytest.raises(DatasetError):
            TripleStore.loads("a p .\n")        # missing object

    def test_iteration_sorted(self):
        store = TripleStore([("z", "p", "y"), ("a", "p", "b")])
        assert list(store)[0] == ("a", "p", "b")

    def test_repr(self):
        assert "TripleStore" in repr(TripleStore())


class TestOntology:
    @pytest.fixture
    def zoo(self):
        return Ontology(TripleStore.loads(ZOO))

    def test_subsumption(self, zoo):
        assert zoo.is_subclass_of("ex:Dog", "ex:Animal")
        assert zoo.is_subclass_of("ex:Penguin", "ex:Animal")
        assert zoo.is_subclass_of("ex:Penguin", "ex:FlightlessThing")
        assert not zoo.is_subclass_of("ex:Animal", "ex:Dog")
        assert not zoo.is_subclass_of("ex:Cat", "ex:Bird")

    def test_reflexive(self, zoo):
        assert zoo.is_subclass_of("ex:Dog", "ex:Dog")

    def test_superclasses(self, zoo):
        assert zoo.superclasses("ex:Penguin") == {
            "ex:Penguin", "ex:Bird", "ex:Animal", "ex:FlightlessThing"}
        assert zoo.superclasses("ex:Penguin", strict=True) == {
            "ex:Bird", "ex:Animal", "ex:FlightlessThing"}

    def test_subclasses(self, zoo):
        assert zoo.subclasses("ex:Mammal") == {
            "ex:Mammal", "ex:Dog", "ex:Cat"}
        assert zoo.subclasses("ex:Animal", strict=True) == {
            "ex:Mammal", "ex:Dog", "ex:Cat", "ex:Bird", "ex:Penguin"}

    def test_instances(self, zoo):
        assert zoo.instances_of("ex:Animal") == {
            "ex:rex", "ex:tweety", "ex:pingu"}
        assert zoo.instances_of("ex:Bird") == {"ex:tweety", "ex:pingu"}
        assert zoo.instances_of("ex:FlightlessThing") == {"ex:pingu"}

    def test_types_of(self, zoo):
        assert zoo.types_of("ex:pingu", inferred=False) == {"ex:Penguin"}
        assert "ex:Animal" in zoo.types_of("ex:pingu")

    def test_unknown_class_raises(self, zoo):
        with pytest.raises(QueryError):
            zoo.is_subclass_of("ex:Dog", "ex:Unicorn")
        with pytest.raises(QueryError):
            zoo.superclasses("ex:Unicorn")
        with pytest.raises(QueryError):
            zoo.instances_of("ex:Unicorn")

    def test_equivalence_cycle(self):
        # A subClassOf B and B subClassOf A: an equivalence pair (SCC).
        store = TripleStore([("A", SUBCLASS_OF, "B"),
                             ("B", SUBCLASS_OF, "A"),
                             ("C", SUBCLASS_OF, "A")])
        onto = Ontology(store)
        assert onto.is_subclass_of("A", "B")
        assert onto.is_subclass_of("B", "A")
        assert onto.is_subclass_of("C", "B")

    def test_scheme_selectable(self):
        store = TripleStore.loads(ZOO)
        for scheme in ("dual-ii", "interval", "closure"):
            onto = Ontology(store, scheme=scheme)
            assert onto.is_subclass_of("ex:Dog", "ex:Animal")

    def test_type_only_class_participates(self):
        store = TripleStore([("x", TYPE, "Lonely")])
        onto = Ontology(store)
        assert onto.is_class("Lonely")
        assert onto.instances_of("Lonely") == {"x"}

    def test_repr_and_listings(self, zoo):
        assert "Ontology" in repr(zoo)
        assert "ex:Dog" in zoo.classes
        assert zoo.individuals == ["ex:pingu", "ex:rex", "ex:tweety"]


class TestGenerator:
    def test_counts(self):
        store = generate_ontology(num_classes=50, num_individuals=20,
                                  seed=1)
        onto = Ontology(store)
        assert len(onto.classes) <= 50
        assert len(onto.individuals) == 20

    def test_hierarchy_is_dag(self):
        from repro.graph.traversal import topological_sort
        store = generate_ontology(num_classes=120, seed=2)
        topological_sort(store.predicate_graph(SUBCLASS_OF))

    def test_deterministic(self):
        a = generate_ontology(seed=3)
        b = generate_ontology(seed=3)
        assert set(a) == set(b)

    def test_everything_under_some_root(self):
        store = generate_ontology(num_classes=80, num_roots=2, seed=4)
        onto = Ontology(store)
        roots = {"ex:C0", "ex:C1"}
        for cls in onto.classes:
            assert any(onto.is_subclass_of(cls, root) for root in roots)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_ontology(num_classes=2, num_roots=5)
        with pytest.raises(ValueError):
            generate_ontology(multi_parent_fraction=1.5)

    def test_subsumption_matches_search(self):
        from repro.graph.traversal import is_reachable_search
        store = generate_ontology(num_classes=60, num_individuals=0,
                                  seed=5)
        onto = Ontology(store)
        graph = onto.hierarchy
        for sub in list(graph.nodes())[::5]:
            for sup in list(graph.nodes())[::7]:
                assert onto.is_subclass_of(sub, sup) == \
                    is_reachable_search(graph, sub, sup)
