"""Unit tests for DAG structure analytics."""

from __future__ import annotations

import pytest

from repro.analysis.structure import (
    dag_depth,
    level_histogram,
    nontree_edge_count,
    width_upper_bound,
)
from repro.core.dual_i import DualIIndex
from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    random_dag,
    random_tree,
    single_rooted_dag,
)


class TestDepthAndLevels:
    def test_chain(self, chain10):
        assert dag_depth(chain10) == 10
        assert level_histogram(chain10) == [1] * 10

    def test_diamond(self, diamond):
        assert dag_depth(diamond) == 3
        assert level_histogram(diamond) == [1, 2, 1]

    def test_antichain(self):
        g = DiGraph(nodes=range(7))
        assert dag_depth(g) == 1
        assert level_histogram(g) == [7]

    def test_empty(self):
        assert dag_depth(DiGraph()) == 0
        assert level_histogram(DiGraph()) == []

    def test_longest_path_not_shortest(self):
        # 0->3 directly, but also 0->1->2->3: level(3) must be 3.
        g = DiGraph([(0, 3), (0, 1), (1, 2), (2, 3)])
        assert dag_depth(g) == 4

    def test_cycle_rejected(self, two_cycle_graph):
        with pytest.raises(NotADAGError):
            dag_depth(two_cycle_graph)

    def test_histogram_sums_to_n(self):
        g = random_dag(60, 140, seed=1)
        assert sum(level_histogram(g)) == 60


class TestWidthBound:
    def test_chain_width_one(self, chain10):
        assert width_upper_bound(chain10) == 1

    def test_antichain_width_n(self):
        assert width_upper_bound(DiGraph(nodes=range(9))) == 9

    def test_matches_chain_cover_scheme(self):
        """Identical greedy decomposition when run on the same node
        order: the scheme condenses first (relabeling nodes), so the
        comparison must too."""
        from repro.baselines.chain_cover import ChainCoverIndex
        from repro.graph.condensation import condense
        g = random_dag(80, 180, seed=2)
        assert width_upper_bound(condense(g).dag) == \
            ChainCoverIndex.build(g).num_chains

    def test_upper_bounds_true_width(self):
        """Greedy chains never fewer than the largest antichain found
        on any level."""
        g = single_rooted_dag(100, 140, max_fanout=5, seed=3)
        assert width_upper_bound(g) >= max(level_histogram(g)) / 2


class TestNontreeEdgeCount:
    def test_tree_is_zero(self):
        tree = random_tree(60, seed=4)
        assert nontree_edge_count(tree) == 0

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("use_meg", [True, False])
    def test_meg_prediction_matches_built_index(self, seed, use_meg):
        g = gnm_random_digraph(80, 200, seed=seed)
        predicted = nontree_edge_count(g, use_meg=use_meg)
        actual = DualIIndex.build(g, use_meg=use_meg).t
        if use_meg:
            assert predicted == actual
        else:
            # Without MEG some edges may still be DFS-superfluous, so
            # the formula is only an upper bound.
            assert predicted >= actual

    def test_diamond(self, diamond):
        # Diamond is its own MEG; 4 edges, 4 nodes, 1 root -> t = 1.
        assert nontree_edge_count(diamond) == 1
