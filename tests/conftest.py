"""Shared fixtures: the paper's running example and assorted graphs.

``paper_graph`` reconstructs the example of Figures 1/2/5 exactly.  The
spanning tree (drawn solid in Figure 2) assigns these interval labels
when children are visited in insertion order:

    r=[0,12)
    ├─ a=[1,5)   ├─ c=[2,3)  w=[3,4)  d=[4,5)
    ├─ e=[5,6)
    ├─ v=[6,9)   ├─ f=[7,8)  g=[8,9)
    ├─ u=[9,11)  └─ h=[10,11)
    └─ i=[11,12)

plus the two non-tree edges of the figure: ``u -> v`` (recorded as the
link ``9 -> [6,9)``) and ``f -> a`` (recorded as ``7 -> [1,5)``).  The
paper derives from this the transitive link ``9 -> [1,5)``, the TLC
values ``N(9,3) = 1`` and ``N(11,3) = 0``, and the non-tree labels
``root=⟨0,−,−⟩``, ``u=⟨1,−,−⟩``, ``[8,9)=⟨1,1,1⟩``, ``w=⟨0,0,0⟩`` — all
asserted verbatim in tests/test_paper_example.py.
"""

from __future__ import annotations

import faulthandler
import os
import random

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.traversal import is_reachable_search

# Hang protection for the server/chaos suites without a pytest-timeout
# dependency: with REPRO_TEST_TIMEOUT=<seconds> set (as CI does), any
# single test exceeding the budget dumps every thread's traceback and
# aborts the run instead of wedging the job until the CI-level timeout.
_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or "0")


@pytest.fixture(autouse=_TEST_TIMEOUT > 0)
def _hang_guard():
    faulthandler.dump_traceback_later(_TEST_TIMEOUT, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()

# Node names of the paper example, in interval-label order.
PAPER_NODES = ["r", "a", "c", "w", "d", "e", "v", "f", "g", "u", "h", "i"]

PAPER_TREE_EDGES = [
    ("r", "a"), ("a", "c"), ("a", "w"), ("a", "d"),
    ("r", "e"),
    ("r", "v"), ("v", "f"), ("v", "g"),
    ("r", "u"), ("u", "h"),
    ("r", "i"),
]

PAPER_NONTREE_EDGES = [("u", "v"), ("f", "a")]

#: The interval labels Figure 2 shows, keyed by node name.
PAPER_INTERVALS = {
    "r": (0, 12), "a": (1, 5), "c": (2, 3), "w": (3, 4), "d": (4, 5),
    "e": (5, 6), "v": (6, 9), "f": (7, 8), "g": (8, 9),
    "u": (9, 11), "h": (10, 11), "i": (11, 12),
}


def make_paper_graph() -> DiGraph:
    """The example graph of Figures 1/2/5, edges in figure order."""
    graph = DiGraph()
    # Insertion order matters: the DFS must produce Figure 2's intervals.
    # Tree edges first (so the spanning DFS walks them), grouped per
    # parent in left-to-right figure order.
    edge_order = [
        ("r", "a"), ("a", "c"), ("a", "w"), ("a", "d"),
        ("r", "e"), ("r", "v"), ("v", "f"), ("v", "g"),
        ("r", "u"), ("u", "h"), ("r", "i"),
        ("u", "v"), ("f", "a"),
    ]
    for u, v in edge_order:
        graph.add_edge(u, v)
    return graph


@pytest.fixture
def paper_graph() -> DiGraph:
    """Fresh copy of the paper's example graph."""
    return make_paper_graph()


@pytest.fixture
def diamond() -> DiGraph:
    """The classic diamond DAG: a -> {b, c} -> d."""
    return DiGraph([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


@pytest.fixture
def two_cycle_graph() -> DiGraph:
    """Two 3-cycles bridged by one edge, plus a tail node."""
    return DiGraph([
        (0, 1), (1, 2), (2, 0),        # cycle A
        (3, 4), (4, 5), (5, 3),        # cycle B
        (2, 3),                        # bridge A -> B
        (5, 6),                        # tail
    ])


@pytest.fixture
def chain10() -> DiGraph:
    """A 10-node path 0 -> 1 -> ... -> 9."""
    return DiGraph([(i, i + 1) for i in range(9)])


def brute_force_pairs(graph: DiGraph) -> set[tuple]:
    """All reachable ordered pairs via per-source BFS (test oracle)."""
    pairs = set()
    for u in graph.nodes():
        for v in graph.nodes():
            if is_reachable_search(graph, u, v):
                pairs.add((u, v))
    return pairs


def sample_pairs(graph: DiGraph, count: int, seed: int = 0) -> list[tuple]:
    """Seeded random node pairs for spot-check comparisons."""
    nodes = list(graph.nodes())
    rng = random.Random(seed)
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(count)]


def assert_index_matches_oracle(index, graph: DiGraph,
                                pairs=None) -> None:
    """Assert an index agrees with BFS on the given (or all) pairs."""
    if pairs is None:
        pairs = [(u, v) for u in graph.nodes() for v in graph.nodes()]
    for u, v in pairs:
        expected = is_reachable_search(graph, u, v)
        actual = index.reachable(u, v)
        assert actual == expected, (
            f"{type(index).__name__}: {u!r} -> {v!r}: "
            f"expected {expected}, got {actual}")
