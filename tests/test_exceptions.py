"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DatasetError,
    EdgeNotFoundError,
    GraphError,
    IndexBuildError,
    NodeNotFoundError,
    NotADAGError,
    QueryError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_class", [
        GraphError, NodeNotFoundError, EdgeNotFoundError, NotADAGError,
        IndexBuildError, QueryError, DatasetError])
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, ReproError)

    def test_node_not_found_is_key_error(self):
        assert issubclass(NodeNotFoundError, KeyError)
        exc = NodeNotFoundError("x")
        assert exc.node == "x"
        assert "x" in str(exc)

    def test_edge_not_found_payload(self):
        exc = EdgeNotFoundError(1, 2)
        assert exc.edge == (1, 2)
        assert issubclass(EdgeNotFoundError, KeyError)

    def test_query_error_is_key_error(self):
        assert issubclass(QueryError, KeyError)
        exc = QueryError("v")
        assert exc.node == "v"

    def test_catch_all_with_base(self):
        with pytest.raises(ReproError):
            raise NotADAGError("cycle")
        with pytest.raises(GraphError):
            raise NodeNotFoundError(3)
