"""Differential harness: every scheme versus BFS ground truth.

Seeded graph families × every registered scheme, cross-checking the
scalar ``reachable``, the batched ``reachable_many``, and (where label
arrays exist) the :class:`~repro.core.batch.BatchQuerier` kernel against
the reflexive transitive closure computed independently by
:func:`repro.graph.closure.transitive_closure_bitsets`.

A second axis cross-checks the two construction backends: every seeded
graph is built with ``backend="python"`` and ``backend="fast"`` and the
interval labels, link tables, and query answers must match bit for bit
(the fast backend's contract — see ``docs/API.md``).

On a mismatch the harness shrinks the graph with a greedy edge-removal
minimiser and reports the family, seed, scheme, offending pair, and the
minimal edge list that still reproduces the disagreement — everything
needed to paste into a regression test.
"""

from __future__ import annotations

import pytest

from repro.core.base import available_schemes, build_index
from repro.core.batch import BatchQuerier
from repro.core.pipeline import run_pipeline
from repro.graph.closure import transitive_closure_bitsets
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    random_dag,
    random_tree,
)

SEEDS = range(17)

#: family name -> seeded generator of a small adversarial graph.
FAMILIES = {
    # Sparse DAGs around the paper's m ≈ 1.3 n regime.
    "sparse-dag": lambda seed: random_dag(40, 52, seed=seed),
    # Cyclic digraphs: exercises SCC condensation in every scheme.
    "cyclic-gnm": lambda seed: gnm_random_digraph(36, 58, seed=seed),
    # High-fanout trees: interval-only reachability, zero non-tree edges.
    "fanout9-tree": lambda seed: random_tree(45, max_fanout=9, seed=seed),
}

CASES = [(family, seed) for family in FAMILIES for seed in SEEDS]
assert len(CASES) >= 50  # the harness's advertised coverage floor


def ground_truth(graph: DiGraph):
    """``truth(u, v)`` from an independent BFS/bitset closure."""
    desc, index = transitive_closure_bitsets(graph)

    def truth(u, v):
        return bool((desc[index[u]] >> index[v]) & 1)

    return truth


def _greedy_shrink(graph: DiGraph, disagreement):
    """Greedy edge-removal shrink driven by a disagreement predicate.

    ``disagreement(edges)`` rebuilds a candidate graph from ``edges``
    (plus ``graph``'s isolated nodes) and returns a truthy witness while
    the failure still reproduces, or ``None`` once it vanishes.
    Repeatedly drops any edge whose removal keeps the witness alive;
    returns the shrunken edge list and the final witness.
    """
    edges = list(graph.edges())
    witness = disagreement(edges)
    if witness is None:  # nothing disagrees; nothing to shrink
        return edges, None
    shrinking = True
    while shrinking:
        shrinking = False
        for i in range(len(edges) - 1, -1, -1):
            trial = edges[:i] + edges[i + 1:]
            trial_witness = disagreement(trial)
            if trial_witness is not None:
                edges, witness = trial, trial_witness
                shrinking = True
    return edges, witness


def minimise_failure(graph: DiGraph, scheme: str, options: dict):
    """Shrink a scheme-vs-truth disagreement; the witness is the first
    offending ``(u, v)`` pair."""

    def disagreement(edges):
        candidate = DiGraph(edges)
        for node in graph.nodes():
            candidate.add_node(node)
        truth = ground_truth(candidate)
        index = build_index(candidate, scheme=scheme, **options)
        for u in candidate.nodes():
            for v in candidate.nodes():
                if index.reachable(u, v) != truth(u, v):
                    return (u, v)
        return None

    return _greedy_shrink(graph, disagreement)


@pytest.mark.parametrize("scheme", sorted(available_schemes()))
@pytest.mark.parametrize("family,seed", CASES,
                         ids=[f"{f}-s{s}" for f, s in CASES])
def test_scheme_matches_bfs_ground_truth(family, seed, scheme) -> None:
    graph = FAMILIES[family](seed)
    truth = ground_truth(graph)
    options = {"seed": 7} if scheme == "grail" else {}
    index = build_index(graph, scheme=scheme, **options)
    nodes = list(graph.nodes())
    pairs = [(u, v) for u in nodes for v in nodes]
    expected = [truth(u, v) for u, v in pairs]

    failures = []
    scalar = [index.reachable(u, v) for u, v in pairs]
    if scalar != expected:
        failures.append("reachable")
    many = index.reachable_many(pairs)
    if list(many) != expected:
        failures.append("reachable_many")
    arrays = index.label_arrays()
    if arrays is not None:
        kernel = BatchQuerier(index).query_pairs(pairs).tolist()
        if kernel != expected:
            failures.append("BatchQuerier.query_pairs")

    if failures:
        edges, pair = minimise_failure(graph, scheme, options)
        pytest.fail(
            f"{scheme} disagrees with BFS ground truth via "
            f"{'/'.join(failures)} on family={family} seed={seed}; "
            f"minimised reproducer: pair={pair} edges={edges}")


# ---------------------------------------------------------------------
# backend-equivalence axis: python vs fast construction
# ---------------------------------------------------------------------

def _pipeline_fingerprint(graph: DiGraph, use_meg: bool, backend: str):
    """Everything the fast backend promises to reproduce bit for bit."""
    pipeline = run_pipeline(graph, use_meg=use_meg, backend=backend)
    triples = lambda table: [(link.tail, link.head_start, link.head_end)
                             for link in table.links]
    return {
        "interval labels": {node: (iv.start, iv.end) for node, iv
                            in pipeline.labeling.interval.items()},
        "base link table": triples(pipeline.base_table),
        "transitive link table": triples(pipeline.transitive_table),
    }


def backend_disagreement(graph: DiGraph, use_meg: bool):
    """Name of the first artefact where the backends diverge, or
    ``None`` when ``python`` and ``fast`` agree on ``graph``."""
    reference = _pipeline_fingerprint(graph, use_meg, "python")
    fast = _pipeline_fingerprint(graph, use_meg, "fast")
    for key, expected in reference.items():
        if fast[key] != expected:
            return key
    nodes = list(graph.nodes())
    pairs = [(u, v) for u in nodes for v in nodes]
    for scheme in ("dual-i", "dual-ii"):
        answers = [list(build_index(graph, scheme=scheme, use_meg=use_meg,
                                    backend=backend).reachable_many(pairs))
                   for backend in ("python", "fast")]
        if answers[0] != answers[1]:
            return f"{scheme} query answers"
    return None


def minimise_backend_failure(graph: DiGraph, use_meg: bool):
    """Shrink a backend disagreement; the witness names the artefact."""

    def disagreement(edges):
        candidate = DiGraph(edges)
        for node in graph.nodes():
            candidate.add_node(node)
        return backend_disagreement(candidate, use_meg)

    return _greedy_shrink(graph, disagreement)


@pytest.mark.parametrize("use_meg", [True, False], ids=["meg", "no-meg"])
@pytest.mark.parametrize("family,seed", CASES,
                         ids=[f"{f}-s{s}" for f, s in CASES])
def test_backend_equivalence(family, seed, use_meg) -> None:
    graph = FAMILIES[family](seed)
    witness = backend_disagreement(graph, use_meg)
    if witness is not None:
        edges, shrunk = minimise_backend_failure(graph, use_meg)
        pytest.fail(
            f"fast backend diverges from python on {shrunk or witness} "
            f"(family={family} seed={seed} use_meg={use_meg}); "
            f"minimised reproducer: edges={edges}")


def test_minimiser_shrinks_and_reports(monkeypatch) -> None:
    """The minimiser itself: a deliberately broken scheme shrinks to a
    small reproducer naming an offending pair."""
    graph = random_dag(12, 18, seed=3)

    class _Lying:
        def reachable(self, u, v):
            return False  # denies even u == v reflexivity

    monkeypatch.setitem(globals(), "build_index",
                        lambda g, scheme=None, **kw: _Lying())
    edges, pair = minimise_failure(graph, "dual-i", {})
    assert pair is not None
    assert pair[0] == pair[1]  # reflexive pairs survive any edge removal
    assert edges == []  # ... so the shrink removes every edge
