"""The fleet operations plane: SLOs, the flight recorder, tracing.

Unit-level contracts for the two new ``repro.obs`` subsystems plus the
end-to-end trace-propagation guarantees:

* :mod:`repro.obs.slo` — objective validation, the windowed counter
  ring under a fake clock, multi-window burn-rate alerts firing and
  clearing, lazy default trackers;
* :mod:`repro.obs.flight` — ring wrap, dump round trips, the
  immediate-first-spill contract, archive/scan of prior incarnations;
* :func:`repro.obs.prometheus.merge_expositions` — one header per
  family, conflicting TYPEs refused;
* trace ids over both protocols against a live server: a JSON
  ``trace`` field echoes back verbatim (untraced replies keep their
  exact shape), the binary TRACE extension round-trips ids, and an
  un-negotiated binary connection behaves as before.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.core.base import build_index
from repro.core.service import QueryService
from repro.graph.generators import single_rooted_dag
from repro.obs.flight import (FlightRecorder, archive_current_dumps,
                              load_dump, scan_dumps)
from repro.obs.prometheus import merge_expositions
from repro.obs.slo import SloEngine, SloObjective
from repro.server.client import BinaryReachClient, ReachClient
from repro.server.server import ReachServer, ServerConfig, ServerThread


# ---------------------------------------------------------------------
# SLO objectives and the error-budget engine
# ---------------------------------------------------------------------

class TestSloObjective:
    def test_from_payload_round_trip(self):
        objective = SloObjective.from_payload(
            {"availability": 0.995, "latency_ms": 10})
        assert objective.availability == 0.995
        assert objective.latency_ms == 10.0
        assert objective.as_dict() == {"availability": 0.995,
                                       "latency_ms": 10.0}

    def test_defaults_apply_when_fields_omitted(self):
        objective = SloObjective.from_payload({})
        assert 0.0 < objective.availability < 1.0
        assert objective.latency_ms > 0.0

    @pytest.mark.parametrize("payload", [
        {"availability": 0.0}, {"availability": 1.0},
        {"availability": -3}, {"availability": "high"},
        {"latency_ms": 0}, {"latency_ms": -5},
        {"latency_ms": "fast"}, {"availability": 0.9, "floor": 1},
        "not-a-dict", 7,
    ])
    def test_bad_payloads_rejected(self, payload):
        from repro.exceptions import ReproError
        with pytest.raises(ReproError):
            SloObjective.from_payload(payload)


class FakeClock:
    def __init__(self, start: float = 1_000_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestSloEngine:
    def engine(self, **kwargs):
        clock = FakeClock()
        return SloEngine(clock=clock, **kwargs), clock

    def test_disabled_engine_records_are_noops(self):
        engine, clock = self.engine()
        assert not engine.enabled
        engine.record("default", True, 0.001, clock())
        assert engine.report()["entries"] == {}

    def test_default_objective_tracks_lazily(self):
        engine, clock = self.engine(
            defaults=SloObjective(availability=0.99, latency_ms=50.0))
        assert engine.enabled
        assert engine.report()["entries"] == {}  # no traffic yet
        engine.record("teamA", True, 0.001, clock())
        entry = engine.report()["entries"]["teamA"]
        assert entry["objective"]["availability"] == 0.99
        assert entry["lifetime"] == {"total": 1, "bad": 0}

    def test_slow_requests_spend_budget(self):
        engine, clock = self.engine()
        engine.set_objective("default", SloObjective(
            availability=0.999, latency_ms=25.0))
        engine.record("default", True, 0.010, clock())   # fast: fine
        engine.record("default", True, 0.100, clock())   # slow: bad
        engine.record("default", False, 0.001, clock())  # failed: bad
        entry = engine.report()["entries"]["default"]
        assert entry["lifetime"] == {"total": 3, "bad": 2}

    def test_page_alert_fires_and_clears(self):
        engine, clock = self.engine()
        engine.set_objective("teamA", SloObjective(
            availability=0.999, latency_ms=50.0))
        for _ in range(20):
            engine.record("teamA", False, 0.001, clock())
        entry = engine.report()["entries"]["teamA"]
        # All-bad traffic burns 1000x the 0.1% budget: both page
        # windows (1h and 5m) are far past the 14.4 threshold.
        assert entry["alerts"]["page"] is True
        assert entry["error_budget_remaining"] < 0
        fired = [t for t in engine.transitions
                 if t["severity"] == "page" and t["active"]]
        assert fired and fired[0]["index"] == "teamA"

        # 4000s later the 1h window no longer covers the bad burst;
        # healthy traffic clears the multi-window condition.
        clock.now += 4000.0
        for _ in range(50):
            engine.record("teamA", True, 0.001, clock())
        entry = engine.report()["entries"]["teamA"]
        assert entry["alerts"]["page"] is False
        cleared = [t for t in engine.transitions
                   if t["severity"] == "page" and not t["active"]]
        assert cleared

    def test_burn_rate_windows_age_out(self):
        engine, clock = self.engine()
        tracker = engine.set_objective("t", SloObjective(
            availability=0.9, latency_ms=50.0))
        for _ in range(10):
            tracker.record(False, 0.001, clock())
        assert tracker.window_counts(300, clock()) == (10, 10)
        assert tracker.burn_rate(300, clock()) == pytest.approx(10.0)
        clock.now += 400.0  # past the 5m window
        assert tracker.window_counts(300, clock()) == (0, 0)
        assert tracker.burn_rate(300, clock()) == 0.0
        # The 6h budget window still remembers the burst.
        assert tracker.window_counts(21600, clock()) == (10, 10)

    def test_drop_forgets_the_entry(self):
        engine, clock = self.engine()
        engine.set_objective("gone", SloObjective())
        engine.record("gone", False, 0.001, clock())
        engine.drop("gone")
        assert "gone" not in engine.report()["entries"]

    def test_replacing_objective_keeps_history(self):
        engine, clock = self.engine()
        engine.set_objective("t", SloObjective(availability=0.9))
        engine.record("t", False, 0.001, clock())
        engine.set_objective("t", SloObjective(availability=0.999))
        entry = engine.report()["entries"]["t"]
        assert entry["objective"]["availability"] == 0.999
        assert entry["lifetime"]["total"] == 1


# ---------------------------------------------------------------------
# the flight recorder
# ---------------------------------------------------------------------

class TestFlightRecorder:
    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=4)

    def test_ring_keeps_the_newest_events_in_order(self):
        recorder = FlightRecorder(capacity=8)
        for i in range(20):
            recorder.record("tick", n=i)
        events = recorder.snapshot()
        assert [e["n"] for e in events] == list(range(12, 20))
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert all(e["kind"] == "tick" for e in events)

    def test_dump_round_trips_through_load_dump(self, tmp_path):
        recorder = FlightRecorder(capacity=8, label="w3")
        recorder.record("server_start", port=7421)
        recorder.record("request", verb="query", ms=1.5)
        path = recorder.dump(str(tmp_path), reason="unit")
        assert path is not None and "flight-w3-" in path
        doc = load_dump(path)
        assert doc["header"]["reason"] == "unit"
        assert doc["header"]["label"] == "w3"
        assert [e["kind"] for e in doc["events"]] == \
            ["server_start", "request"]

    def test_dump_without_directory_is_skipped(self):
        recorder = FlightRecorder(capacity=8)
        assert recorder.dump(reason="nowhere") is None

    def test_spiller_writes_current_file_immediately(self, tmp_path):
        """The crash-window contract: events recorded *before*
        ``start_spiller`` are on disk as soon as the thread runs —
        a kill inside the first interval still leaves the boot
        events readable."""
        recorder = FlightRecorder(capacity=8, label="boot")
        recorder.record("server_start", port=1)
        recorder.start_spiller(str(tmp_path), interval=3600.0)
        current = tmp_path / "flight-boot-current.jsonl"
        deadline = 100
        while not current.exists() and deadline:
            deadline -= 1
            import time
            time.sleep(0.01)
        doc = load_dump(str(current))
        assert doc["events"][0]["kind"] == "server_start"
        recorder.stop_spiller(final_dump=False)

    def test_stop_spiller_final_dump_covers_the_tail(self, tmp_path):
        recorder = FlightRecorder(capacity=8, label="tail")
        recorder.start_spiller(str(tmp_path), interval=3600.0)
        recorder.record("late_event")
        recorder.stop_spiller(final_dump=True)
        doc = load_dump(str(tmp_path / "flight-tail-current.jsonl"))
        assert any(e["kind"] == "late_event" for e in doc["events"])

    def test_archive_then_scan_sees_prior_incarnation(self, tmp_path):
        first = FlightRecorder(capacity=8, label="srv")
        first.start_spiller(str(tmp_path), interval=3600.0)
        first.record("server_start", incarnation=1)
        first.stop_spiller(final_dump=True)

        archived = archive_current_dumps(str(tmp_path))
        assert [p.rsplit("/", 1)[-1] for p in archived] == \
            ["flight-srv-prior-0.jsonl"]
        assert not (tmp_path / "flight-srv-current.jsonl").exists()

        second = FlightRecorder(capacity=8, label="srv")
        second.start_spiller(str(tmp_path), interval=3600.0)
        second.record("server_start", incarnation=2)
        second.stop_spiller(final_dump=True)

        dumps = scan_dumps(str(tmp_path))
        names = [d["path"].rsplit("/", 1)[-1] for d in dumps]
        assert names == ["flight-srv-current.jsonl",
                         "flight-srv-prior-0.jsonl"]
        prior = dumps[1]
        assert prior["events"][0]["incarnation"] == 1

    def test_scan_reports_unparseable_dumps(self, tmp_path):
        good = FlightRecorder(capacity=8, label="ok")
        good.record("x")
        good.dump(str(tmp_path), reason="r")
        (tmp_path / "flight-bad-0-r.jsonl").write_text("not json\n")
        (tmp_path / "flight-headless-0-r.jsonl").write_text(
            json.dumps({"kind": "event", "seq": 0}) + "\n")
        dumps = scan_dumps(str(tmp_path))
        errors = {d["path"].rsplit("/", 1)[-1]: d.get("error")
                  for d in dumps}
        assert errors["flight-bad-0-r.jsonl"] == "unparseable"
        assert errors["flight-headless-0-r.jsonl"] == "unparseable"
        assert [e for p, e in errors.items() if p.startswith(
            "flight-ok")] == [None]

    def test_load_dump_rejects_out_of_order_seq(self, tmp_path):
        path = tmp_path / "flight-x-1-r.jsonl"
        lines = [{"kind": "flight_header", "label": "x"},
                 {"seq": 5, "kind": "a"}, {"seq": 3, "kind": "b"}]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        with pytest.raises(ValueError):
            load_dump(str(path))


# ---------------------------------------------------------------------
# merging worker expositions into one fleet scrape
# ---------------------------------------------------------------------

class TestMergeExpositions:
    W0 = ("# HELP reach_requests_total Requests answered.\n"
          "# TYPE reach_requests_total counter\n"
          'reach_requests_total{worker="0"} 5\n')
    W1 = ("# HELP reach_requests_total Requests answered.\n"
          "# TYPE reach_requests_total counter\n"
          'reach_requests_total{worker="1"} 7\n')

    def test_one_type_header_all_samples(self):
        merged = merge_expositions([self.W0, self.W1])
        assert merged.count("# TYPE reach_requests_total") == 1
        assert 'reach_requests_total{worker="0"} 5' in merged
        assert 'reach_requests_total{worker="1"} 7' in merged

    def test_conflicting_types_refused(self):
        gauge = self.W1.replace("counter", "gauge")
        with pytest.raises(ValueError):
            merge_expositions([self.W0, gauge])


# ---------------------------------------------------------------------
# trace propagation over both protocols, against a live server
# ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def graph():
    return single_rooted_dag(80, 160, seed=5)


@pytest.fixture(scope="module")
def server(graph, tmp_path_factory):
    config = ServerConfig(
        slo_defaults={"availability": 0.999, "latency_ms": 50.0},
        flight_dir=tmp_path_factory.mktemp("flightrec"))
    server = ReachServer(QueryService(build_index(graph,
                                                  scheme="dual-i")),
                         scheme="dual-i", config=config)
    handle = ServerThread(server).start()
    yield handle
    handle.stop()


def _raw_call(port: int, request: dict) -> dict:
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=10.0) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        reader = sock.makefile("rb")
        return json.loads(reader.readline())


class TestTracePropagation:
    def test_json_trace_echoes_back_verbatim(self, server):
        reply = _raw_call(server.port, {
            "id": 1, "verb": "query", "u": 0, "v": 1,
            "trace": "t-feedface"})
        assert reply["ok"] is True
        assert reply["trace"] == "t-feedface"

    def test_untraced_json_reply_shape_unchanged(self, server):
        reply = _raw_call(server.port,
                          {"id": 2, "verb": "query", "u": 0, "v": 1})
        assert reply["ok"] is True
        assert "trace" not in reply

    def test_traced_client_remembers_its_id(self, server, graph):
        with ReachClient(port=server.port, trace=True) as client:
            client.query_batch([(0, 1), (1, 0)])
            assert client.last_trace_id

    def test_trace_lands_in_slow_log_and_exemplars(self, server):
        with ReachClient(port=server.port) as client:
            _raw_call(server.port, {
                "id": 3, "verb": "query", "u": 0, "v": 2,
                "trace": "t-slowpoke"})
            stats = client.stats()
            traces = {entry.get("trace")
                      for entry in stats["slow_queries"]}
            assert "t-slowpoke" in traces
            # Exemplars keep the slowest *traced* observation per
            # stage — some traced request's id is pinned to each.
            exemplars = stats["stage_exemplars"]
            assert exemplars
            for block in exemplars.values():
                assert block["trace"] and block["ms"] >= 0.0

    def test_binary_trace_extension_round_trips(self, server, graph):
        with BinaryReachClient(port=server.port,
                               trace=True) as client:
            assert client.query_batch([(0, 1), (1, 0)]) is not None
            assert client.last_trace_id is not None
            assert client.last_reply_trace == client.last_trace_id

    def test_unnegotiated_binary_connection_untouched(self, server):
        with BinaryReachClient(port=server.port) as client:
            client.query_batch([(0, 1)])
            assert client.last_trace_id is None
            assert client.last_reply_trace is None


class TestServerOpsVerbs:
    def test_slo_verb_declares_and_reports(self, server):
        with ReachClient(port=server.port) as client:
            client.query_batch([(0, 1)])
            doc = client.slo(index="default",
                             objective={"availability": 0.95,
                                        "latency_ms": 100})
            entry = doc["entries"]["default"]
            assert entry["objective"]["availability"] == 0.95
            assert entry["lifetime"]["total"] >= 1
            assert set(entry["windows"]) == {"5m", "30m", "1h", "6h"}

    def test_flight_verb_dumps_on_demand(self, server):
        with ReachClient(port=server.port) as client:
            doc = client.flight(dump=True)
            assert len(doc["events"]) > 0
            path = doc["dump_path"]
            dumped = load_dump(path)
            kinds = {e["kind"] for e in dumped["events"]}
            assert "server_start" in kinds


# ---------------------------------------------------------------------
# trace ids across the fleet boundary
# ---------------------------------------------------------------------

@pytest.mark.slow
class TestFleetTracePropagation:
    def test_binary_trace_round_trips_on_every_worker(self, graph,
                                                      tmp_path):
        """SO_REUSEPORT shards connections across workers; a traced
        binary client must get its own id echoed back no matter which
        worker the kernel picked — and the per-worker flight files
        prove both workers booted the plane."""
        from repro.server.router import WorkerFleet

        index = build_index(graph, scheme="dual-i")
        fleet = WorkerFleet(
            index, scheme="dual-i", workers=2,
            server_options=dict(
                max_delay=0.001, request_timeout=10.0,
                drain_timeout=2.0,
                slo_defaults={"availability": 0.999,
                              "latency_ms": 50.0},
                flight_dir=str(tmp_path)),
            flight_dir=str(tmp_path))
        fleet.start()
        try:
            workers_hit = set()
            for _ in range(24):
                with BinaryReachClient(port=fleet.port,
                                       trace=True) as client:
                    client.query_batch([(0, 1), (1, 0)])
                    assert client.last_reply_trace == \
                        client.last_trace_id
                with ReachClient(port=fleet.port) as probe:
                    workers_hit.add(probe.stats()["worker"])
                if len(workers_hit) >= 2:
                    break
            assert len(workers_hit) >= 2, \
                "connection hashing never reached the second worker"
        finally:
            fleet.stop()
        current = sorted(p.name for p in tmp_path.iterdir()
                         if p.name.endswith("-current.jsonl"))
        # One file per worker plus the fleet parent's own recorder.
        assert len(current) >= 3, current
        for name in current:
            doc = load_dump(str(tmp_path / name))
            kinds = {e["kind"] for e in doc["events"]}
            assert kinds & {"server_start", "fleet_start"}, name


# ---------------------------------------------------------------------
# the crash-restart soak's flight acceptance gate
# ---------------------------------------------------------------------

class TestCrashRestartFlightGate:
    def report(self, **overrides):
        from repro.testing.chaos import CrashRestartReport

        report = CrashRestartReport(
            seed=1, cycles=1, workers=1, recovery_timeout=30.0,
            checkpoint_interval=8)
        report.restarts = [{"cycle": 0, "mutation": "create",
                            "acked": True, "outcome": "post",
                            "recovery_seconds": 0.5,
                            "durable_recovery_seconds": 0.1}]
        report.server_metric_seen = True
        report.hygiene = {"orphan_artifacts": [],
                          "model_matches": True,
                          "journal_records": 0}
        for key, value in overrides.items():
            setattr(report, key, value)
        return report

    def test_synthetic_report_without_flight_data_passes(self):
        assert self.report().ok()

    def test_unparseable_dump_fails_the_soak(self):
        report = self.report(flight={
            "dumps": 2, "events": 5,
            "unparseable": ["flight-srv-prior-0.jsonl"],
            "prior_dumps": 1, "covering": True, "tail": []})
        assert not report.ok()

    def test_uncovered_pre_kill_window_fails_the_soak(self):
        report = self.report(flight={
            "dumps": 2, "events": 5, "unparseable": [],
            "prior_dumps": 1, "covering": False, "tail": []})
        assert not report.ok()

    def test_covered_window_passes_and_survives_round_trip(self):
        flight = {"dumps": 6, "events": 11, "unparseable": [],
                  "prior_dumps": 5, "covering": True,
                  "tail": [{"seq": 0, "kind": "server_start"}]}
        report = self.report(flight=flight)
        assert report.ok()
        assert report.as_dict()["flight"] == flight
        text = "\n".join(report.summary_lines())
        assert "pre-kill window covered: True" in text
