"""Unit tests for Dual-I / Dual-II index serialisation."""

from __future__ import annotations

import json

import pytest

from repro.core.base import build_index
from repro.core.dual_i import DualIIndex
from repro.core.dual_ii import DualIIIndex
from repro.core.serialize import load_dual_index, save_dual_index
from repro.exceptions import (
    CorruptIndexError,
    IndexBuildError,
    QueryError,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from tests.conftest import make_paper_graph, sample_pairs


class TestRoundTrip:
    def test_paper_graph(self, tmp_path):
        graph = make_paper_graph()
        index = DualIIndex.build(graph, use_meg=False)
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        loaded = load_dual_index(path)
        for u in graph.nodes():
            for v in graph.nodes():
                assert loaded.reachable(u, v) == index.reachable(u, v)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, tmp_path, seed):
        graph = gnm_random_digraph(50, 130, seed=seed)
        index = DualIIndex.build(graph)
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        loaded = load_dual_index(path)
        for u, v in sample_pairs(graph, 400, seed):
            assert loaded.reachable(u, v) == index.reachable(u, v)

    def test_stats_survive(self, tmp_path):
        graph = gnm_random_digraph(40, 100, seed=1)
        index = DualIIndex.build(graph)
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        loaded = load_dual_index(path)
        original = index.stats()
        restored = loaded.stats()
        assert restored.num_nodes == original.num_nodes
        assert restored.t == original.t
        assert restored.transitive_links == original.transitive_links
        assert restored.space_bytes == original.space_bytes

    def test_int_and_str_nodes_distinct(self, tmp_path):
        graph = DiGraph([(1, "1"), ("1", 2)])
        index = DualIIndex.build(graph)
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        loaded = load_dual_index(path)
        assert loaded.reachable(1, 2)
        assert loaded.reachable("1", 2)
        assert not loaded.reachable(2, "1")

    def test_unknown_vertex_still_raises(self, tmp_path):
        index = DualIIndex.build(DiGraph([("a", "b")]))
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        with pytest.raises(QueryError):
            load_dual_index(path).reachable("a", "ghost")


class TestValidation:
    def test_non_scalar_nodes_rejected(self, tmp_path):
        graph = DiGraph([((1, 2), (3, 4))])  # tuple nodes
        index = DualIIndex.build(graph)
        with pytest.raises(IndexBuildError):
            save_dual_index(index, tmp_path / "index.json")

    def test_unsupported_scheme_rejected(self, tmp_path, diamond):
        index = build_index(diamond, scheme="2hop")
        with pytest.raises(IndexBuildError):
            save_dual_index(index, tmp_path / "index.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(IndexBuildError):
            load_dual_index(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(IndexBuildError):
            load_dual_index(path)

    def test_wrong_version(self, tmp_path, diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(IndexBuildError):
            load_dual_index(path)

    def test_truncated_document(self, tmp_path, diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        document = json.loads(path.read_text())
        del document["starts"]
        path.write_text(json.dumps(document))
        with pytest.raises(IndexBuildError):
            load_dual_index(path)

    def test_pipeline_unavailable_after_load(self, tmp_path, diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        loaded = load_dual_index(path)
        with pytest.raises(IndexBuildError):
            loaded.pipeline


class TestDualII:
    def test_paper_graph_round_trip(self, tmp_path):
        graph = make_paper_graph()
        index = DualIIIndex.build(graph, use_meg=False)
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        loaded = load_dual_index(path)
        for u in graph.nodes():
            for v in graph.nodes():
                assert loaded.reachable(u, v) == index.reachable(u, v)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, tmp_path, seed):
        graph = gnm_random_digraph(50, 130, seed=seed)
        index = DualIIIndex.build(graph)
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        loaded = load_dual_index(path)
        pairs = sample_pairs(graph, 400, seed)
        assert loaded.reachable_many(pairs) == \
            index.reachable_many(pairs)

    def test_scheme_tag_dispatches(self, tmp_path, diamond):
        """The scheme tag in the header picks the loader, and the two
        schemes loaded from disk agree on every answer."""
        paths = {}
        for scheme, cls in (("dual-i", DualIIndex),
                            ("dual-ii", DualIIIndex)):
            path = tmp_path / f"{scheme}.json"
            save_dual_index(cls.build(diamond), path)
            document = json.loads(path.read_text())
            assert document["scheme"] == scheme
            assert document["format"] == f"repro-{scheme}"
            paths[scheme] = path
        dual_i = load_dual_index(paths["dual-i"])
        dual_ii = load_dual_index(paths["dual-ii"])
        assert dual_i.stats().scheme == "dual-i"
        assert dual_ii.stats().scheme == "dual-ii"
        pairs = [(u, v) for u in diamond.nodes() for v in diamond.nodes()]
        assert dual_i.reachable_many(pairs) == \
            dual_ii.reachable_many(pairs)

    def test_stats_survive(self, tmp_path):
        graph = gnm_random_digraph(40, 100, seed=1)
        index = DualIIIndex.build(graph)
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        restored = load_dual_index(path).stats()
        original = index.stats()
        assert restored.num_nodes == original.num_nodes
        assert restored.t == original.t
        assert restored.space_bytes == original.space_bytes

    def test_pipeline_unavailable_after_load(self, tmp_path, diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIIndex.build(diamond), path)
        with pytest.raises(IndexBuildError):
            load_dual_index(path).pipeline


class TestBackendSerialization:
    @pytest.mark.parametrize("backend", ["packed", "bitpacked"])
    def test_packed_backends_round_trip(self, tmp_path, backend):
        graph = gnm_random_digraph(40, 110, seed=9)
        index = DualIIndex.build(graph, matrix_backend=backend)
        path = tmp_path / "index.json"
        save_dual_index(index, path)
        loaded = load_dual_index(path)
        for u, v in sample_pairs(graph, 300, 9):
            assert loaded.reachable(u, v) == index.reachable(u, v)


class TestCrashSafety:
    """Atomic writes, checksums, and kill-during-save survival."""

    def test_no_tmp_sibling_after_clean_save(self, tmp_path, diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_save_leaves_no_partial_file(self, tmp_path, diamond):
        # A non-serialisable node raises mid-document-build; an
        # unsupported index raises before any file I/O — neither may
        # leave a file (partial or otherwise) behind.
        index = build_index(diamond, scheme="2hop")
        path = tmp_path / "index.json"
        with pytest.raises(IndexBuildError):
            save_dual_index(index, path)
        graph = DiGraph([(("tuple", "node"), "b")])
        with pytest.raises(IndexBuildError):
            save_dual_index(DualIIndex.build(graph), path)
        assert list(tmp_path.iterdir()) == []

    def test_failed_save_keeps_previous_index(self, tmp_path, diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        before = path.read_bytes()
        graph = DiGraph([(("tuple", "node"), "b")])
        with pytest.raises(IndexBuildError):
            save_dual_index(DualIIndex.build(graph), path)
        assert path.read_bytes() == before
        assert load_dual_index(path).reachable("a", "d")

    def test_document_carries_verified_checksum(self, tmp_path, diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        document = json.loads(path.read_text())
        assert document["checksum"].startswith("sha256:")
        load_dual_index(path)  # verifies

    def test_bit_flip_raises_corrupt_index_error(self, tmp_path, diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        blob = bytearray(path.read_bytes())
        # Flip a digit inside the payload (not the checksum field).
        position = bytes(blob).index(b'"starts"') + len('"starts": [')
        blob[position] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptIndexError):
            load_dual_index(path)

    def test_checksumless_legacy_document_still_loads(self, tmp_path,
                                                      diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        document = json.loads(path.read_text())
        del document["checksum"]
        path.write_text(json.dumps(document))
        assert load_dual_index(path).reachable("a", "d")

    def test_corrupt_error_is_an_index_build_error(self):
        # The server's reload path catches ReproError; corruption must
        # flow through the same degraded-mode handling.
        assert issubclass(CorruptIndexError, IndexBuildError)

    def test_garbage_bytes_raise_corrupt_index_error(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_bytes(b"\xff\xfe not an index")
        with pytest.raises(CorruptIndexError):
            load_dual_index(path)

    def test_structurally_broken_document_is_corrupt(self, tmp_path,
                                                     diamond):
        path = tmp_path / "index.json"
        save_dual_index(DualIIndex.build(diamond), path)
        document = json.loads(path.read_text())
        document["tlc"]["matrix"] = "not-a-matrix"
        del document["checksum"]
        path.write_text(json.dumps(document))
        with pytest.raises(CorruptIndexError):
            load_dual_index(path)

    def test_kill_during_save_keeps_index_loadable(self, tmp_path):
        from repro.testing.faults import run_kill_during_save

        nodes, edges, seed = 60, 120, 3
        graph = gnm_random_digraph(nodes, edges, seed=seed)
        index = DualIIndex.build(graph)
        path = tmp_path / "killed.json"
        save_dual_index(index, path)
        summary = run_kill_during_save(path, nodes=nodes, edges=edges,
                                       seed=seed, kills=3,
                                       delay_range=(0.0, 0.05))
        assert summary["kills"] == 3
        # The target file is never a truncated hybrid: it loads and
        # answers exactly like the in-process index.
        loaded = load_dual_index(path)
        for u, v in sample_pairs(graph, 200, seed):
            assert loaded.reachable(u, v) == index.reachable(u, v)
