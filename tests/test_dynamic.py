"""Unit tests for the incremental DynamicDualIndex."""

from __future__ import annotations

import random

import pytest

from repro.core.dynamic import DynamicDualIndex
from repro.exceptions import EdgeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag, single_rooted_dag
from repro.graph.traversal import is_reachable_search


class TestBasics:
    def test_starts_empty(self):
        index = DynamicDualIndex()
        assert index.graph.num_nodes == 0

    def test_wraps_copy(self, diamond):
        index = DynamicDualIndex(diamond)
        diamond.remove_edge("a", "b")
        assert index.graph.has_edge("a", "b")

    def test_simple_insertions(self):
        index = DynamicDualIndex()
        index.add_node("a")
        index.add_node("b")
        index.add_node("c")
        assert not index.reachable("a", "c")
        index.add_edge("a", "b")
        index.add_edge("b", "c")
        assert index.reachable("a", "c")
        assert not index.reachable("c", "a")

    def test_duplicate_edge_noop(self, diamond):
        index = DynamicDualIndex(diamond)
        index.reachable("a", "a")
        before = (index.full_rebuilds, index.incremental_updates)
        index.add_edge("a", "b")
        index.reachable("a", "a")
        assert (index.full_rebuilds, index.incremental_updates) == before

    def test_repr(self, diamond):
        assert "DynamicDualIndex" in repr(DynamicDualIndex(diamond))

    def test_contains(self, diamond):
        index = DynamicDualIndex(diamond)
        assert "a" in index
        assert "z" not in index


class TestIncrementalPath:
    def test_cross_edge_is_incremental(self):
        g = single_rooted_dag(80, 95, max_fanout=4, seed=1)
        index = DynamicDualIndex(g, use_meg=False)
        index.reachable(0, 1)  # force initial build
        assert index.full_rebuilds == 1
        # Find a pair with no path either way: adding u -> v is then a
        # pure non-tree insertion.
        nodes = list(g.nodes())
        rng = random.Random(2)
        while True:
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u != v and not index.reachable(u, v) \
                    and not index.reachable(v, u):
                break
        index.add_edge(u, v)
        assert index.reachable(u, v)
        assert index.full_rebuilds == 1          # no full rebuild
        assert index.incremental_updates == 1

    def test_cycle_closing_edge_forces_rebuild(self):
        index = DynamicDualIndex(DiGraph([("a", "b"), ("b", "c")]))
        index.reachable("a", "c")
        rebuilds_before = index.full_rebuilds
        index.add_edge("c", "a")  # closes a cycle
        assert index.reachable("c", "b")
        assert index.reachable("b", "a")
        assert index.full_rebuilds > rebuilds_before

    def test_new_node_forces_rebuild(self, diamond):
        index = DynamicDualIndex(diamond)
        index.reachable("a", "d")
        rebuilds_before = index.full_rebuilds
        index.add_edge("d", "zzz")  # new endpoint
        assert index.reachable("a", "zzz")
        assert index.full_rebuilds > rebuilds_before

    def test_remove_edge(self, diamond):
        index = DynamicDualIndex(diamond)
        assert index.reachable("a", "d")
        index.remove_edge("a", "b")
        index.remove_edge("a", "c")
        assert not index.reachable("a", "d")

    def test_remove_missing_edge_raises(self, diamond):
        with pytest.raises(EdgeNotFoundError):
            DynamicDualIndex(diamond).remove_edge("d", "a")

    def test_failed_remove_leaves_state_clean(self, diamond):
        """A rejected removal must not dirty the index: no rebuild is
        scheduled and every answer is unchanged."""
        index = DynamicDualIndex(diamond)
        assert index.reachable("a", "d")  # force the initial build
        counters = (index.full_rebuilds, index.incremental_updates)
        for u, v in (("a", "d"), ("d", "a"), ("a", "ghost")):
            with pytest.raises(EdgeNotFoundError):
                index.remove_edge(u, v)
        assert index.graph.num_edges == diamond.num_edges
        assert index.reachable("a", "d")
        assert not index.reachable("d", "a")
        # No rebuild or incremental update was burned on the failures.
        assert (index.full_rebuilds,
                index.incremental_updates) == counters

    def test_add_edge_with_both_endpoints_new(self, diamond):
        index = DynamicDualIndex(diamond)
        assert index.reachable("a", "d")
        index.add_edge("x", "y")  # neither endpoint exists yet
        assert index.reachable("x", "y")
        assert not index.reachable("y", "x")
        # The new component is disconnected from the old one...
        assert not index.reachable("a", "x")
        assert not index.reachable("x", "d")
        # ... and the old answers survive the rebuild.
        assert index.reachable("a", "d")

    def test_stats_reflect_incremental_t(self):
        g = single_rooted_dag(60, 59 + 5, max_fanout=4, seed=3)
        index = DynamicDualIndex(g, use_meg=False)
        t_before = index.stats().t
        nodes = list(g.nodes())
        rng = random.Random(4)
        added = 0
        while added < 3:
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u != v and not index.reachable(u, v) \
                    and not index.reachable(v, u):
                index.add_edge(u, v)
                added += 1
        assert index.stats().t >= t_before + 3


class TestEquivalenceWithSearch:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_mutation_sequence(self, seed):
        """Interleave inserts (some cyclic), deletions, and queries; the
        dynamic index must always agree with BFS on the live graph."""
        rng = random.Random(seed)
        base = random_dag(25, 40, seed=seed)
        index = DynamicDualIndex(base)
        shadow = base.copy()
        nodes = list(range(30))  # includes 5 ids not yet in the graph
        for step in range(60):
            action = rng.random()
            u, v = rng.choice(nodes), rng.choice(nodes)
            if action < 0.5 and u != v:
                index.add_node(u)
                index.add_node(v)
                shadow.add_node(u)
                shadow.add_node(v)
                index.add_edge(u, v)
                shadow.add_edge(u, v)
            elif action < 0.6:
                edges = list(shadow.edges())
                if edges:
                    eu, ev = rng.choice(edges)
                    index.remove_edge(eu, ev)
                    shadow.remove_edge(eu, ev)
            else:
                if u in shadow and v in shadow:
                    assert index.reachable(u, v) == \
                        is_reachable_search(shadow, u, v), (seed, step)
        # Final full sweep.
        for u in shadow.nodes():
            for v in shadow.nodes():
                assert index.reachable(u, v) == \
                    is_reachable_search(shadow, u, v)

    @pytest.mark.parametrize("seed", range(3))
    def test_fuzz_with_failed_removals_interleaved(self, seed):
        """Like the mutation fuzz, but deliberately attempting removals
        of missing edges throughout: each failure must raise and leave
        the index agreeing with BFS on the untouched shadow graph."""
        rng = random.Random(1000 + seed)
        base = random_dag(20, 28, seed=seed)
        index = DynamicDualIndex(base)
        shadow = base.copy()
        nodes = list(range(24))
        failed_removes = 0
        for step in range(50):
            action = rng.random()
            u, v = rng.choice(nodes), rng.choice(nodes)
            if action < 0.35 and u != v:
                index.add_node(u)
                index.add_node(v)
                shadow.add_node(u)
                shadow.add_node(v)
                index.add_edge(u, v)
                shadow.add_edge(u, v)
            elif action < 0.6:
                if shadow.has_edge(u, v):
                    index.remove_edge(u, v)
                    shadow.remove_edge(u, v)
                else:
                    with pytest.raises(EdgeNotFoundError):
                        index.remove_edge(u, v)
                    failed_removes += 1
            else:
                if u in shadow and v in shadow:
                    assert index.reachable(u, v) == \
                        is_reachable_search(shadow, u, v), (seed, step)
        assert failed_removes > 0  # the adversarial path was exercised
        for u in shadow.nodes():
            for v in shadow.nodes():
                assert index.reachable(u, v) == \
                    is_reachable_search(shadow, u, v)
