"""Differential harness for the buffer-reusing fast kernel.

Every seeded graph of the ``tests/test_differential.py`` families is
evaluated all-pairs through :class:`~repro.core.fastkernel.FastKernel`
and must match both the independent BFS/bitset closure and the
allocating ``query_pairs`` path bit for bit — for Dual-I and Dual-II
arrays, through ``query_ids`` and through split binary frames, and
(when the optional C extension is built) for the compiled path against
the pure-python one.  The remaining tests pin the kernel's contract:
reused answer buffers, clean ``QueryError`` on wire node ids outside
the index, the dense-lookup requirement, and the ``REPRO_FAST_KERNEL``
runtime gate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import build_index
from repro.core.fastkernel import FastKernel, compiled_available
from repro.core.service import QueryService
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.server import binproto
from tests.test_differential import CASES, FAMILIES, SEEDS, ground_truth

SCHEMES = ("dual-i", "dual-ii")

needs_extension = pytest.mark.skipif(
    not compiled_available(),
    reason="repro.core._fastkernel is not built (REPRO_FAST_KERNEL=1 "
           "python setup.py build_ext --inplace)")


def _kernel_for(graph, scheme, **kwargs):
    index = build_index(graph, scheme=scheme)
    arrays = index.label_arrays()
    assert arrays is not None, scheme
    kernel = FastKernel(arrays, **kwargs)
    return index, arrays, kernel


def _all_pairs(graph):
    nodes = sorted(graph.nodes())
    pairs = [(u, v) for u in nodes for v in nodes]
    src = np.array([u for u, _ in pairs], dtype=np.int64)
    dst = np.array([v for _, v in pairs], dtype=np.int64)
    return pairs, src, dst


# ---------------------------------------------------------------------
# differential: 51 seeded graphs x schemes, all pairs
# ---------------------------------------------------------------------

class TestDifferential:
    @pytest.mark.parametrize("family,seed", CASES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_kernel_matches_truth_and_query_pairs(self, family, seed,
                                                  scheme):
        graph = FAMILIES[family](seed)
        index, arrays, kernel = _kernel_for(graph, scheme,
                                            use_compiled=False)
        truth = ground_truth(graph)
        pairs, src, dst = _all_pairs(graph)
        got = kernel.query_ids(src, dst).tolist()
        assert got == [truth(u, v) for u, v in pairs], (family, seed)
        assert got == arrays.query_pairs(pairs).tolist(), (family, seed)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_run_frames_split_frames_match_query_pairs(self, family,
                                                       scheme):
        """A multi-frame flush (including an empty frame) answers each
        frame exactly as the allocating batch path."""
        graph = FAMILIES[family](1)
        index, arrays, kernel = _kernel_for(graph, scheme,
                                            use_compiled=False)
        pairs, _, _ = _all_pairs(graph)
        cut = len(pairs) // 3
        frames = [binproto.encode_pairs(pairs[:cut]), b"",
                  binproto.encode_pairs(pairs[cut:])]
        bitmaps, total, positives = kernel.run_frames(frames)
        assert total == len(pairs)
        expected = arrays.query_pairs(pairs).tolist()
        assert positives == sum(expected)
        assert bitmaps[1] == b""
        got = (binproto.unpack_bitmap(cut, bitmaps[0])
               + binproto.unpack_bitmap(len(pairs) - cut, bitmaps[2]))
        assert got == expected

    @needs_extension
    @pytest.mark.parametrize("family,seed", CASES)
    def test_compiled_matches_pure_python(self, family, seed):
        graph = FAMILIES[family](seed)
        index, arrays, pure = _kernel_for(graph, "dual-i",
                                          use_compiled=False)
        compiled = FastKernel(arrays, use_compiled=True)
        assert compiled.mode == "compiled" and pure.mode == "inplace"
        truth = ground_truth(graph)
        pairs, src, dst = _all_pairs(graph)
        want = [truth(u, v) for u, v in pairs]
        assert pure.query_ids(src, dst).tolist() == want, (family, seed)
        assert compiled.query_ids(src, dst).tolist() == want, \
            (family, seed)

    @needs_extension
    def test_compiled_run_frames_bitmaps_identical(self):
        graph = FAMILIES["cyclic-gnm"](3)
        index, arrays, pure = _kernel_for(graph, "dual-i",
                                          use_compiled=False)
        compiled = FastKernel(arrays, use_compiled=True)
        pairs, _, _ = _all_pairs(graph)
        payload = binproto.encode_pairs(pairs)
        assert pure.run_frames([payload]) \
            == compiled.run_frames([payload])


# ---------------------------------------------------------------------
# the Dual-II rank path
# ---------------------------------------------------------------------

class TestRankMode:
    def test_dual_ii_arrays_select_the_rank_path(self):
        graph = FAMILIES["cyclic-gnm"](2)
        index, arrays, kernel = _kernel_for(graph, "dual-ii",
                                            use_compiled=False)
        assert kernel.mode == "rank"
        assert index.t > 0  # the search tree actually gets probed
        pairs, src, dst = _all_pairs(graph)
        assert kernel.query_ids(src, dst).tolist() \
            == arrays.query_pairs(pairs).tolist()

    def test_rank_path_with_empty_search_tree(self):
        """A pure tree has t == 0 — the rank path must answer from
        interval containment alone without touching the (empty)
        search tree."""
        graph = FAMILIES["fanout9-tree"](1)
        index, arrays, kernel = _kernel_for(graph, "dual-ii",
                                            use_compiled=False)
        assert index.t == 0
        assert kernel.mode == "rank"
        truth = ground_truth(graph)
        pairs, src, dst = _all_pairs(graph)
        assert kernel.query_ids(src, dst).tolist() \
            == [truth(u, v) for u, v in pairs]

    def test_rank_scratch_is_reused_across_calls(self):
        graph = FAMILIES["sparse-dag"](3)
        _, arrays, kernel = _kernel_for(graph, "dual-ii",
                                        use_compiled=False)
        probes = kernel._scratch["p"]
        pairs, src, dst = _all_pairs(graph)
        want = arrays.query_pairs(pairs).tolist()
        for _ in range(3):
            assert kernel.query_ids(src, dst).tolist() == want
        assert kernel._scratch["p"] is probes


# ---------------------------------------------------------------------
# contract
# ---------------------------------------------------------------------

class TestContract:
    def test_answer_buffer_is_reused(self):
        graph = FAMILIES["sparse-dag"](0)
        _, _, kernel = _kernel_for(graph, "dual-i", use_compiled=False)
        pairs, src, dst = _all_pairs(graph)
        first = kernel.query_ids(src, dst)
        stable = first.copy()
        second = kernel.query_ids(dst, src)
        assert first is second or first.base is second.base
        # The view from the first call now shows the second call's
        # answers — callers must copy, exactly as documented.
        assert np.array_equal(first, second)
        assert np.array_equal(stable,
                              kernel.query_ids(src, dst).copy()) is True

    @pytest.mark.parametrize("bad", [10**6, -1])
    def test_out_of_range_ids_raise_query_error(self, bad):
        graph = FAMILIES["sparse-dag"](0)
        _, _, kernel = _kernel_for(graph, "dual-i", use_compiled=False)
        nodes = sorted(graph.nodes())
        with pytest.raises(QueryError):
            kernel.query_ids(np.array([nodes[0], bad]),
                             np.array([nodes[1], nodes[1]]))
        # The kernel survives the error and keeps answering.
        truth = ground_truth(graph)
        got = kernel.query_ids(np.array([nodes[0]]),
                               np.array([nodes[1]]))
        assert got.tolist() == [truth(nodes[0], nodes[1])]

    def test_zero_queries(self):
        graph = FAMILIES["sparse-dag"](0)
        _, _, kernel = _kernel_for(graph, "dual-i", use_compiled=False)
        assert kernel.query_ids(np.zeros(0, dtype=np.int64),
                                np.zeros(0, dtype=np.int64)).size == 0
        assert kernel.run_frames([b""]) == ([b""], 0, 0)

    def test_from_arrays_rejects_sparse_node_space(self):
        graph = DiGraph()
        graph.add_edge("a", "b")  # non-integer node names
        index = build_index(graph, scheme="dual-i")
        arrays = index.label_arrays()
        assert arrays is not None
        assert arrays.dense_lookup() is None
        assert FastKernel.from_arrays(arrays) is None
        with pytest.raises(ValueError):
            FastKernel(arrays)

    def test_env_gate_disables_compiled_auto_selection(self,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_FAST_KERNEL", "0")
        graph = FAMILIES["sparse-dag"](0)
        _, _, kernel = _kernel_for(graph, "dual-i")
        assert kernel.mode == "inplace"

    def test_use_compiled_requires_extension_or_dual_i(self):
        graph = FAMILIES["sparse-dag"](0)
        index = build_index(graph, scheme="dual-ii")
        arrays = index.label_arrays()
        with pytest.raises(RuntimeError):
            FastKernel(arrays, use_compiled=True)

    def test_capacity_growth_preserves_answers(self):
        graph = FAMILIES["fanout9-tree"](2)
        index, arrays, kernel = _kernel_for(graph, "dual-i",
                                            capacity=4,
                                            use_compiled=False)
        pairs, src, dst = _all_pairs(graph)  # far beyond capacity 4
        assert kernel.query_ids(src, dst).tolist() \
            == arrays.query_pairs(pairs).tolist()


# ---------------------------------------------------------------------
# the service-level frame path
# ---------------------------------------------------------------------

class TestServiceFrames:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_query_frames_matches_query_batch(self, scheme):
        graph = FAMILIES["cyclic-gnm"](5)
        with QueryService(build_index(graph, scheme=scheme)) as service:
            pairs, _, _ = _all_pairs(graph)
            expected = service.query_batch(pairs)
            bitmaps = service.query_frames(
                [binproto.encode_pairs(pairs)])
            got = binproto.unpack_bitmap(len(pairs), bitmaps[0])
            assert got == expected
            assert service.fast_kernel() is not None

    def test_query_frames_fallback_without_kernel(self):
        """A service whose arrays cannot host a kernel (sparse node
        space) still answers frames — via the decode fallback —
        so a binary connection never depends on kernel support."""
        graph = DiGraph()
        graph.add_edge(7, 9)
        graph.add_edge(9, 1_000_003)  # forces a sparse node space
        with QueryService(build_index(graph, scheme="dual-i")) as service:
            assert service.fast_kernel() is None
            pairs = [(7, 9), (9, 7), (7, 1_000_003)]
            bitmaps = service.query_frames(
                [binproto.encode_pairs(pairs)])
            assert binproto.unpack_bitmap(3, bitmaps[0]) \
                == service.query_batch(pairs)
