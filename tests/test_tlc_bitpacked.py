"""Unit tests for the bit-packed TLC matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dual_i import DualIIndex
from repro.core.intervals import assign_intervals
from repro.core.linktable import build_link_table, transitive_link_table
from repro.core.tlc_bitpacked import BitPackedTLCMatrix, bitpack_tlc_matrix
from repro.core.tlc_matrix import TLCMatrix, build_tlc_matrix
from repro.graph.generators import gnm_random_digraph, random_dag
from repro.graph.spanning import spanning_forest
from tests.conftest import make_paper_graph, sample_pairs


def _tlc_for(graph) -> TLCMatrix:
    forest = spanning_forest(graph)
    labeling = assign_intervals(forest)
    closed = transitive_link_table(
        build_link_table(forest.nontree_edges, labeling))
    return build_tlc_matrix(closed)


class TestBitPacking:
    def test_paper_graph_cells_match(self):
        tlc = _tlc_for(make_paper_graph())
        packed = bitpack_tlc_matrix(tlc)
        rows, cols = tlc.matrix.shape
        for ix in range(rows):
            for iy in range(cols):
                assert packed.value(ix, iy) == tlc.value(ix, iy)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags_cells_match(self, seed):
        graph = random_dag(50, 140, seed=seed)
        tlc = _tlc_for(graph)
        packed = bitpack_tlc_matrix(tlc)
        rows, cols = tlc.matrix.shape
        for ix in range(rows):
            for iy in range(cols):
                assert packed.value(ix, iy) == tlc.value(ix, iy), (ix, iy)

    def test_bits_per_cell_minimal(self):
        tlc = _tlc_for(make_paper_graph())
        packed = bitpack_tlc_matrix(tlc)
        max_value = int(tlc.matrix.max())
        assert packed.bits_per_cell == max(1, max_value.bit_length())

    def test_zero_matrix_uses_one_bit(self):
        tlc = TLCMatrix((), (), np.zeros((1, 1), dtype=np.int64))
        packed = bitpack_tlc_matrix(tlc)
        assert packed.bits_per_cell == 1
        assert packed.value(0, 0) == 0

    def test_space_reduction(self):
        graph = random_dag(80, 220, seed=1)
        tlc = _tlc_for(graph)
        packed = bitpack_tlc_matrix(tlc)
        assert packed.nbytes < tlc.nbytes
        # At least a 4x reduction whenever counts fit in 16 bits.
        if packed.bits_per_cell <= 16:
            assert packed.nbytes * 4 <= tlc.nbytes + 8

    def test_to_rows_round_trip(self):
        tlc = _tlc_for(make_paper_graph())
        packed = bitpack_tlc_matrix(tlc)
        assert packed.to_rows() == tlc.matrix.tolist()

    def test_sentinels_and_repr(self):
        tlc = _tlc_for(make_paper_graph())
        packed = bitpack_tlc_matrix(tlc)
        assert packed.sentinel_x == len(tlc.xs)
        assert packed.sentinel_y == len(tlc.ys)
        assert "BitPackedTLCMatrix" in repr(packed)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            BitPackedTLCMatrix((), (), 0, 1, np.zeros(1, dtype=np.uint64))
        with pytest.raises(ValueError):
            BitPackedTLCMatrix((), (), 65, 1,
                               np.zeros(1, dtype=np.uint64))


class TestDualIBackends:
    @pytest.mark.parametrize("backend", ["array", "packed", "bitpacked"])
    @pytest.mark.parametrize("seed", range(3))
    def test_identical_answers(self, backend, seed):
        graph = gnm_random_digraph(50, 130, seed=seed)
        reference = DualIIndex.build(graph)
        candidate = DualIIndex.build(graph, matrix_backend=backend)
        for u, v in sample_pairs(graph, 400, seed):
            assert candidate.reachable(u, v) == reference.reachable(u, v)

    def test_backend_space_ordering(self):
        graph = gnm_random_digraph(120, 320, seed=4)
        sizes = {}
        for backend in ("array", "packed", "bitpacked"):
            index = DualIIndex.build(graph, matrix_backend=backend)
            sizes[backend] = index.stats().space_bytes["tlc_matrix"]
        assert sizes["bitpacked"] <= sizes["packed"] <= sizes["array"]

    def test_invalid_backend_rejected(self, diamond):
        with pytest.raises(ValueError):
            DualIIndex.build(diamond, matrix_backend="holographic")

    def test_compact_maps_to_packed(self, diamond):
        compact = DualIIndex.build(diamond, compact=True)
        packed = DualIIndex.build(diamond, matrix_backend="packed")
        assert compact.stats().space_bytes == packed.stats().space_bytes
