"""Documentation consistency: the docs only reference things that exist.

Docs drift is the classic failure mode of a repo this size; these tests
parse the markdown files and verify that every ``repro.*`` dotted path
imports, every scheme name in the README table is registered, every
experiment named in DESIGN.md's index exists, and every example/bench
file the docs point at is on disk.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.core.base import available_schemes

ROOT = Path(__file__).resolve().parent.parent

_MODULE_RE = re.compile(r"`(repro(?:\.[a-z_]+)+)")


def _doc_text(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


ALL_DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md",
            "docs/THEORY.md", "docs/API.md", "docs/TUTORIAL.md",
            "docs/DATASETS.md", "docs/RUNBOOK.md"]


@pytest.mark.parametrize("doc", ALL_DOCS)
def test_referenced_modules_import(doc):
    text = _doc_text(doc)
    for dotted in sorted(set(_MODULE_RE.findall(text))):
        # Trim attribute tails: import the longest importable prefix and
        # resolve the rest as attributes.
        parts = dotted.split(".")
        module = None
        for cut in range(len(parts), 0, -1):
            try:
                module = importlib.import_module(".".join(parts[:cut]))
                break
            except ModuleNotFoundError:
                continue
        assert module is not None, f"{doc}: {dotted} does not import"
        obj = module
        for attribute in parts[cut:]:
            assert hasattr(obj, attribute), \
                f"{doc}: {dotted} missing attribute {attribute!r}"
            obj = getattr(obj, attribute)


def test_readme_scheme_table_matches_registry():
    text = _doc_text("README.md")
    documented = set(re.findall(r"^\| `([a-z0-9-]+)`", text,
                                flags=re.MULTILINE))
    assert documented == set(available_schemes())


def test_design_experiment_index_names_real_targets():
    text = _doc_text("DESIGN.md")
    for bench in re.findall(r"benchmarks/(bench_\w+\.py)", text):
        assert (ROOT / "benchmarks" / bench).exists(), bench
    for experiment in re.findall(r"repro\.bench run (\w+)", text):
        assert experiment in EXPERIMENTS, experiment


def test_readme_examples_exist():
    text = _doc_text("README.md")
    for example in re.findall(r"examples/(\w+\.py)", text):
        assert (ROOT / "examples" / example).exists(), example


def test_experiments_md_references_result_files():
    text = _doc_text("EXPERIMENTS.md")
    for result in re.findall(r"results/(\w+\.(?:md|csv))", text):
        assert (ROOT / "results" / result).exists(), result


def test_theory_names_real_test_files():
    text = _doc_text("docs/THEORY.md")
    for test_file in set(re.findall(r"test_\w+\.py", text)):
        assert (ROOT / "tests" / test_file).exists(), test_file


def test_every_registered_metric_family_is_documented(tmp_path):
    """The metrics-docs lint: every ``reach_*`` family a fully-enabled
    server actually exposes must appear in docs/OBSERVABILITY.md.

    A family that ships without docs is invisible to operators; this
    test makes adding the doc row part of adding the metric.  The
    server runs with the SLO engine and flight recorder on so the
    operations-plane families are registered too.
    """
    from repro.core.base import build_index
    from repro.graph.generators import single_rooted_dag
    from repro.core.service import QueryService
    from repro.obs.prometheus import parse_exposition
    from repro.server.client import ReachClient
    from repro.server.server import (ReachServer, ServerConfig,
                                     ServerThread)

    graph = single_rooted_dag(60, 120, seed=11)
    index = build_index(graph, scheme="dual-i")
    config = ServerConfig(slo_defaults={"availability": 0.999,
                                        "latency_ms": 50.0},
                          flight_dir=tmp_path / "flightrec")
    server = ReachServer(QueryService(index), scheme="dual-i",
                         config=config)
    handle = ServerThread(server).start()
    try:
        with ReachClient(port=handle.port) as client:
            nodes = sorted(graph.nodes())
            client.query_batch([(nodes[0], nodes[-1]),
                                (nodes[-1], nodes[0])])
            exposition = client.metrics()["exposition"]
    finally:
        handle.stop()

    families = {name for name in parse_exposition(exposition)
                if name.startswith("reach_")}
    assert families, "server exposed no reach_* families"
    documented = set(re.findall(r"`(reach_[a-z0-9_]+)`",
                                _doc_text("docs/OBSERVABILITY.md")))
    undocumented = sorted(families - documented)
    assert not undocumented, (
        "families missing from docs/OBSERVABILITY.md: "
        f"{undocumented}")
