"""Documentation consistency: the docs only reference things that exist.

Docs drift is the classic failure mode of a repo this size; these tests
parse the markdown files and verify that every ``repro.*`` dotted path
imports, every scheme name in the README table is registered, every
experiment named in DESIGN.md's index exists, and every example/bench
file the docs point at is on disk.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.core.base import available_schemes

ROOT = Path(__file__).resolve().parent.parent

_MODULE_RE = re.compile(r"`(repro(?:\.[a-z_]+)+)")


def _doc_text(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


ALL_DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md",
            "docs/THEORY.md", "docs/API.md", "docs/TUTORIAL.md",
            "docs/DATASETS.md", "docs/RUNBOOK.md"]


@pytest.mark.parametrize("doc", ALL_DOCS)
def test_referenced_modules_import(doc):
    text = _doc_text(doc)
    for dotted in sorted(set(_MODULE_RE.findall(text))):
        # Trim attribute tails: import the longest importable prefix and
        # resolve the rest as attributes.
        parts = dotted.split(".")
        module = None
        for cut in range(len(parts), 0, -1):
            try:
                module = importlib.import_module(".".join(parts[:cut]))
                break
            except ModuleNotFoundError:
                continue
        assert module is not None, f"{doc}: {dotted} does not import"
        obj = module
        for attribute in parts[cut:]:
            assert hasattr(obj, attribute), \
                f"{doc}: {dotted} missing attribute {attribute!r}"
            obj = getattr(obj, attribute)


def test_readme_scheme_table_matches_registry():
    text = _doc_text("README.md")
    documented = set(re.findall(r"^\| `([a-z0-9-]+)`", text,
                                flags=re.MULTILINE))
    assert documented == set(available_schemes())


def test_design_experiment_index_names_real_targets():
    text = _doc_text("DESIGN.md")
    for bench in re.findall(r"benchmarks/(bench_\w+\.py)", text):
        assert (ROOT / "benchmarks" / bench).exists(), bench
    for experiment in re.findall(r"repro\.bench run (\w+)", text):
        assert experiment in EXPERIMENTS, experiment


def test_readme_examples_exist():
    text = _doc_text("README.md")
    for example in re.findall(r"examples/(\w+\.py)", text):
        assert (ROOT / "examples" / example).exists(), example


def test_experiments_md_references_result_files():
    text = _doc_text("EXPERIMENTS.md")
    for result in re.findall(r"results/(\w+\.(?:md|csv))", text):
        assert (ROOT / "results" / result).exists(), result


def test_theory_names_real_test_files():
    text = _doc_text("docs/THEORY.md")
    for test_file in set(re.findall(r"test_\w+\.py", text)):
        assert (ROOT / "tests" / test_file).exists(), test_file
