"""Unit tests for benchmark workload generation."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    mixed_query_pairs,
    positive_query_pairs,
    random_query_pairs,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import single_rooted_dag
from repro.graph.traversal import is_reachable_search


class TestRandomQueryPairs:
    def test_count_and_membership(self, chain10):
        pairs = random_query_pairs(chain10, 200, seed=1)
        assert len(pairs) == 200
        nodes = set(chain10.nodes())
        assert all(u in nodes and v in nodes for u, v in pairs)

    def test_deterministic(self, chain10):
        assert random_query_pairs(chain10, 50, seed=2) == \
            random_query_pairs(chain10, 50, seed=2)

    def test_seed_matters(self, chain10):
        assert random_query_pairs(chain10, 50, seed=1) != \
            random_query_pairs(chain10, 50, seed=2)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            random_query_pairs(DiGraph(), 10)


class TestPositiveQueryPairs:
    def test_all_pairs_reachable(self):
        g = single_rooted_dag(100, 150, seed=3)
        pairs = positive_query_pairs(g, 150, seed=4)
        assert len(pairs) == 150
        for u, v in pairs:
            assert is_reachable_search(g, u, v)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            positive_query_pairs(DiGraph(), 10)


class TestMixedQueryPairs:
    def test_count(self, chain10):
        pairs = mixed_query_pairs(chain10, 100, seed=5)
        assert len(pairs) == 100

    def test_fraction_bounds(self, chain10):
        with pytest.raises(ValueError):
            mixed_query_pairs(chain10, 10, positive_fraction=1.5)
        with pytest.raises(ValueError):
            mixed_query_pairs(chain10, 10, positive_fraction=-0.1)

    def test_all_positive_fraction(self):
        g = single_rooted_dag(60, 90, seed=6)
        pairs = mixed_query_pairs(g, 80, seed=7, positive_fraction=1.0)
        for u, v in pairs:
            assert is_reachable_search(g, u, v)

    def test_positive_fraction_raises_hit_rate(self):
        g = single_rooted_dag(200, 300, seed=8)
        random_hits = sum(
            is_reachable_search(g, u, v)
            for u, v in mixed_query_pairs(g, 300, seed=9,
                                          positive_fraction=0.0))
        mixed_hits = sum(
            is_reachable_search(g, u, v)
            for u, v in mixed_query_pairs(g, 300, seed=9,
                                          positive_fraction=0.8))
        assert mixed_hits > random_hits
