"""Unit tests for the Dual-II index (and the dual-rt variant)."""

from __future__ import annotations

import pytest

from repro.core.dual_i import DualIIndex
from repro.core.dual_ii import DualIIIndex
from repro.core.tlc_rangetree import DualRangeTreeIndex
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph, single_rooted_dag
from tests.conftest import assert_index_matches_oracle, sample_pairs

VARIANTS = [DualIIIndex, DualRangeTreeIndex]


class TestBuild:
    @pytest.mark.parametrize("builder", VARIANTS)
    def test_unknown_option_rejected(self, builder, diamond):
        with pytest.raises(TypeError):
            builder.build(diamond, bogus=True)

    @pytest.mark.parametrize("builder", VARIANTS)
    def test_empty_graph(self, builder):
        index = builder.build(DiGraph())
        with pytest.raises(QueryError):
            index.reachable(0, 0)

    @pytest.mark.parametrize("builder", VARIANTS)
    def test_repr(self, builder, diamond):
        assert builder.__name__ in repr(builder.build(diamond))


class TestQueries:
    @pytest.mark.parametrize("builder", VARIANTS)
    def test_diamond(self, builder, diamond):
        assert_index_matches_oracle(builder.build(diamond), diamond)

    @pytest.mark.parametrize("builder", VARIANTS)
    def test_unknown_vertex_raises(self, builder, diamond):
        index = builder.build(diamond)
        with pytest.raises(QueryError):
            index.reachable("ghost", "a")

    @pytest.mark.parametrize("builder", VARIANTS)
    @pytest.mark.parametrize("seed", range(5))
    def test_random_cyclic_graphs(self, builder, seed):
        g = gnm_random_digraph(45, 110, seed=seed)
        index = builder.build(g)
        assert_index_matches_oracle(index, g, sample_pairs(g, 350, seed))

    @pytest.mark.parametrize("builder", VARIANTS)
    def test_cycles(self, builder, two_cycle_graph):
        index = builder.build(two_cycle_graph)
        assert index.reachable(1, 0)
        assert index.reachable(0, 6)
        assert not index.reachable(6, 3)


class TestAgreementWithDualI:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_dual_variants_agree(self, seed):
        g = single_rooted_dag(150, 220, max_fanout=5, seed=seed)
        dual_i = DualIIndex.build(g)
        dual_ii = DualIIIndex.build(g)
        dual_rt = DualRangeTreeIndex.build(g)
        for u, v in sample_pairs(g, 600, seed):
            a = dual_i.reachable(u, v)
            assert dual_ii.reachable(u, v) == a
            assert dual_rt.reachable(u, v) == a


class TestStats:
    def test_dual_ii_has_no_nontree_labels(self, two_cycle_graph):
        stats = DualIIIndex.build(two_cycle_graph).stats()
        assert stats.scheme == "dual-ii"
        assert set(stats.space_bytes) == {"interval_labels",
                                          "tlc_search_tree"}

    def test_dual_rt_space_components(self, two_cycle_graph):
        stats = DualRangeTreeIndex.build(two_cycle_graph).stats()
        assert stats.scheme == "dual-rt"
        assert set(stats.space_bytes) == {"interval_labels", "range_tree"}

    def test_dual_ii_usually_smaller_than_dual_i(self):
        """The paper's space claim on a moderately dense DAG."""
        g = single_rooted_dag(400, 560, max_fanout=5, seed=3)
        size_i = DualIIndex.build(g).stats().total_space_bytes
        size_ii = DualIIIndex.build(g).stats().total_space_bytes
        assert size_ii < size_i

    def test_search_tree_accessible(self, two_cycle_graph):
        index = DualIIIndex.build(two_cycle_graph)
        assert index.search_tree.num_rows >= 0
        assert index.t == index.pipeline.t
