"""Run the doctest examples embedded in public docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.core.base
import repro.core.intervals
import repro.graph.digraph

MODULES_WITH_DOCTESTS = [
    repro.graph.digraph,
    repro.core.base,
]


@pytest.mark.parametrize("module", MODULES_WITH_DOCTESTS,
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: doctests failed"
    assert results.attempted > 0, \
        f"{module.__name__}: expected at least one doctest"


def test_selftest_cli(capsys):
    """The selftest command's happy path (small sample)."""
    from repro.cli import main as cli_main

    assert cli_main(["selftest", "--sample", "60"]) == 0
    out = capsys.readouterr().out
    assert "every scheme agrees" in out
    # Each of the 4 families appears with every scheme.
    assert out.count("ok (") >= 4 * 8
