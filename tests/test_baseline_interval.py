"""Unit tests for the Agrawal interval-set baseline."""

from __future__ import annotations

import pytest

from repro.baselines.interval_index import IntervalSetIndex, merge_interval_lists
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph, random_tree, single_rooted_dag
from tests.conftest import assert_index_matches_oracle, sample_pairs


class TestMergeIntervalLists:
    def test_empty(self):
        assert merge_interval_lists([]) == []
        assert merge_interval_lists([[], []]) == []

    def test_disjoint_preserved(self):
        assert merge_interval_lists([[(1, 2)], [(5, 6)]]) == [(1, 2), (5, 6)]

    def test_overlap_coalesces(self):
        assert merge_interval_lists([[(1, 4)], [(3, 7)]]) == [(1, 7)]

    def test_adjacent_coalesces(self):
        assert merge_interval_lists([[(1, 3)], [(4, 6)]]) == [(1, 6)]

    def test_contained_absorbed(self):
        assert merge_interval_lists([[(1, 9)], [(3, 4)]]) == [(1, 9)]

    def test_unsorted_input(self):
        result = merge_interval_lists([[(8, 9), (0, 1)], [(3, 4)]])
        assert result == [(0, 1), (3, 4), (8, 9)]

    def test_gap_of_two_not_coalesced(self):
        assert merge_interval_lists([[(1, 2)], [(4, 5)]]) == [(1, 2), (4, 5)]


class TestIntervalSetIndex:
    @pytest.mark.parametrize("probe", ["bisect", "linear", "subset"])
    def test_diamond(self, probe, diamond):
        index = IntervalSetIndex.build(diamond, probe=probe)
        assert_index_matches_oracle(index, diamond)

    def test_invalid_probe_rejected(self, diamond):
        with pytest.raises(ValueError):
            IntervalSetIndex.build(diamond, probe="psychic")

    def test_unknown_option_rejected(self, diamond):
        with pytest.raises(TypeError):
            IntervalSetIndex.build(diamond, bogus=1)

    def test_tree_has_single_interval_labels(self):
        tree = random_tree(50, seed=1)
        index = IntervalSetIndex.build(tree)
        assert index.average_label_length == 1.0

    @pytest.mark.parametrize("probe", ["bisect", "linear", "subset"])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, probe, seed):
        g = gnm_random_digraph(45, 110, seed=seed)
        index = IntervalSetIndex.build(g, probe=probe)
        assert_index_matches_oracle(index, g, sample_pairs(g, 300, seed))

    @pytest.mark.parametrize("seed", range(3))
    def test_probe_modes_agree(self, seed):
        g = single_rooted_dag(120, 180, seed=seed)
        linear = IntervalSetIndex.build(g, probe="linear")
        bisected = IntervalSetIndex.build(g, probe="bisect")
        subset = IntervalSetIndex.build(g, probe="subset")
        for u, v in sample_pairs(g, 500, seed):
            expected = bisected.reachable(u, v)
            assert linear.reachable(u, v) == expected
            assert subset.reachable(u, v) == expected

    def test_use_meg_preserves_answers(self, two_cycle_graph):
        plain = IntervalSetIndex.build(two_cycle_graph, use_meg=False)
        reduced = IntervalSetIndex.build(two_cycle_graph, use_meg=True)
        for u in two_cycle_graph.nodes():
            for v in two_cycle_graph.nodes():
                assert plain.reachable(u, v) == reduced.reachable(u, v)
        assert reduced.stats().meg_edges is not None

    def test_unknown_vertex_raises(self, diamond):
        index = IntervalSetIndex.build(diamond)
        with pytest.raises(QueryError):
            index.reachable("ghost", "a")

    def test_cyclic(self, two_cycle_graph):
        index = IntervalSetIndex.build(two_cycle_graph)
        assert index.reachable(4, 3)
        assert not index.reachable(6, 1)

    def test_stats(self, diamond):
        stats = IntervalSetIndex.build(diamond).stats()
        assert stats.scheme == "interval"
        assert "interval_sets" in stats.space_bytes
        assert "propagate" in stats.phase_seconds

    def test_empty_graph(self):
        index = IntervalSetIndex.build(DiGraph())
        assert index.average_label_length == 0.0

    def test_repr(self, diamond):
        assert "IntervalSetIndex" in repr(IntervalSetIndex.build(diamond))

    def test_labels_grow_with_nontree_edges(self):
        sparse = IntervalSetIndex.build(
            single_rooted_dag(200, 210, seed=7))
        dense = IntervalSetIndex.build(
            single_rooted_dag(200, 380, seed=7))
        assert dense.average_label_length > sparse.average_label_length
