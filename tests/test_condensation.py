"""Unit tests for SCC condensation."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from repro.graph.traversal import (
    is_reachable_search,
    is_topological_order,
    topological_sort,
)


class TestCondense:
    def test_dag_is_isomorphic_relabeling(self, diamond):
        cond = condense(diamond)
        assert cond.num_components == 4
        assert cond.is_trivial()
        assert cond.dag.num_edges == diamond.num_edges

    def test_cycles_collapse(self, two_cycle_graph):
        cond = condense(two_cycle_graph)
        assert cond.num_components == 3
        assert cond.dag.num_edges == 2  # bridge + tail edge

    def test_result_is_acyclic(self, two_cycle_graph):
        cond = condense(two_cycle_graph)
        topological_sort(cond.dag)  # must not raise

    def test_self_loops_removed(self):
        g = DiGraph([(1, 1), (1, 2)])
        cond = condense(g)
        assert cond.num_components == 2
        assert not cond.dag.self_loops()
        assert cond.dag.num_edges == 1

    def test_parallel_intercomponent_edges_collapse(self):
        # Two edges from cycle {0,1} to cycle {2,3} become one DAG edge.
        g = DiGraph([(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3)])
        cond = condense(g)
        assert cond.num_components == 2
        assert cond.dag.num_edges == 1

    def test_component_ids_topologically_ordered(self, two_cycle_graph):
        cond = condense(two_cycle_graph)
        ids = list(cond.dag.nodes())
        assert is_topological_order(cond.dag, sorted(ids))

    def test_members_partition_nodes(self, two_cycle_graph):
        cond = condense(two_cycle_graph)
        flat = [n for comp in cond.members for n in comp]
        assert sorted(flat) == sorted(two_cycle_graph.nodes())

    def test_representative_round_trip(self, two_cycle_graph):
        cond = condense(two_cycle_graph)
        for cid, comp in enumerate(cond.members):
            for node in comp:
                assert cond.representative(node) == cid

    def test_representative_unknown_raises(self, diamond):
        cond = condense(diamond)
        with pytest.raises(NodeNotFoundError):
            cond.representative("ghost")

    def test_empty_graph(self):
        cond = condense(DiGraph())
        assert cond.num_components == 0
        assert cond.dag.num_nodes == 0


class TestReachabilityPreservation:
    @pytest.mark.parametrize("seed", range(6))
    def test_condensation_preserves_reachability(self, seed):
        g = gnm_random_digraph(35, 90, seed=seed)
        cond = condense(g)
        nodes = list(g.nodes())
        for u in nodes[::3]:
            for v in nodes[::4]:
                original = is_reachable_search(g, u, v)
                cu, cv = cond.component_of[u], cond.component_of[v]
                condensed = (cu == cv) or is_reachable_search(
                    cond.dag, cu, cv)
                assert original == condensed
