"""Unit tests for Tarjan SCC, cross-checked against networkx."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from repro.graph.scc import (
    is_strongly_connected,
    scc_index,
    strongly_connected_components,
)


def _as_frozensets(components):
    return {frozenset(c) for c in components}


class TestBasics:
    def test_empty(self):
        assert strongly_connected_components(DiGraph()) == []

    def test_single_node(self):
        g = DiGraph(nodes=[1])
        assert _as_frozensets(strongly_connected_components(g)) == {
            frozenset([1])}

    def test_self_loop_is_singleton_component(self):
        g = DiGraph([(1, 1)])
        assert _as_frozensets(strongly_connected_components(g)) == {
            frozenset([1])}

    def test_dag_all_singletons(self, diamond):
        comps = strongly_connected_components(diamond)
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 4

    def test_simple_cycle(self):
        g = DiGraph([(0, 1), (1, 2), (2, 0)])
        assert _as_frozensets(strongly_connected_components(g)) == {
            frozenset([0, 1, 2])}

    def test_two_cycles(self, two_cycle_graph):
        comps = _as_frozensets(
            strongly_connected_components(two_cycle_graph))
        assert frozenset([0, 1, 2]) in comps
        assert frozenset([3, 4, 5]) in comps
        assert frozenset([6]) in comps

    def test_reverse_topological_emission_order(self, two_cycle_graph):
        comps = strongly_connected_components(two_cycle_graph)
        position = {frozenset(c): i for i, c in enumerate(comps)}
        # The tail {6} is reachable from both cycles, so it must be
        # emitted before them (reverse topological order).
        assert position[frozenset([6])] < position[frozenset([3, 4, 5])]
        assert position[frozenset([3, 4, 5])] < position[frozenset([0, 1, 2])]

    def test_deep_cycle_iterative(self):
        n = 30_000
        g = DiGraph([(i, i + 1) for i in range(n)] + [(n, 0)])
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert len(comps[0]) == n + 1


class TestSCCIndex:
    def test_members_share_index(self, two_cycle_graph):
        index = scc_index(two_cycle_graph)
        assert index[0] == index[1] == index[2]
        assert index[3] == index[4] == index[5]
        assert index[0] != index[3]
        assert index[6] not in (index[0], index[3])

    def test_covers_all_nodes(self, paper_graph):
        index = scc_index(paper_graph)
        assert set(index) == set(paper_graph.nodes())


class TestIsStronglyConnected:
    def test_empty_false(self):
        assert not is_strongly_connected(DiGraph())

    def test_single_node_true(self):
        assert is_strongly_connected(DiGraph(nodes=[1]))

    def test_cycle_true(self):
        assert is_strongly_connected(DiGraph([(0, 1), (1, 0)]))

    def test_dag_false(self, diamond):
        assert not is_strongly_connected(diamond)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_match(self, seed):
        nx = pytest.importorskip("networkx")
        g = gnm_random_digraph(60, 150, seed=seed)
        ours = _as_frozensets(strongly_connected_components(g))
        ng = nx.DiGraph(list(g.edges()))
        ng.add_nodes_from(g.nodes())
        theirs = {frozenset(c)
                  for c in nx.strongly_connected_components(ng)}
        assert ours == theirs
