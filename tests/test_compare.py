"""Unit tests for the result-comparison (regression) tool."""

from __future__ import annotations

import pytest

from repro.bench.compare import (
    CellDelta,
    compare_result_files,
    compare_rows,
)
from repro.exceptions import DatasetError


BASE = [{"n": "100", "dual-i_query_ms": "10.0", "note": "x",
         "space_bytes": "400"},
        {"n": "200", "dual-i_query_ms": "20.0", "note": "y",
         "space_bytes": "800"}]


class TestCompareRows:
    def test_identical_runs_ok(self):
        report = compare_rows(BASE, BASE)
        assert report.ok
        assert len(report.deltas) == 4
        assert "OK" in report.summary()

    def test_regression_flagged(self):
        current = [dict(row) for row in BASE]
        current[1]["dual-i_query_ms"] = "60.0"  # 3x slower
        report = compare_rows(BASE, current)
        assert not report.ok
        assert len(report.regressions) == 1
        delta = report.regressions[0]
        assert delta.row == 1
        assert delta.column == "dual-i_query_ms"
        assert delta.ratio == pytest.approx(3.0)
        assert "REGRESSIONS" in report.summary()

    def test_improvement_flagged_separately(self):
        current = [dict(row) for row in BASE]
        current[0]["dual-i_query_ms"] = "4.0"
        report = compare_rows(BASE, current)
        assert report.ok
        assert len(report.improvements) == 1

    def test_within_tolerance_ignored(self):
        current = [dict(row) for row in BASE]
        current[0]["dual-i_query_ms"] = "11.0"  # +10% < 25% tolerance
        report = compare_rows(BASE, current)
        assert report.ok
        assert not report.improvements

    def test_custom_tolerance(self):
        current = [dict(row) for row in BASE]
        current[0]["dual-i_query_ms"] = "11.0"
        report = compare_rows(BASE, current, tolerance=1.05)
        assert not report.ok

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_rows(BASE, BASE, tolerance=1.0)

    def test_non_measurement_columns_ignored(self):
        current = [dict(row) for row in BASE]
        current[0]["n"] = "9999"
        current[0]["note"] = "changed"
        report = compare_rows(BASE, current)
        assert report.ok
        assert all(d.column != "n" for d in report.deltas)

    def test_mismatched_row_counts_use_overlap(self):
        report = compare_rows(BASE, BASE[:1])
        assert report.num_rows == 1

    def test_unparsable_cells_skipped(self):
        current = [dict(row) for row in BASE]
        current[0]["dual-i_query_ms"] = "n/a"
        report = compare_rows(BASE, current)
        assert len(report.deltas) == 3

    def test_zero_baseline_ratio(self):
        delta = CellDelta(row=0, column="x_ms", baseline=0.0, current=5.0)
        assert delta.ratio == float("inf")
        delta = CellDelta(row=0, column="x_ms", baseline=0.0, current=0.0)
        assert delta.ratio == 1.0

    def test_empty_inputs(self):
        report = compare_rows([], [])
        assert report.ok
        assert report.num_rows == 0


class TestCompareFiles:
    def test_round_trip_with_runner_csv(self, tmp_path):
        from repro.bench.reporting import format_csv
        rows = [{"n": 10, "dual-i_query_ms": 1.5}]
        path_a = tmp_path / "a.csv"
        path_b = tmp_path / "b.csv"
        path_a.write_text(format_csv(rows))
        rows[0]["dual-i_query_ms"] = 9.0
        path_b.write_text(format_csv(rows))
        report = compare_result_files(path_a, path_b)
        assert not report.ok

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            compare_result_files(tmp_path / "nope.csv",
                                 tmp_path / "also-nope.csv")
