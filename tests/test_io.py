"""Unit tests for graph I/O (edge list + JSON)."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from repro.graph.io import read_edge_list, read_json, write_edge_list, write_json


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = gnm_random_digraph(40, 90, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded == g

    def test_isolated_nodes_survive(self, tmp_path):
        g = DiGraph(edges=[(1, 2)], nodes=[7, 8])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert set(loaded.nodes()) == {1, 2, 7, 8}
        assert loaded.num_edges == 1

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n1 2  # trailing comment\n\n3\n")
        g = read_edge_list(path)
        assert g.has_edge(1, 2)
        assert 3 in g
        assert g.num_edges == 1

    def test_string_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("alpha beta\n")
        g = read_edge_list(path, int_nodes=False)
        assert g.has_edge("alpha", "beta")

    def test_non_integer_token_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_too_many_tokens_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("")
        g = read_edge_list(path)
        assert g.num_nodes == 0


class TestJSON:
    def test_round_trip(self, tmp_path):
        g = gnm_random_digraph(30, 60, seed=2)
        path = tmp_path / "g.json"
        write_json(g, path)
        assert read_json(path) == g

    def test_preserves_insertion_order(self, tmp_path):
        g = DiGraph([(3, 1), (1, 5)])
        path = tmp_path / "g.json"
        write_json(g, path)
        assert list(read_json(path).nodes()) == [3, 1, 5]

    def test_string_nodes(self, tmp_path):
        g = DiGraph([("x", "y")])
        path = tmp_path / "g.json"
        write_json(g, path)
        assert read_json(path).has_edge("x", "y")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            read_json(path)

    def test_missing_keys_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nodes": []}')
        with pytest.raises(DatasetError):
            read_json(path)

    def test_malformed_edge_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nodes": [1, 2], "edges": [[1, 2, 3]]}')
        with pytest.raises(DatasetError):
            read_json(path)


class TestDot:
    def test_basic_structure(self):
        from repro.graph.io import to_dot
        g = DiGraph([(1, 2), (2, 3)])
        dot = to_dot(g)
        assert dot.startswith("digraph G {")
        assert '"1" -> "2";' in dot
        assert dot.rstrip().endswith("}")

    def test_highlight_path(self):
        from repro.graph.io import to_dot
        g = DiGraph([(1, 2), (2, 3), (1, 3)])
        dot = to_dot(g, highlight_path=[1, 2, 3])
        assert 'fillcolor="#ffd37f"' in dot
        assert '"1" -> "2" [color="#d4622a", penwidth=2.0];' in dot
        # The shortcut edge is not on the path.
        assert '"1" -> "3";' in dot

    def test_highlight_nontree_edges(self):
        from repro.graph.io import to_dot
        g = DiGraph([(1, 2), (2, 3), (1, 3)])
        dot = to_dot(g, highlight_edges={(1, 3)})
        assert '"1" -> "3" [style=dashed];' in dot

    def test_quoting(self):
        from repro.graph.io import to_dot
        g = DiGraph([('say "hi"', "b")])
        dot = to_dot(g)
        assert '\\"hi\\"' in dot

    def test_write_dot(self, tmp_path):
        from repro.graph.io import write_dot
        g = DiGraph([(1, 2)])
        path = tmp_path / "g.dot"
        write_dot(g, path, name="Demo")
        text = path.read_text()
        assert text.startswith("digraph Demo {")

    def test_witness_visualisation_flow(self):
        """DOT rendering of a dual-labeling witness path."""
        from repro.core.dual_i import DualIIndex
        from repro.core.witness import expand_witness, witness_path
        from repro.graph.io import to_dot
        from tests.conftest import make_paper_graph
        graph = make_paper_graph()
        index = DualIIndex.build(graph, use_meg=False)
        witness = expand_witness(graph,
                                 witness_path(index, "u", "w"))
        dot = to_dot(graph, highlight_path=witness)
        assert '"u"' in dot and '"w"' in dot
        assert "penwidth" in dot
