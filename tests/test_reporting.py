"""Unit tests for report rendering."""

from __future__ import annotations

from repro.bench.reporting import format_csv, format_markdown_table, format_value


class TestFormatValue:
    def test_none_blank(self):
        assert format_value(None) == ""

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_ranges(self):
        assert format_value(0.0) == "0"
        assert format_value(123.456) == "123"
        assert format_value(12.345) == "12.35"
        assert format_value(0.12345) == "0.1235"

    def test_passthrough(self):
        assert format_value(42) == "42"
        assert format_value("x") == "x"


class TestMarkdownTable:
    def test_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": None}]
        text = format_markdown_table(rows)
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.50 |"
        assert lines[3] == "| 3 |  |"

    def test_title(self):
        text = format_markdown_table([{"a": 1}], title="Hello")
        assert text.startswith("### Hello")

    def test_explicit_columns(self):
        text = format_markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert "| b |" in text
        assert "a" not in text.splitlines()[0]

    def test_columns_union_across_rows(self):
        rows = [{"a": 1}, {"b": 2}]
        header = format_markdown_table(rows).splitlines()[0]
        assert "a" in header and "b" in header

    def test_empty(self):
        assert "(no data)" in format_markdown_table([])


class TestCSV:
    def test_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = format_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"
        assert lines[2] == "2,y"

    def test_missing_values_blank(self):
        text = format_csv([{"a": 1}, {"b": 2}])
        lines = text.strip().splitlines()
        assert lines[1] == "1,"
        assert lines[2] == ",2"

    def test_explicit_columns_filter(self):
        text = format_csv([{"a": 1, "b": 2}], columns=["a"])
        assert text.strip().splitlines() == ["a", "1"]
