"""CSRGraph snapshot: ordering contract, laziness, round trips.

The fast construction backend's bit-for-bit equivalence rests on the
snapshot preserving :class:`DiGraph` iteration order exactly (node ids =
insertion order, rows = adjacency insertion order), so these tests pin
that contract down — including the awkward corners: empty graphs,
isolated nodes, self-loops, non-integer labels, and the stable-sort
reverse direction of :meth:`CSRGraph.from_forward` snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    random_dag,
    random_tree,
)


def _single_node():
    graph = DiGraph()
    graph.add_node(42)
    return graph


def snapshot_cases():
    mixed = DiGraph([("a", "b"), ("a", "c"), ("c", "b"), ("d", "d")])
    mixed.add_node("lonely")
    return {
        "empty": DiGraph(),
        "single-node": _single_node(),
        "diamond": DiGraph([(0, 1), (0, 2), (1, 3), (2, 3)]),
        "mixed-labels": mixed,
        "dag": random_dag(30, 45, seed=5),
        "cyclic": gnm_random_digraph(25, 40, seed=5),
        "tree": random_tree(30, max_fanout=4, seed=5),
    }


CASES = snapshot_cases()


# ---------------------------------------------------------------------
# basic structure
# ---------------------------------------------------------------------

def test_empty_graph() -> None:
    csr = CSRGraph.from_digraph(DiGraph())
    assert csr.num_nodes == 0
    assert csr.num_edges == 0
    assert csr.indptr.tolist() == [0]
    assert csr.indices.size == 0
    assert csr.rindptr.tolist() == [0]
    assert csr.to_digraph() == DiGraph()


def test_isolated_nodes_get_empty_rows() -> None:
    graph = DiGraph([(1, 2)])
    graph.add_node(9)
    graph.add_node(7)
    csr = CSRGraph.from_digraph(graph)
    assert csr.nodes == [1, 2, 9, 7]  # insertion order, not sorted
    for label in (9, 7):
        i = csr.id_of[label]
        assert csr.successors(i).size == 0
        assert csr.predecessors(i).size == 0
        assert csr.out_degree(i) == 0
        assert csr.in_degree(i) == 0


def test_self_loop_appears_in_both_directions() -> None:
    graph = DiGraph([("x", "x"), ("x", "y")])
    csr = CSRGraph.from_digraph(graph)
    x = csr.id_of["x"]
    assert x in csr.successors(x).tolist()
    assert x in csr.predecessors(x).tolist()
    assert csr.num_edges == 2


def test_edge_ids_are_positions() -> None:
    graph = DiGraph([(0, 1), (0, 2), (1, 2)])
    csr = CSRGraph.from_digraph(graph)
    # Edge id e has source src_of_edge()[e] and target indices[e].
    edges = list(zip(csr.src_of_edge().tolist(), csr.indices.tolist()))
    assert edges == [(0, 1), (0, 2), (1, 2)]


# ---------------------------------------------------------------------
# determinism and round trips
# ---------------------------------------------------------------------

@pytest.mark.parametrize("name", CASES, ids=list(CASES))
def test_snapshot_is_deterministic(name) -> None:
    graph = CASES[name]
    first = CSRGraph.from_digraph(graph)
    second = CSRGraph.from_digraph(graph)
    assert first.nodes == second.nodes
    np.testing.assert_array_equal(first.indptr, second.indptr)
    np.testing.assert_array_equal(first.indices, second.indices)
    np.testing.assert_array_equal(first.rindptr, second.rindptr)
    np.testing.assert_array_equal(first.rindices, second.rindices)


@pytest.mark.parametrize("name", CASES, ids=list(CASES))
def test_round_trip_preserves_graph_and_order(name) -> None:
    graph = CASES[name]
    back = CSRGraph.from_digraph(graph).to_digraph()
    assert back == graph
    assert list(back.nodes()) == list(graph.nodes())
    for node in graph.nodes():
        assert list(back.successors(node)) == list(graph.successors(node))
        assert (list(back.predecessors(node))
                == list(graph.predecessors(node)))


# ---------------------------------------------------------------------
# ordering contract versus the source DiGraph (property test)
# ---------------------------------------------------------------------

@pytest.mark.parametrize("name", CASES, ids=list(CASES))
def test_rows_match_digraph_adjacency(name) -> None:
    graph = CASES[name]
    csr = CSRGraph.from_digraph(graph)
    assert csr.nodes == list(graph.nodes())
    label = csr.nodes.__getitem__
    for i, node in enumerate(csr.nodes):
        assert ([label(j) for j in csr.successors(i).tolist()]
                == list(graph.successors(node)))
        assert ([label(j) for j in csr.predecessors(i).tolist()]
                == list(graph.predecessors(node)))
        assert csr.out_degree(i) == graph.out_degree(node)
        assert csr.in_degree(i) == graph.in_degree(node)
    np.testing.assert_array_equal(
        csr.in_degrees(),
        [graph.in_degree(node) for node in graph.nodes()])
    np.testing.assert_array_equal(
        csr.out_degrees(),
        [graph.out_degree(node) for node in graph.nodes()])


# ---------------------------------------------------------------------
# from_forward: stable-sort reverse and redge_id
# ---------------------------------------------------------------------

def _forward_snapshot(graph: DiGraph) -> CSRGraph:
    base = CSRGraph.from_digraph(graph)
    return CSRGraph.from_forward(base.nodes, base.indptr, base.indices)


def _source_major(graph: DiGraph) -> DiGraph:
    """``graph`` with its edges re-inserted grouped by source node —
    the insertion discipline :meth:`CSRGraph.from_forward` assumes
    (every graph the pipeline derives satisfies it)."""
    regrouped = DiGraph()
    regrouped.add_nodes(graph.nodes())
    for u in graph.nodes():
        for v in graph.successors(u):
            regrouped.add_edge(u, v)
    return regrouped


@pytest.mark.parametrize("name", ["diamond", "dag", "cyclic", "tree"],
                         ids=["diamond", "dag", "cyclic", "tree"])
def test_from_forward_reverse_matches_source_major_insertion(name) -> None:
    # On a graph whose edges were added grouped by source, the
    # stable-sort reverse must reproduce the DiGraph predecessor
    # insertion order exactly.
    graph = _source_major(CASES[name])
    eager = CSRGraph.from_digraph(graph)
    derived = _forward_snapshot(graph)
    np.testing.assert_array_equal(derived.rindptr, eager.rindptr)
    np.testing.assert_array_equal(derived.rindices, eager.rindices)


def test_from_forward_redge_id_maps_back_to_forward_edges() -> None:
    derived = _forward_snapshot(CASES["dag"])
    redge = derived.redge_id
    assert redge is not None
    # Reverse slot k holds edge redge[k]: its forward target is the row
    # owner and its forward source is rindices[k].
    rptr = derived.rindptr.tolist()
    for v in range(derived.num_nodes):
        for k in range(rptr[v], rptr[v + 1]):
            e = int(redge[k])
            assert int(derived.indices[e]) == v
            assert int(derived.src_of_edge()[e]) == int(derived.rindices[k])


def test_string_labels_map_correctly() -> None:
    graph = DiGraph([("b", "a"), ("a", "c")])
    csr = CSRGraph.from_digraph(graph)
    assert csr.id_of == {"b": 0, "a": 1, "c": 2}
    assert csr.successors(csr.id_of["b"]).tolist() == [csr.id_of["a"]]


def test_identity_int_labels_defer_the_map() -> None:
    # Dense 0..n-1 labels need no translation, so the snapshot skips
    # the dict entirely and only builds it on first id_of access.
    graph = DiGraph([(0, 1), (1, 2)])
    csr = CSRGraph.from_digraph(graph)
    assert csr.nodes == [0, 1, 2]
    assert csr._id_of is None
    assert csr.id_of == {0: 0, 1: 1, 2: 2}
    assert csr.successors(0).tolist() == [1]
