"""Unit tests for the paper's timing protocol."""

from __future__ import annotations

from repro.bench.timing import (
    measure_build_time,
    measure_query_time,
)
from repro.bench.workloads import random_query_pairs
from repro.graph.generators import single_rooted_dag
from repro.graph.traversal import is_reachable_search


class TestMeasureBuildTime:
    def test_returns_working_index(self, diamond):
        measured = measure_build_time(diamond, "dual-i")
        assert measured.scheme == "dual-i"
        assert measured.seconds >= 0
        assert measured.index.reachable("a", "d")

    def test_options_forwarded(self, diamond):
        measured = measure_build_time(diamond, "interval", probe="linear")
        assert measured.index._probe == "linear"


class TestMeasureQueryTime:
    def test_protocol_fields(self):
        g = single_rooted_dag(100, 140, seed=1)
        index = measure_build_time(g, "dual-i").index
        pairs = random_query_pairs(g, 500, seed=2)
        measured = measure_query_time(index, pairs)
        assert measured.num_queries == 500
        assert measured.raw_seconds >= measured.seconds >= 0
        assert measured.baseline_seconds >= 0
        # Net = raw - baseline, clamped at zero.
        assert measured.seconds == max(
            0.0, measured.raw_seconds - measured.baseline_seconds)

    def test_positive_count_matches_truth(self):
        g = single_rooted_dag(80, 110, seed=3)
        index = measure_build_time(g, "dual-ii").index
        pairs = random_query_pairs(g, 300, seed=4)
        measured = measure_query_time(index, pairs)
        truth = sum(is_reachable_search(g, u, v) for u, v in pairs)
        assert measured.positives == truth

    def test_microseconds_per_query(self):
        g = single_rooted_dag(50, 70, seed=5)
        index = measure_build_time(g, "dual-i").index
        pairs = random_query_pairs(g, 100, seed=6)
        measured = measure_query_time(index, pairs)
        assert measured.microseconds_per_query == \
            1e6 * measured.seconds / 100

    def test_zero_queries(self):
        g = single_rooted_dag(20, 25, seed=7)
        index = measure_build_time(g, "dual-i").index
        measured = measure_query_time(index, [])
        assert measured.num_queries == 0
        assert measured.microseconds_per_query == 0.0
