"""Property-based tests (hypothesis) for the core invariants.

Graphs are generated as random edge lists over a bounded node universe —
cyclic, disconnected, self-looped, everything goes — and the labeled
schemes are checked against the BFS oracle, plus structural invariants of
the intermediate artefacts (Property 1, Lemma 2's grid, interval nesting,
MEG minimality).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import build_index
from repro.core.intervals import assign_intervals
from repro.core.linktable import build_link_table, transitive_link_table
from repro.core.tlc_matrix import build_tlc_matrix, tlc_function
from repro.core.tlc_searchtree import build_tlc_search_tree
from repro.graph.closure import transitive_closure_pairs
from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph
from repro.graph.meg import minimal_equivalent_graph
from repro.graph.spanning import spanning_forest
from repro.graph.traversal import is_reachable_search

# ---------------------------------------------------------------------
# graph strategies
# ---------------------------------------------------------------------
NODES = st.integers(min_value=0, max_value=17)


@st.composite
def digraphs(draw):
    """Arbitrary directed graphs: cycles, self-loops, isolated nodes."""
    edges = draw(st.lists(st.tuples(NODES, NODES), max_size=60))
    extra_nodes = draw(st.lists(NODES, max_size=5))
    return DiGraph(edges=edges, nodes=extra_nodes)


@st.composite
def dags(draw):
    """Arbitrary DAGs: edges oriented low -> high node id."""
    raw = draw(st.lists(st.tuples(NODES, NODES), max_size=60))
    edges = [(min(u, v), max(u, v)) for u, v in raw if u != v]
    extra_nodes = draw(st.lists(NODES, max_size=5))
    return DiGraph(edges=edges, nodes=extra_nodes)


COMMON = settings(max_examples=60, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------
# end-to-end scheme correctness
# ---------------------------------------------------------------------
@COMMON
@given(graph=digraphs())
def test_dual_i_matches_oracle(graph):
    index = build_index(graph, scheme="dual-i")
    for u in graph.nodes():
        for v in graph.nodes():
            assert index.reachable(u, v) == is_reachable_search(graph, u, v)


@COMMON
@given(graph=digraphs())
def test_dual_ii_matches_oracle(graph):
    index = build_index(graph, scheme="dual-ii")
    for u in graph.nodes():
        for v in graph.nodes():
            assert index.reachable(u, v) == is_reachable_search(graph, u, v)


@COMMON
@given(graph=digraphs())
def test_dual_rt_matches_oracle(graph):
    index = build_index(graph, scheme="dual-rt")
    for u in graph.nodes():
        for v in graph.nodes():
            assert index.reachable(u, v) == is_reachable_search(graph, u, v)


@COMMON
@given(graph=digraphs())
def test_dual_i_without_meg_matches_oracle(graph):
    index = build_index(graph, scheme="dual-i", use_meg=False)
    for u in graph.nodes():
        for v in graph.nodes():
            assert index.reachable(u, v) == is_reachable_search(graph, u, v)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=digraphs())
def test_baselines_match_oracle(graph):
    for scheme in ("interval", "2hop", "closure", "grail",
                   "chain-cover"):
        index = build_index(graph, scheme=scheme)
        for u in graph.nodes():
            for v in graph.nodes():
                assert index.reachable(u, v) == \
                    is_reachable_search(graph, u, v), scheme


# ---------------------------------------------------------------------
# structural invariants
# ---------------------------------------------------------------------
@COMMON
@given(dag=dags())
def test_interval_nesting_invariant(dag):
    """Any two interval labels are nested or disjoint — never partially
    overlapping — and containment equals forest ancestorship."""
    forest = spanning_forest(dag)
    labeling = assign_intervals(forest)
    intervals = list(labeling.interval.items())
    for u, iu in intervals:
        for v, iv in intervals:
            nested = iu.contains_interval(iv) or iv.contains_interval(iu)
            disjoint = iu.end <= iv.start or iv.end <= iu.start
            assert nested or disjoint
            assert labeling.is_tree_ancestor(u, v) == \
                forest.is_tree_ancestor(u, v)


@COMMON
@given(dag=dags())
def test_property1_transitive_table_bound(dag):
    forest = spanning_forest(dag)
    labeling = assign_intervals(forest)
    base = build_link_table(forest.nontree_edges, labeling)
    closed = transitive_link_table(base)
    t = len(base)
    assert len(closed) <= t * (t + 1) // 2
    assert set(base.links) <= set(closed.links)


@COMMON
@given(dag=dags())
def test_tlc_structures_agree_with_definition(dag):
    """Matrix grid values and search-tree counts both equal Definition 1."""
    forest = spanning_forest(dag)
    labeling = assign_intervals(forest)
    closed = transitive_link_table(
        build_link_table(forest.nontree_edges, labeling))
    N = tlc_function(closed)
    matrix = build_tlc_matrix(closed)
    tree = build_tlc_search_tree(closed)
    for ix, x in enumerate(closed.xs):
        for iy, y in enumerate(closed.ys):
            expected = N(x, y)
            assert matrix.value(ix, iy) == expected
            assert tree.count(x, y) == expected
    # The tree also answers off-grid coordinates.
    for x in range(0, 20, 3):
        for y in range(0, 20, 3):
            assert tree.count(x, y) == N(x, y)


@COMMON
@given(dag=dags())
def test_meg_preserves_and_minimizes(dag):
    result = minimal_equivalent_graph(dag)
    assert transitive_closure_pairs(result.graph) == \
        transitive_closure_pairs(dag)
    # Removed edges really were superfluous: each one's endpoints stay
    # connected in the reduced graph.
    for u, v in result.removed_edges:
        assert is_reachable_search(result.graph, u, v)


@COMMON
@given(graph=digraphs())
def test_condensation_is_acyclic_partition(graph):
    cond = condense(graph)
    # Partition: every node appears in exactly one component.
    seen = {}
    for cid, members in enumerate(cond.members):
        for node in members:
            assert node not in seen
            seen[node] = cid
    assert set(seen) == set(graph.nodes())
    # Acyclic with topologically ordered ids: edges go low -> high.
    for u, v in cond.dag.edges():
        assert u < v


@COMMON
@given(graph=digraphs())
def test_witness_paths_verify(graph):
    """Every positive answer yields a witness that expands into a real
    edge path; negative answers yield None."""
    from repro.core.witness import expand_witness, verify_witness, witness_path

    index = build_index(graph, scheme="dual-i")
    nodes = list(graph.nodes())
    for u in nodes[:10]:
        for v in nodes[:10]:
            witness = witness_path(index, u, v)
            if is_reachable_search(graph, u, v):
                assert witness is not None
                assert verify_witness(graph, expand_witness(graph,
                                                            witness))
            else:
                assert witness is None


@COMMON
@given(graph=digraphs())
def test_batch_queries_match_scalar(graph):
    """The vectorised Theorem 3 agrees with the scalar query on every
    pair."""
    from repro.core.batch import reachable_batch

    index = build_index(graph, scheme="dual-i")
    nodes = list(graph.nodes())
    pairs = [(u, v) for u in nodes[:8] for v in nodes[:8]]
    expected = [index.reachable(u, v) for u, v in pairs]
    assert reachable_batch(index, pairs) == expected


@COMMON
@given(graph=digraphs())
def test_reachability_is_transitive_and_reflexive(graph):
    """Meta-check of the oracle itself on the dual-i index: reachability
    must be a preorder (reflexive + transitive)."""
    index = build_index(graph, scheme="dual-i")
    nodes = list(graph.nodes())
    for u in nodes:
        assert index.reachable(u, u)
    for u in nodes[:8]:
        for v in nodes[:8]:
            for w in nodes[:8]:
                if index.reachable(u, v) and index.reachable(v, w):
                    assert index.reachable(u, w)


@COMMON
@given(graph=digraphs())
def test_chain_cover_structure_invariants(graph):
    """Chains partition the condensed nodes; consecutive chain members
    are joined by DAG edges (so suffix-reachability holds)."""
    from repro.baselines.chain_cover import ChainCoverIndex

    index = build_index(graph, scheme="chain-cover")
    chain_of = index._chain_of
    pos = index._pos_in_chain
    n = len(chain_of)
    if n == 0:
        return
    # Positions within each chain are 0..len-1 with no gaps.
    by_chain: dict = {}
    for node in range(n):
        by_chain.setdefault(int(chain_of[node]), []).append(int(pos[node]))
    for positions in by_chain.values():
        assert sorted(positions) == list(range(len(positions)))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_ontology_subsumption_matches_search(data):
    """Random subclass hierarchies: Ontology answers equal BFS over the
    subClassOf digraph."""
    from repro.rdf import SUBCLASS_OF, Ontology, TripleStore

    names = [f"C{k}" for k in range(10)]
    edges = data.draw(st.lists(
        st.tuples(st.sampled_from(names), st.sampled_from(names)),
        max_size=25))
    store = TripleStore((sub, SUBCLASS_OF, sup) for sub, sup in edges
                        if sub != sup)
    onto = Ontology(store)
    graph = onto.hierarchy
    for sub in graph.nodes():
        for sup in graph.nodes():
            assert onto.is_subclass_of(sub, sup) == \
                is_reachable_search(graph, sub, sup)


@COMMON
@given(graph=digraphs())
def test_dot_export_contains_everything(graph):
    """DOT output names every node and edge exactly."""
    from repro.graph.io import to_dot

    dot = to_dot(graph)
    for node in graph.nodes():
        assert f'"{node}"' in dot
    for u, v in graph.edges():
        assert f'"{u}" -> "{v}"' in dot
    assert dot.count("->") == graph.num_edges


@COMMON
@given(graph=digraphs(),
       count=st.integers(min_value=0, max_value=40),
       seed=st.integers(min_value=0, max_value=99))
def test_golden_round_trip_property(tmp_path_factory, graph, count, seed):
    """Goldens survive serialisation and match the oracle verbatim."""
    from repro.bench.goldens import (
        check_against_golden,
        create_golden,
        load_golden,
        save_golden,
    )

    if graph.num_nodes == 0:
        return
    golden = create_golden(graph, count, seed=seed)
    path = tmp_path_factory.mktemp("goldens") / "g.json"
    save_golden(golden, path)
    loaded = load_golden(path)
    assert loaded.pairs == golden.pairs
    assert loaded.answers == golden.answers
    index = build_index(graph, scheme="dual-i")
    assert check_against_golden(index, loaded) == []
