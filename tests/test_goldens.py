"""Unit tests for golden workloads."""

from __future__ import annotations

import json

import pytest

from repro.bench.goldens import (
    GoldenWorkload,
    check_against_golden,
    create_golden,
    load_golden,
    save_golden,
)
from repro.core.base import available_schemes, build_index
from repro.exceptions import DatasetError
from repro.graph.generators import gnm_random_digraph


class TestCreateGolden:
    def test_answers_match_oracle(self, chain10):
        golden = create_golden(chain10, 100, seed=1)
        assert len(golden) == 100
        from repro.graph.traversal import is_reachable_search
        for (u, v), answer in zip(golden.pairs, golden.answers):
            assert answer == is_reachable_search(chain10, u, v)

    def test_deterministic(self, chain10):
        a = create_golden(chain10, 50, seed=2)
        b = create_golden(chain10, 50, seed=2)
        assert a.pairs == b.pairs
        assert a.answers == b.answers

    def test_positives_counted(self, chain10):
        golden = create_golden(chain10, 200, seed=3)
        assert golden.positives == sum(golden.answers)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            GoldenWorkload(seed=0, pairs=[(1, 2)], answers=[])


class TestRoundTrip:
    def test_save_load(self, tmp_path, chain10):
        golden = create_golden(chain10, 80, seed=4)
        path = tmp_path / "golden.json"
        save_golden(golden, path)
        loaded = load_golden(path)
        assert loaded.pairs == golden.pairs
        assert loaded.answers == golden.answers
        assert loaded.seed == 4

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(DatasetError):
            load_golden(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(DatasetError):
            load_golden(path)

    def test_truncated(self, tmp_path, chain10):
        path = tmp_path / "golden.json"
        save_golden(create_golden(chain10, 10, seed=5), path)
        document = json.loads(path.read_text())
        del document["answers"]
        path.write_text(json.dumps(document))
        with pytest.raises(DatasetError):
            load_golden(path)


class TestCheckAgainstGolden:
    def test_every_scheme_passes(self, tmp_path):
        graph = gnm_random_digraph(60, 150, seed=6)
        golden = create_golden(graph, 300, seed=7)
        # Round-trip through disk, as the CI use case would.
        path = tmp_path / "golden.json"
        save_golden(golden, path)
        golden = load_golden(path)
        for scheme in available_schemes():
            index = build_index(graph, scheme=scheme)
            assert check_against_golden(index, golden) == [], scheme

    def test_detects_wrong_index(self, chain10):
        golden = create_golden(chain10, 100, seed=8)

        class Liar:
            def reachable(self, u, v):
                return True

        mismatches = check_against_golden(Liar(), golden)
        assert mismatches
        u, v, actual, expected = mismatches[0]
        assert actual is True and expected is False

    def test_mismatch_cap(self, chain10):
        golden = create_golden(chain10, 200, seed=9)

        class Liar:
            def reachable(self, u, v):
                return True

        assert len(check_against_golden(Liar(), golden,
                                        max_mismatches=5)) == 5
