"""Unit tests for the calibrated dataset stand-ins (Table 2)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import preprocess
from repro.datasets import (
    SCENARIO_SPECS,
    TABLE2_SPECS,
    DatasetSpec,
    build_calibrated_graph,
    build_scenario_graph,
    dataset_names,
    dependency_resolution_dag,
    get_spec,
    load_dataset,
    netlist_dataflow_dag,
    scenario_names,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_names_table2_first_then_scenarios(self):
        assert dataset_names() == ["AgroCyc", "Ecoo157", "HpyCyc",
                                   "VchoCyc", "XMark",
                                   "netlist-dataflow",
                                   "dependency-resolution"]

    def test_get_spec(self):
        spec = get_spec("XMark")
        assert spec.num_nodes == 6483
        assert spec.num_edges == 7654

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError, match="AgroCyc"):
            get_spec("NopeCyc")
        with pytest.raises(DatasetError):
            load_dataset("NopeCyc")

    def test_specs_match_paper_table2(self):
        expected = {
            "AgroCyc": (13969, 17694, 12684, 13408, 13094),
            "Ecoo157": (13800, 17308, 12620, 13350, 13025),
            "HpyCyc": (5565, 8474, 4771, 5859, 5649),
            "VchoCyc": (10694, 14207, 9491, 10143, 9860),
            "XMark": (6483, 7654, 6080, 7028, 6957),
        }
        for name, row in expected.items():
            spec = TABLE2_SPECS[name]
            assert (spec.num_nodes, spec.num_edges, spec.dag_nodes,
                    spec.dag_edges, spec.meg_edges) == row


class TestSpecValidation:
    def test_dag_nodes_bound(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="bad", num_nodes=10, num_edges=10,
                        dag_nodes=11, dag_edges=9, meg_edges=9)

    def test_edge_ordering(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="bad", num_nodes=10, num_edges=10,
                        dag_nodes=9, dag_edges=11, meg_edges=9)
        with pytest.raises(ValueError):
            DatasetSpec(name="bad", num_nodes=10, num_edges=10,
                        dag_nodes=9, dag_edges=9, meg_edges=10)

    def test_meg_floor(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="bad", num_nodes=10, num_edges=10,
                        dag_nodes=9, dag_edges=9, meg_edges=5)


@pytest.mark.parametrize("name", ["HpyCyc", "XMark"])
class TestCalibration:
    """Full calibration checks on the two smaller datasets (the larger
    three use the identical code path; their calibration is asserted by
    the Table 2 benchmark)."""

    def test_exact_node_and_edge_counts(self, name):
        spec = get_spec(name)
        graph = load_dataset(name, seed=0)
        assert graph.num_nodes == spec.num_nodes
        assert graph.num_edges == spec.num_edges

    def test_preprocessing_counts_within_tolerance(self, name):
        spec = get_spec(name)
        graph = load_dataset(name, seed=0)
        _, counters = preprocess(graph)
        assert counters["nodes_dag"] == pytest.approx(
            spec.dag_nodes, rel=0.02)
        assert counters["edges_dag"] == pytest.approx(
            spec.dag_edges, rel=0.02)
        assert counters["edges_meg"] == pytest.approx(
            spec.meg_edges, rel=0.02)

    def test_deterministic(self, name):
        assert load_dataset(name, seed=3) == load_dataset(name, seed=3)

    def test_seed_varies_graph(self, name):
        assert load_dataset(name, seed=0) != load_dataset(name, seed=1)


class TestScenarioPacks:
    def test_registry_dispatch(self):
        assert scenario_names() == list(SCENARIO_SPECS)
        for name in scenario_names():
            graph = load_dataset(name, seed=1)
            assert graph.num_nodes == SCENARIO_SPECS[name].default_nodes
        with pytest.raises(DatasetError, match="netlist-dataflow"):
            build_scenario_graph("no-such-scenario")

    @pytest.mark.parametrize("name", ["netlist-dataflow",
                                      "dependency-resolution"])
    def test_deterministic_and_seed_varies(self, name):
        a = build_scenario_graph(name, nodes=300, seed=4)
        b = build_scenario_graph(name, nodes=300, seed=4)
        c = build_scenario_graph(name, nodes=300, seed=5)
        assert a == b
        assert a != c

    @pytest.mark.parametrize("name", ["netlist-dataflow",
                                      "dependency-resolution"])
    def test_scenarios_are_dags_on_dense_ids(self, name):
        graph = build_scenario_graph(name, nodes=400, seed=0)
        assert graph.num_nodes == 400
        assert sorted(graph.nodes()) == list(range(400))
        _, counters = preprocess(graph)
        assert counters["nodes_dag"] == 400  # acyclic: no SCC collapse

    def test_netlist_is_deep_narrow_and_tree_heavy(self):
        from repro.core.base import build_index

        graph = netlist_dataflow_dag(1200, seed=2)
        # High tree-edge ratio: few non-tree edges survive spanning.
        assert graph.num_edges <= 1.25 * graph.num_nodes
        index = build_index(graph, scheme="dual-ii")
        assert index.t <= 0.2 * graph.num_nodes
        # Deep: the stage pipeline is far longer than it is wide.
        depth = [0] * graph.num_nodes
        for u in range(graph.num_nodes):       # ids are topological
            for v in graph.successors(u):
                depth[v] = max(depth[v], depth[u] + 1)
        assert max(depth) >= 50

    def test_dependency_dag_is_wide_and_diamond_heavy(self):
        graph = dependency_resolution_dag(1500, seed=2)
        # Diamond-heavy: several dependencies per package on average.
        assert graph.num_edges >= 2.0 * graph.num_nodes
        # Wide: reachability funnels onto a few shared base packages.
        indegree = [len(list(graph.predecessors(v)))
                    for v in range(30)]  # the base layer sits first
        assert max(indegree) >= 30
        # Shallow: the layer structure caps path length at 4 hops.
        depth = [0] * graph.num_nodes
        for u in range(graph.num_nodes - 1, -1, -1):
            for v in graph.successors(u):      # edges high id -> low id
                depth[v] = max(depth[v], depth[u] + 1)
        assert max(depth) <= 4

    @pytest.mark.parametrize("name", ["netlist-dataflow",
                                      "dependency-resolution"])
    def test_differential_across_schemes(self, name):
        """Scenario graphs answer identically under Dual-I, Dual-II,
        and plain BFS — the harness hook the chaos/differential soaks
        rely on when they load scenarios by name."""
        import random

        from repro.core.base import build_index
        from tests.test_differential import ground_truth

        graph = build_scenario_graph(name, nodes=250, seed=3)
        reaches = ground_truth(graph)
        rng = random.Random(9)
        pairs = [(rng.randrange(250), rng.randrange(250))
                 for _ in range(500)]
        truth = [reaches(u, v) for u, v in pairs]
        for scheme in ("dual-i", "dual-ii"):
            index = build_index(graph, scheme=scheme)
            assert index.reachable_many(pairs) == truth, (name, scheme)


class TestSmallCalibratedGraph:
    def test_custom_spec(self):
        spec = DatasetSpec(name="tiny", num_nodes=60, num_edges=80,
                           dag_nodes=50, dag_edges=62, meg_edges=58)
        graph = build_calibrated_graph(spec, seed=1)
        assert graph.num_nodes == 60
        assert graph.num_edges == 80
        _, counters = preprocess(graph)
        assert counters["nodes_dag"] == 50

    def test_no_reduction_spec(self):
        spec = DatasetSpec(name="flat", num_nodes=40, num_edges=45,
                           dag_nodes=40, dag_edges=45, meg_edges=41)
        graph = build_calibrated_graph(spec, seed=2)
        _, counters = preprocess(graph)
        assert counters["nodes_dag"] == 40
        assert counters["edges_dag"] == 45
