"""Integration tests for the asyncio serving gateway.

The differential harness mirrors ``tests/test_differential.py``: the
same seeded graph families, served through a real TCP gateway, must
answer every pair exactly as a direct ``QueryService`` does — including
across hot index swaps mid-run.  The remaining tests pin the protocol
behaviours the clients rely on: explicit ``overloaded`` replies under
the shed policy, per-request size caps, unknown-node isolation inside
shared flushes, and the ``stats``/``reload`` verbs.
"""

from __future__ import annotations

import json
import socket
from contextlib import contextmanager

import pytest

from repro.core.base import build_index
from repro.core.serialize import save_dual_index
from repro.core.service import QueryService
from repro.graph.generators import random_dag
from repro.graph.io import write_edge_list
from repro.server.client import ReachClient, ServerReplyError
from repro.server.server import ReachServer, ServerConfig, ServerThread
from tests.test_differential import FAMILIES, SEEDS


@contextmanager
def serve(index, scheme: str = "dual-i", **config_kwargs):
    """A gateway over ``index`` on a background thread."""
    server = ReachServer(QueryService(index), scheme=scheme,
                         config=ServerConfig(**config_kwargs))
    handle = ServerThread(server).start()
    try:
        yield handle
    finally:
        handle.stop()


def raw_exchange(port: int, lines: list[bytes],
                 expected_replies: int) -> list[dict]:
    """Pipeline raw protocol lines and collect the replies."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=30.0) as sock:
        sock.sendall(b"".join(lines))
        reader = sock.makefile("rb")
        return [json.loads(reader.readline())
                for _ in range(expected_replies)]


# ---------------------------------------------------------------------
# differential: served answers == direct QueryService answers
# ---------------------------------------------------------------------

class TestDifferential:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_served_answers_match_direct_service(self, family, tmp_path):
        """Every seed of the family, served through one gateway whose
        index is hot-swapped between seeds — so the sweep also proves
        answers stay exact across ``reload`` swaps mid-run."""
        first = FAMILIES[family](0)
        with serve(build_index(first, scheme="dual-i")) as handle, \
                ReachClient(port=handle.port) as client:
            for seed in SEEDS:
                graph = FAMILIES[family](seed)
                if seed:  # hot swap the gateway onto this seed's graph
                    graph_file = tmp_path / f"{family}-{seed}.txt"
                    write_edge_list(graph, graph_file)
                    swap = client.reload(graph=graph_file)
                    assert swap["swapped"]
                    assert swap["nodes"] == graph.num_nodes
                nodes = list(graph.nodes())
                pairs = [(u, v) for u in nodes for v in nodes]
                with QueryService(build_index(graph,
                                              scheme="dual-i")) as direct:
                    expected = direct.query_batch(pairs)
                assert client.query_batch(pairs) == expected, \
                    (family, seed)

    def test_scalar_query_verb_matches_batch(self):
        graph = FAMILIES["sparse-dag"](1)
        index = build_index(graph, scheme="dual-i")
        nodes = list(graph.nodes())[:12]
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            for u in nodes:
                for v in nodes:
                    assert client.query(u, v) == index.reachable(u, v)


class TestHotSwap:
    def test_reload_from_saved_index_warm_start(self, tmp_path):
        """Swap from a Dual-I over graph A to a saved Dual-II over
        graph B without a rebuild; answers and the advertised scheme
        must follow the swap."""
        graph_a = random_dag(30, 45, seed=5)
        graph_b = random_dag(34, 50, seed=6)
        index_file = tmp_path / "b.dual-ii.json"
        save_dual_index(build_index(graph_b, scheme="dual-ii"),
                        index_file)
        index_a = build_index(graph_a, scheme="dual-i")
        index_b = build_index(graph_b, scheme="dual-ii")
        pairs_a = [(u, v) for u in graph_a.nodes()
                   for v in graph_a.nodes()]
        pairs_b = [(u, v) for u in graph_b.nodes()
                   for v in graph_b.nodes()]
        with serve(index_a) as handle, \
                ReachClient(port=handle.port) as client:
            assert client.stats()["scheme"] == "dual-i"
            assert client.query_batch(pairs_a) == \
                index_a.reachable_many(pairs_a)
            swap = client.reload(index=index_file)
            assert swap["swapped"]
            assert swap["source"] == "index"
            assert swap["scheme"] == "dual-ii"
            assert client.stats()["scheme"] == "dual-ii"
            assert client.query_batch(pairs_b) == \
                index_b.reachable_many(pairs_b)

    def test_reload_validation(self, tmp_path, diamond):
        with serve(build_index(diamond, scheme="dual-i")) as handle, \
                ReachClient(port=handle.port) as client:
            with pytest.raises(ServerReplyError) as info:
                client.call("reload")  # neither graph nor index
            assert info.value.code == "bad_request"
            with pytest.raises(ServerReplyError) as info:
                client.reload(graph=tmp_path / "missing.txt")
            assert info.value.code == "reload_failed"
            assert client.ping() == "pong"  # connection survived


# ---------------------------------------------------------------------
# backpressure and failure isolation
# ---------------------------------------------------------------------

class TestBackpressure:
    def test_shed_policy_replies_overloaded(self, diamond):
        """With a tiny admission queue and a long flush deadline, a
        pipelined burst must get explicit ``overloaded`` errors — not
        stalls, not dropped connections."""
        index = build_index(diamond, scheme="dual-i")
        with serve(index, max_batch=100_000, max_delay=0.05,
                   max_pending=8, policy="shed",
                   max_conn_inflight=128) as handle:
            lines = [
                b'{"id":%d,"verb":"query","u":"a","v":"d"}\n' % i
                for i in range(64)]
            replies = raw_exchange(handle.port, lines, 64)
        by_status: dict[str, int] = {}
        for reply in replies:
            key = "ok" if reply["ok"] else reply["error"]
            by_status[key] = by_status.get(key, 0) + 1
        assert by_status.get("ok", 0) >= 8  # the admitted window
        assert by_status.get("overloaded", 0) >= 1
        assert by_status.get("ok", 0) + by_status["overloaded"] == 64
        for reply in replies:
            if reply["ok"]:
                assert reply["result"] is True  # a -> d in the diamond

    def test_block_policy_answers_everything(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        with serve(index, max_batch=2, max_delay=0.001, max_pending=4,
                   policy="block", max_conn_inflight=128) as handle:
            lines = [
                b'{"id":%d,"verb":"query","u":"a","v":"d"}\n' % i
                for i in range(50)]
            replies = raw_exchange(handle.port, lines, 50)
        assert all(reply["ok"] for reply in replies)
        assert sorted(reply["id"] for reply in replies) == list(range(50))

    def test_per_request_pair_cap(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        with serve(index, max_request_pairs=4) as handle, \
                ReachClient(port=handle.port) as client:
            assert client.query_batch([("a", "d")] * 4) == [True] * 4
            with pytest.raises(ServerReplyError) as info:
                client.query_batch([("a", "d")] * 5)
            assert info.value.code == "too_large"
            assert client.ping() == "pong"  # connection survived

    def test_unknown_node_isolated_within_shared_flush(self, diamond):
        """A ghost-node query sharing a flush with a good one must fail
        alone: the good request still gets its answer."""
        index = build_index(diamond, scheme="dual-i")
        with serve(index, max_batch=100_000, max_delay=0.05) as handle:
            lines = [
                b'{"id":1,"verb":"query","u":"a","v":"ghost"}\n',
                b'{"id":2,"verb":"query","u":"a","v":"d"}\n',
            ]
            replies = {reply["id"]: reply
                       for reply in raw_exchange(handle.port, lines, 2)}
            with ReachClient(port=handle.port) as client:
                stats = client.stats()
        assert replies[1]["ok"] is False
        assert replies[1]["error"] == "unknown_node"
        assert replies[2]["ok"] is True
        assert replies[2]["result"] is True
        assert stats["batcher"]["isolation_reruns"] >= 1


# ---------------------------------------------------------------------
# protocol surface over a live socket
# ---------------------------------------------------------------------

class TestProtocolSurface:
    def test_bad_and_unknown_requests_keep_the_connection(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        with serve(index) as handle:
            replies = raw_exchange(handle.port, [
                b"{broken json\n",
                b"\n",  # blank lines are skipped, not answered
                b'{"id":1,"verb":"teleport"}\n',
                b'{"id":2,"verb":"query","u":"a"}\n',
                b'{"id":3,"verb":"ping"}\n',
            ], 4)
        assert replies[0]["error"] == "bad_request"
        assert replies[1]["id"] == 1
        assert replies[1]["error"] == "unknown_verb"
        assert replies[2]["id"] == 2
        assert replies[2]["error"] == "bad_request"
        assert replies[3] == {"id": 3, "ok": True, "result": "pong"}

    def test_stats_verb_document(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            client.query("a", "d")
            stats = client.stats()
            assert stats["scheme"] == "dual-i"
            assert stats["server"]["requests_total"] >= 1
            assert stats["server"]["connections_open"] == 1
            assert stats["server"]["uptime_seconds"] > 0
            assert stats["batcher"]["flushes"] >= 1
            assert stats["service"]["queries"] >= 1
            assert stats["service"]["uptime_seconds"] > 0
            # reset=True zeroes the *service* metrics for interval
            # measurement; server counters keep accumulating.
            client.stats(reset=True)
            after = client.stats()
            assert after["service"]["queries"] == 0
            assert after["server"]["requests_total"] >= 3

    def test_access_log_records_requests(self, tmp_path, diamond):
        log_file = tmp_path / "access.jsonl"
        index = build_index(diamond, scheme="dual-i")
        with serve(index, access_log=log_file) as handle, \
                ReachClient(port=handle.port) as client:
            client.query("a", "d")
            with pytest.raises(ServerReplyError):
                client.query("a", "ghost")
        records = [json.loads(line)
                   for line in log_file.read_text().splitlines()]
        assert {record["verb"] for record in records} == {"query"}
        assert {record["status"] for record in records} == \
            {"ok", "unknown_node"}
        assert all(record["pairs"] == 1 and record["ms"] >= 0
                   for record in records)

    def test_oversized_line_rejected(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        with serve(index, max_line_bytes=1024) as handle:
            giant = b'{"id":1,"verb":"query","u":"' + b"x" * 4096 + \
                b'","v":"d"}\n'
            replies = raw_exchange(handle.port, [giant], 1)
        assert replies[0]["error"] == "too_large"


# ---------------------------------------------------------------------
# resilience: probes, degraded mode, drain, oversized-line recovery
# ---------------------------------------------------------------------

class TestProbeVerbs:
    def test_health_and_ready_documents(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            health = client.call("health")
            assert health["status"] == "ok"
            assert health["reason"] is None
            assert health["uptime_seconds"] >= 0
            assert health["connections_open"] >= 1
            ready = client.call("ready")
            assert ready == {"ready": True, "degraded": False,
                             "scheme": "dual-i"}


class TestDegradedMode:
    def test_failed_reload_degrades_and_good_reload_clears(
            self, tmp_path, diamond):
        """A failed swap keeps the last good index serving, flips the
        server to ``degraded`` (visible in health/ready/stats), and a
        later successful swap clears the flag."""
        index = build_index(diamond, scheme="dual-i")
        good_file = tmp_path / "good.json"
        save_dual_index(index, good_file)
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            with pytest.raises(ServerReplyError) as info:
                client.reload(index=tmp_path / "missing.json")
            assert info.value.code == "reload_failed"
            health = client.call("health")
            assert health["status"] == "degraded"
            assert "reason" in health and health["reason"]
            assert client.call("ready")["degraded"] is True
            assert client.stats()["degraded"]
            # Still answering — on the last good index.
            assert client.query("a", "d") is True
            # A good swap clears degraded mode.
            swap = client.reload(index=good_file)
            assert swap["swapped"]
            assert client.call("health")["status"] == "ok"
            assert client.call("ready")["degraded"] is False
            assert client.stats()["degraded"] is None

    def test_corrupt_index_file_degrades_not_crashes(self, tmp_path,
                                                     diamond):
        index = build_index(diamond, scheme="dual-i")
        corrupt_file = tmp_path / "corrupt.json"
        save_dual_index(index, corrupt_file)
        blob = bytearray(corrupt_file.read_bytes())
        # Corrupt a digit inside the payload: still valid JSON, so the
        # load fails specifically on the content checksum.
        position = bytes(blob).index(b'"starts": [') + len('"starts": [')
        blob[position] = ord("7") if blob[position] != ord("7") \
            else ord("8")
        corrupt_file.write_bytes(bytes(blob))
        with serve(index) as handle, \
                ReachClient(port=handle.port) as client:
            with pytest.raises(ServerReplyError) as info:
                client.reload(index=corrupt_file)
            assert info.value.code == "reload_failed"
            assert "checksum" in info.value.message
            assert client.call("health")["status"] == "degraded"
            assert client.query("a", "d") is True


class TestOversizedLineRecovery:
    def test_connection_survives_a_giant_line(self, diamond):
        """One oversized request gets one ``too_large`` reply and the
        connection keeps serving subsequent requests."""
        index = build_index(diamond, scheme="dual-i")
        with serve(index, max_line_bytes=1024) as handle:
            giant = b'{"id":1,"verb":"query","u":"' + b"x" * 8192 + \
                b'","v":"d"}\n'
            follow_up = b'{"id":2,"verb":"ping"}\n'
            replies = raw_exchange(handle.port, [giant, follow_up], 2)
        assert replies[0]["error"] == "too_large"
        assert replies[1] == {"id": 2, "ok": True, "result": "pong"}

    def test_giant_line_without_newline_then_more_requests(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        with serve(index, max_line_bytes=512) as handle:
            with socket.create_connection(("127.0.0.1", handle.port),
                                          timeout=30.0) as sock:
                reader = sock.makefile("rb")
                # Dribble an over-limit line in pieces, then finish it.
                sock.sendall(b'{"id":1,"verb":"query","u":"' + b"y" * 700)
                first = json.loads(reader.readline())
                assert first["error"] == "too_large"
                sock.sendall(b'","v":"d"}\n')  # tail of the giant
                sock.sendall(b'{"id":2,"verb":"ping"}\n')
                second = json.loads(reader.readline())
                assert second == {"id": 2, "ok": True, "result": "pong"}


class TestGracefulShutdown:
    def test_stop_drains_inflight_replies(self, diamond):
        """Requests in flight when ``stop`` begins still get their
        replies before the connection closes."""
        index = build_index(diamond, scheme="dual-i")
        server = ReachServer(
            QueryService(index), scheme="dual-i",
            config=ServerConfig(max_batch=100_000, max_delay=0.2,
                                drain_timeout=5.0))
        handle = ServerThread(server).start()
        try:
            with socket.create_connection(("127.0.0.1", handle.port),
                                          timeout=30.0) as sock:
                reader = sock.makefile("rb")
                # Buffered behind the 200ms flush deadline...
                sock.sendall(b'{"id":1,"verb":"query","u":"a","v":"d"}\n')
                # ...wait until the server has it in flight, then stop
                # while the reply is still pending in the batcher.
                import time
                deadline = time.monotonic() + 10.0
                while not any(conn.inflight
                              for conn in server._connections):
                    assert time.monotonic() < deadline
                    time.sleep(0.002)
                handle.stop()
                reply = json.loads(reader.readline())
                assert reply == {"id": 1, "ok": True, "result": True}
                assert reader.readline() == b""  # then EOF
        finally:
            handle.stop()

    def test_stop_force_closes_after_drain_timeout(self, diamond):
        index = build_index(diamond, scheme="dual-i")
        server = ReachServer(
            QueryService(index), scheme="dual-i",
            config=ServerConfig(drain_timeout=0.0))
        handle = ServerThread(server).start()
        try:
            import time
            with socket.create_connection(("127.0.0.1", handle.port),
                                          timeout=30.0) as sock:
                deadline = time.monotonic() + 10.0
                while not server._connections:  # registered server-side
                    assert time.monotonic() < deadline
                    time.sleep(0.002)
                started = time.monotonic()
                handle.stop()
                assert time.monotonic() - started < 5.0
                assert sock.makefile("rb").readline() == b""
        finally:
            handle.stop()


# ---------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------

class TestSupervisor:
    def test_restarts_crashing_task_with_backoff(self):
        import asyncio

        from repro.server.server import Supervisor

        runs: list[int] = []
        delays: list[float] = []

        async def factory():
            runs.append(len(runs))
            if len(runs) < 4:
                raise RuntimeError("boom")

        supervisor = Supervisor(factory, max_restarts=8,
                                base_delay=0.01, max_delay=0.05,
                                jitter=0.0, seed=0,
                                on_restart=lambda exc, d, n:
                                delays.append(d))
        asyncio.run(supervisor.run())
        assert len(runs) == 4  # 3 crashes, then the clean exit
        assert supervisor.restarts == 3
        assert delays == [0.01, 0.02, 0.04]  # doubling, no jitter
        assert [kind for kind, _ in supervisor.crashes] == \
            [repr(RuntimeError("boom"))] * 3

    def test_gives_up_after_max_restarts(self):
        import asyncio

        from repro.server.server import Supervisor

        async def factory():
            raise RuntimeError("always down")

        supervisor = Supervisor(factory, max_restarts=2,
                                base_delay=0.005, jitter=0.0)
        with pytest.raises(RuntimeError, match="always down"):
            asyncio.run(supervisor.run())
        assert supervisor.restarts == 2

    def test_cancellation_passes_through(self):
        import asyncio

        from repro.server.server import Supervisor

        async def factory():
            await asyncio.sleep(3600)

        async def main():
            supervisor = Supervisor(factory, base_delay=0.01)
            task = asyncio.ensure_future(supervisor.run())
            await asyncio.sleep(0.05)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert supervisor.restarts == 0

        asyncio.run(main())

    def test_supervised_server_serves_after_crash_restart(self, diamond):
        """End to end: a supervised serving task crashes, the
        supervisor restarts it, and clients reach the new generation."""
        import asyncio
        import threading

        from repro.server.server import Supervisor

        index = build_index(diamond, scheme="dual-i")
        ports: list[int] = []
        crashed = threading.Event()
        serving = threading.Event()

        async def generation():
            server = ReachServer(QueryService(index), scheme="dual-i",
                                 config=ServerConfig())
            await server.start()
            ports.append(server.port)
            serving.set()
            try:
                if len(ports) == 1:
                    crashed.wait  # first generation dies young
                    await asyncio.sleep(0.05)
                    raise RuntimeError("simulated crash")
                while True:
                    await asyncio.sleep(3600)
            finally:
                crashed.set()
                await server.stop()

        supervisor = Supervisor(generation, max_restarts=3,
                                base_delay=0.01, jitter=0.0, seed=0)

        def run():
            try:
                asyncio.run(supervisor.run())
            except asyncio.CancelledError:
                pass

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        try:
            assert serving.wait(10.0)
            crashed.wait(10.0)
            serving.clear()
            assert serving.wait(10.0)  # the restarted generation
            assert supervisor.restarts == 1
            with ReachClient(port=ports[-1]) as client:
                assert client.query("a", "d") is True
                assert client.call("health")["status"] == "ok"
        finally:
            # The generation task never exits on its own; drop the
            # daemon thread (asyncio.run cleans up at interpreter exit).
            pass
