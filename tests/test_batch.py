"""Unit tests for vectorised batch queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import build_index
from repro.core.batch import BatchQuerier, reachable_batch
from repro.core.dual_i import DualIIndex
from repro.exceptions import QueryError
from repro.graph.generators import gnm_random_digraph, single_rooted_dag
from tests.conftest import sample_pairs


class TestQueryPairs:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scalar_queries(self, seed):
        g = gnm_random_digraph(60, 150, seed=seed)
        index = DualIIndex.build(g)
        pairs = sample_pairs(g, 500, seed)
        expected = [index.reachable(u, v) for u, v in pairs]
        assert reachable_batch(index, pairs) == expected

    def test_empty_batch(self, diamond):
        index = DualIIndex.build(diamond)
        assert reachable_batch(index, []) == []

    def test_unknown_node_raises(self, diamond):
        index = DualIIndex.build(diamond)
        with pytest.raises(QueryError):
            reachable_batch(index, [("a", "ghost")])

    def test_querier_reusable(self, diamond):
        querier = BatchQuerier(DualIIndex.build(diamond))
        first = querier.query_pairs([("a", "d")])
        second = querier.query_pairs([("d", "a"), ("a", "a")])
        assert first.tolist() == [True]
        assert second.tolist() == [False, True]


class TestReachabilityMatrix:
    def test_matches_scalar_cross_product(self):
        g = single_rooted_dag(80, 115, max_fanout=4, seed=1)
        index = DualIIndex.build(g)
        querier = BatchQuerier(index)
        sources = list(range(0, 80, 7))
        targets = list(range(0, 80, 5))
        matrix = querier.reachability_matrix(sources, targets)
        assert matrix.shape == (len(sources), len(targets))
        for i, u in enumerate(sources):
            for j, v in enumerate(targets):
                assert bool(matrix[i, j]) == index.reachable(u, v)

    def test_matrix_dtype(self, diamond):
        querier = BatchQuerier(DualIIndex.build(diamond))
        matrix = querier.reachability_matrix(["a"], ["d", "a"])
        assert matrix.dtype == np.bool_
        assert matrix.tolist() == [[True, True]]


class TestCyclicGraphs:
    def test_scc_members_vectorised(self, two_cycle_graph):
        index = DualIIndex.build(two_cycle_graph)
        pairs = [(0, 2), (2, 0), (0, 6), (6, 0), (4, 4)]
        assert reachable_batch(index, pairs) == [
            True, True, True, False, True]


class TestPerformanceShape:
    def test_batch_not_slower_than_scalar(self):
        """Sanity: the vectorised path beats the scalar loop on a large
        batch (allowing generous slack for CI noise).

        Both paths are warmed up first (the first vectorised call pays
        one-off ufunc/allocator setup) and the vectorised side keeps
        its best of three runs — a single scheduler hiccup on a busy
        CI box must not fail a shape assertion that is really about
        asymptotics, not microseconds.
        """
        import time

        g = single_rooted_dag(2000, 2600, max_fanout=5, seed=2)
        index = DualIIndex.build(g)
        pairs = sample_pairs(g, 50_000, 3)

        querier = BatchQuerier(index)
        sources = querier.components_of([u for u, _ in pairs])
        targets = querier.components_of([v for _, v in pairs])

        vector_answers = querier.query_components(sources, targets)

        vector_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            vector_answers = querier.query_components(sources, targets)
            vector_seconds = min(vector_seconds,
                                 time.perf_counter() - start)

        sample = pairs[:512]  # warm the scalar path's caches too
        [index.reachable(u, v) for u, v in sample]
        start = time.perf_counter()
        scalar_answers = [index.reachable(u, v) for u, v in pairs]
        scalar_seconds = time.perf_counter() - start

        assert vector_answers.tolist() == scalar_answers
        assert vector_seconds < scalar_seconds * 1.5


class TestBatchBackends:
    @pytest.mark.parametrize("backend", ["array", "packed", "bitpacked"])
    def test_batch_over_every_matrix_backend(self, backend):
        g = gnm_random_digraph(40, 110, seed=11)
        index = DualIIndex.build(g, matrix_backend=backend)
        pairs = sample_pairs(g, 300, 11)
        expected = [index.reachable(u, v) for u, v in pairs]
        assert reachable_batch(index, pairs) == expected

    @pytest.mark.parametrize("scheme",
                             ["dual-i", "dual-ii", "closure", "interval"])
    def test_querier_over_every_kernel_scheme(self, scheme):
        """BatchQuerier works on every scheme exposing label arrays."""
        g = gnm_random_digraph(50, 120, seed=4)
        index = build_index(g, scheme=scheme)
        pairs = sample_pairs(g, 400, 4)
        expected = [index.reachable(u, v) for u, v in pairs]
        assert BatchQuerier(index).query_pairs(pairs).tolist() == expected

    @pytest.mark.parametrize("scheme", ["2hop", "online-bfs", "grail"])
    def test_kernel_less_scheme_raises_type_error(self, scheme):
        g = gnm_random_digraph(20, 40, seed=1)
        index = build_index(g, scheme=scheme)
        assert index.label_arrays() is None
        with pytest.raises(TypeError, match="label arrays"):
            BatchQuerier(index)
        # ... but the one-shot helper transparently falls back.
        pairs = sample_pairs(g, 50, 2)
        expected = [index.reachable(u, v) for u, v in pairs]
        assert reachable_batch(index, pairs) == expected


class TestPublicSurface:
    def test_no_private_attribute_access(self):
        """Regression: the batch layer must rely only on the public
        ``label_arrays()`` protocol — no ``index._foo`` reaches into a
        scheme's internals (the pre-refactor implementation did)."""
        import inspect
        import re

        import repro.core.batch as batch_module

        source = inspect.getsource(batch_module)
        violations = re.findall(
            r"\b(?:index|self\.index)\._\w+|\barrays\._\w+", source)
        assert violations == []

    def test_matrix_unknown_node_raises(self, diamond):
        querier = BatchQuerier(DualIIndex.build(diamond))
        with pytest.raises(QueryError):
            querier.reachability_matrix(["a"], ["ghost"])
        with pytest.raises(QueryError):
            querier.reachability_matrix(["ghost"], ["a"])

    def test_label_arrays_cached_per_index(self, diamond):
        index = DualIIndex.build(diamond)
        assert index.label_arrays() is index.label_arrays()
