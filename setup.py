"""Shim for legacy editable installs in offline environments.

The canonical metadata lives in pyproject.toml; this file exists only so
``pip install -e . --no-use-pep517`` works where the ``wheel`` package is
unavailable (PEP 517 editable builds require bdist_wheel).
"""

from setuptools import setup

setup()
