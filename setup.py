"""Shim for legacy editable installs in offline environments.

The canonical metadata lives in pyproject.toml; this file exists only so
``pip install -e . --no-use-pep517`` works where the ``wheel`` package is
unavailable (PEP 517 editable builds require bdist_wheel).

It also hosts the *optional* compiled query kernel: when the
``REPRO_FAST_KERNEL`` environment variable is ``1``, the build includes
the ``repro.core._fastkernel`` C extension (the Dual-I inner loop with
the GIL released — see :mod:`repro.core.fastkernel`).  The extension is
marked optional: a missing or broken compiler degrades to the
pure-python kernel, never to a failed install.  Typical use::

    REPRO_FAST_KERNEL=1 python setup.py build_ext --inplace
"""

import os

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_FAST_KERNEL") == "1":
    from setuptools import Extension

    ext_modules.append(
        Extension(
            "repro.core._fastkernel",
            sources=["src/repro/core/_fastkernel.c"],
            optional=True,
        ))

setup(ext_modules=ext_modules)
