"""The ``kernel`` benchmark: per-query cost of the query kernels.

Times the paper's 100k-query workload through every evaluation path
the repo has, on one index, so the per-query ns are directly
comparable:

* ``scalar`` — the per-pair ``index.reachable(u, v)`` Python loop;
* ``batched-numpy`` — ``index.reachable_many(pairs)``: the allocating
  vectorised path (Python pair list in, fresh arrays at every step,
  Python bools out) that served JSON traffic before the fast kernel;
* ``fast-buffer`` — :class:`~repro.core.fastkernel.FastKernel` in
  pure-python mode, fed the *wire* input: one packed ``(u32, u32)``
  payload viewed with ``np.frombuffer`` into reused buffers, packed
  answer bitmap out;
* ``compiled`` — the same kernel dispatching to the optional
  ``repro.core._fastkernel`` C extension (row is marked skipped when
  the extension is not built).

Every path's answers are cross-checked before timing counts, so a
kernel cannot win by being wrong.  Each run appends one entry to
``BENCH_kernel.json`` (the ``BENCH_build.json`` trajectory pattern)
and the CI guard ``--assert-fast`` fails the build when the fast
buffer path stops beating the batched-NumPy baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bench.workloads import random_query_pairs
from repro.core.base import build_index
from repro.core.fastkernel import FastKernel, compiled_available
from repro.graph.generators import single_rooted_dag
from repro.server import binproto

__all__ = ["run_kernel_benchmark", "append_trajectory",
           "format_kernel_report", "SCHEMA"]

SCHEMA = "repro-bench-kernel/1"


def _best_of(func: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def run_kernel_benchmark(*, nodes: int = 600, edges: int | None = None,
                         seed: int | None = None,
                         scheme: str = "dual-i",
                         num_pairs: int = 100_000,
                         repeats: int = 5) -> dict[str, Any]:
    """One trajectory entry: per-kernel best-of-``repeats`` timings.

    The graph follows the Figure 11 quick-scale convention (edges =
    1.5x nodes, seed = nodes); the workload is ``num_pairs`` uniform
    random query pairs — the paper's 100k-query protocol by default.
    """
    edges = int(nodes * 1.5) if edges is None else edges
    seed = nodes if seed is None else seed
    graph = single_rooted_dag(nodes, edges, max_fanout=5, seed=seed)
    index = build_index(graph, scheme=scheme)
    pairs = random_query_pairs(graph, num_pairs, seed=seed + 1)
    arrays = index.label_arrays()
    if arrays is None:
        raise ValueError(
            f"scheme {scheme!r} has no label-array kernel to benchmark")
    payload = binproto.encode_pairs(pairs)
    kernel = FastKernel(arrays, capacity=num_pairs, use_compiled=False)

    # Correctness gate before any timing: every path must agree.
    batched = index.reachable_many(pairs)
    fast_bitmaps, total, positives = kernel.run_frames([payload])
    fast = binproto.unpack_bitmap(total, fast_bitmaps[0])
    if fast != [bool(a) for a in batched]:
        raise AssertionError(
            "fast-buffer kernel disagrees with the batched path")
    reach = index.reachable
    spot = min(2000, num_pairs)
    if [reach(u, v) for u, v in pairs[:spot]] != batched[:spot]:
        raise AssertionError(
            "scalar loop disagrees with the batched path")

    rows: list[dict[str, Any]] = []

    def record(name: str, seconds: float, mode: str | None = None,
               skipped: str | None = None) -> None:
        row: dict[str, Any] = {"kernel": name}
        if skipped is not None:
            row["skipped"] = skipped
        else:
            row["best_seconds"] = seconds
            row["ns_per_query"] = seconds / num_pairs * 1e9
            row["queries_per_second"] = (
                num_pairs / seconds if seconds > 0 else float("inf"))
        if mode is not None:
            row["mode"] = mode
        rows.append(row)

    record("scalar",
           _best_of(lambda: [reach(u, v) for u, v in pairs],
                    min(repeats, 3)))
    record("batched-numpy",
           _best_of(lambda: index.reachable_many(pairs), repeats))
    record("fast-buffer",
           _best_of(lambda: kernel.run_frames([payload]), repeats),
           mode=kernel.mode)
    if compiled_available() and scheme == "dual-i":
        compiled = FastKernel(arrays, capacity=num_pairs,
                              use_compiled=True)
        cb, ct, _ = compiled.run_frames([payload])
        if binproto.unpack_bitmap(ct, cb[0]) != fast:
            raise AssertionError(
                "compiled kernel disagrees with the pure-python path")
        record("compiled",
               _best_of(lambda: compiled.run_frames([payload]),
                        repeats),
               mode=compiled.mode)
    else:
        record("compiled", 0.0,
               skipped=("extension not built"
                        if scheme == "dual-i"
                        else f"compiled path covers dual-i only, "
                             f"not {scheme}"))

    def qps(name: str) -> float:
        return next(row["queries_per_second"] for row in rows
                    if row["kernel"] == name and "skipped" not in row)

    batched_qps = qps("batched-numpy")
    for row in rows:
        if "skipped" not in row:
            row["speedup_vs_batched"] = (
                row["queries_per_second"] / batched_qps
                if batched_qps > 0 else float("inf"))
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph": {"generator": "single_rooted_dag", "nodes": nodes,
                  "edges": graph.num_edges, "max_fanout": 5,
                  "seed": seed},
        "scheme": scheme,
        "num_pairs": num_pairs,
        "positives": positives,
        "repeats": repeats,
        "compiled_available": compiled_available(),
        "rows": rows,
        "fast_speedup_vs_batched": next(
            row["speedup_vs_batched"] for row in rows
            if row["kernel"] == "fast-buffer"),
    }


def append_trajectory(entry: dict[str, Any], path: Path) -> None:
    """Append ``entry`` to the ``BENCH_kernel.json`` trajectory at
    ``path`` (created — or reset, if unreadable/foreign — on demand)."""
    data: dict[str, Any] = {"schema": SCHEMA, "entries": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = None
        if (isinstance(existing, dict) and existing.get("schema") == SCHEMA
                and isinstance(existing.get("entries"), list)):
            data = existing
    data["entries"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def format_kernel_report(entry: dict[str, Any]) -> str:
    """Human-readable table for one kernel trajectory entry."""
    from repro.bench.reporting import format_markdown_table

    graph = entry["graph"]
    display = []
    for row in entry["rows"]:
        if "skipped" in row:
            display.append({"kernel": row["kernel"],
                            "ns_per_query": "-",
                            "queries_per_second": "-",
                            "speedup_vs_batched":
                                f"skipped: {row['skipped']}"})
        else:
            display.append({
                "kernel": row["kernel"],
                "ns_per_query": f"{row['ns_per_query']:,.0f}",
                "queries_per_second":
                    f"{row['queries_per_second']:,.0f}",
                "speedup_vs_batched":
                    f"{row['speedup_vs_batched']:.2f}x",
            })
    return "\n".join([
        f"kernel benchmark — single_rooted_dag({graph['nodes']}, "
        f"{graph['edges']}, seed={graph['seed']}), "
        f"scheme={entry['scheme']}, {entry['num_pairs']:,} pairs "
        f"({entry['positives']:,} positive), best of "
        f"{entry['repeats']}",
        "",
        format_markdown_table(
            display, ["kernel", "ns_per_query", "queries_per_second",
                      "speedup_vs_batched"]),
        "",
        f"[fast buffer path: "
        f"{entry['fast_speedup_vs_batched']:.2f}x the batched-NumPy "
        f"baseline on {entry['num_pairs']:,} pairs]",
    ])
