"""Report rendering: markdown tables and CSV for experiment results.

Experiments produce lists of flat dictionaries (one per series point);
this module renders them the way the paper presents its tables/figures —
rows of parameter settings, columns of scheme measurements.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Mapping, Sequence

__all__ = ["format_markdown_table", "format_csv", "format_kv_table",
           "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly cell rendering (floats trimmed, None blank)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_markdown_table(rows: Sequence[Mapping[str, Any]],
                          columns: Sequence[str] | None = None,
                          title: str | None = None) -> str:
    """Render rows as a GitHub-flavoured markdown table.

    Parameters
    ----------
    rows: flat dictionaries; missing keys render blank.
    columns: column order; defaults to first-row key order augmented with
        any keys appearing later.
    title: optional heading line prepended to the table.
    """
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    if not columns:
        lines.append("(no data)")
        return "\n".join(lines)
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(format_value(row.get(c)) for c in columns)
            + " |")
    return "\n".join(lines)


def format_kv_table(mapping: Mapping[str, Any],
                    title: str | None = None) -> str:
    """Render one flat mapping as a two-column metric/value table.

    The rendering used for single-snapshot reports — most prominently
    :meth:`repro.core.service.ServiceMetrics.as_dict` in the
    ``python -m repro.bench serve`` output.
    """
    rows = [{"metric": key, "value": value}
            for key, value in mapping.items()]
    return format_markdown_table(rows, ["metric", "value"], title=title)


def format_csv(rows: Sequence[Mapping[str, Any]],
               columns: Sequence[str] | None = None) -> str:
    """Render rows as CSV text."""
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns),
                            extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c, "") for c in columns})
    return buffer.getvalue()
