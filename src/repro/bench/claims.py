"""Executable fidelity claims: the paper's shapes as automated checks.

EXPERIMENTS.md asserts that this reproduction preserves the paper's
qualitative results (orderings, factors, crossovers).  This module makes
those assertions *executable*: each claim is a predicate over the rows
of one experiment, and :func:`run_claims` re-runs the experiments and
grades every claim PASS/FAIL — `python -m repro.bench claims` from the
command line.

Claims are deliberately about *shape*, with slack factors wide enough to
absorb machine noise but tight enough that a real regression (or a buggy
change to a scheme) trips them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bench.experiments import ExperimentResult

__all__ = ["ClaimResult", "CLAIMS", "evaluate_claims", "run_claims"]


@dataclass(frozen=True)
class ClaimResult:
    """Verdict for one fidelity claim."""

    claim_id: str
    description: str
    passed: bool
    details: str

    def summary(self) -> str:
        """One-line rendering."""
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] {self.claim_id}: {self.description} — " \
               f"{self.details}"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _column(rows, key) -> list[float]:
    return [float(row[key]) for row in rows if row.get(key) is not None]


# ----------------------------------------------------------------------
# claim predicates (each takes the named experiment's result)
# ----------------------------------------------------------------------
def claim_preprocessing_ratios_fall(fig8: ExperimentResult) -> ClaimResult:
    """Fig 8 (top): node/edge reduction ratios fall as density rises."""
    rows = fig8.rows
    ok = (rows[-1]["node_ratio"] < rows[0]["node_ratio"]
          and rows[-1]["edge_ratio"] < rows[0]["edge_ratio"])
    return ClaimResult(
        "fig8-ratios",
        "SCC+MEG reduction deepens with density",
        ok,
        f"node ratio {rows[0]['node_ratio']:.2f}→"
        f"{rows[-1]['node_ratio']:.2f}, edge ratio "
        f"{rows[0]['edge_ratio']:.2f}→{rows[-1]['edge_ratio']:.2f}")


def claim_dual_indexing_same_order_as_interval(
        fig8: ExperimentResult) -> ClaimResult:
    """Dual labeling builds within one order of magnitude of Interval."""
    interval = _mean(_column(fig8.rows, "interval_index_ms"))
    dual_i = _mean(_column(fig8.rows, "dual-i_index_ms"))
    dual_ii = _mean(_column(fig8.rows, "dual-ii_index_ms"))
    ratio = max(dual_i, dual_ii) / interval if interval else float("inf")
    return ClaimResult(
        "indexing-comparable",
        "Dual-I/Dual-II indexing within 10x of Interval",
        ratio < 10.0,
        f"worst dual/interval build ratio {ratio:.1f}x")


def claim_2hop_orders_slower(fig8: ExperimentResult) -> ClaimResult:
    """2-hop labeling costs a multiple of every other scheme's build.

    Threshold 5x: at paper scale the measured gap is 20-200x
    (EXPERIMENTS.md); quick scale's tiny, heavily-condensed random
    graphs compress it, and 5x still separates the greedy cover from
    any of the near-linear labelings.
    """
    interval = _mean(_column(fig8.rows, "interval_index_ms"))
    two_hop = _mean(_column(fig8.rows, "2hop_index_ms"))
    ratio = two_hop / interval if interval else float("inf")
    return ClaimResult(
        "2hop-slow",
        "2-hop indexing ≥ 5x slower than Interval",
        ratio >= 5.0,
        f"2hop/interval build ratio {ratio:.0f}x")


def claim_dual_i_fastest_labeled_queries(
        fig8: ExperimentResult) -> ClaimResult:
    """Dual-I has the lowest mean query time among labeled schemes."""
    dual_i = _mean(_column(fig8.rows, "dual-i_query_ms"))
    others = {
        "interval": _mean(_column(fig8.rows, "interval_query_ms")),
        "dual-ii": _mean(_column(fig8.rows, "dual-ii_query_ms")),
    }
    # 10% slack on the closest competitor absorbs timing noise.
    ok = all(dual_i <= value * 1.1 for value in others.values())
    return ClaimResult(
        "dual-i-query-wins",
        "Dual-I mean query time beats Interval and Dual-II",
        ok,
        f"dual-i {dual_i:.1f}ms vs " + ", ".join(
            f"{name} {value:.1f}ms" for name, value in others.items()))


def claim_dual_i_space_grows_dual_ii_flat(
        fig12: ExperimentResult) -> ClaimResult:
    """Fig 12: Dual-I space grows steeply with density; Dual-II does
    not, and stays below Dual-I throughout."""
    dual_i = _column(fig12.rows, "dual-i_space_bytes")
    dual_ii = _column(fig12.rows, "dual-ii_space_bytes")
    growth_i = dual_i[-1] / dual_i[0] if dual_i[0] else float("inf")
    growth_ii = dual_ii[-1] / dual_ii[0] if dual_ii[0] else float("inf")
    below = all(b < a for a, b in zip(dual_i, dual_ii))
    ok = growth_i > 2.0 and growth_ii < growth_i and below
    return ClaimResult(
        "space-tradeoff",
        "Dual-I space grows ~t²; Dual-II stays small and below it",
        ok,
        f"dual-i x{growth_i:.1f} vs dual-ii x{growth_ii:.1f} over the "
        f"density sweep; dual-ii below dual-i at every point: {below}")


def claim_dual_i_near_closure_queries(
        fig13: ExperimentResult) -> ClaimResult:
    """Fig 13: Dual-I query time within 4x of the closure matrix.

    The paper's "barely worse" lands at 1.2-2x at paper scale; the 4x
    bound leaves room for quick-scale timing noise while still tripping
    if Dual-I's query path stopped being O(1).
    """
    closure = _mean(_column(fig13.rows, "closure_query_ms"))
    dual_i = _mean(_column(fig13.rows, "dual-i_query_ms"))
    ratio = dual_i / closure if closure else float("inf")
    return ClaimResult(
        "near-closure",
        "Dual-I query within 4x of the transitive-closure matrix",
        ratio < 4.0,
        f"dual-i/closure query ratio {ratio:.2f}x")


def claim_table2_counts_match_paper(
        table2: ExperimentResult) -> ClaimResult:
    """Table 2: DAG/MEG counts within 2% of the paper's."""
    worst = 0.0
    for row in table2.rows:
        for measured, target in (("V_DAG", "paper_V_DAG"),
                                 ("E_DAG", "paper_E_DAG"),
                                 ("E_MEG", "paper_E_MEG")):
            error = abs(row[measured] - row[target]) / row[target]
            worst = max(worst, error)
    return ClaimResult(
        "table2-calibration",
        "dataset stand-ins match the paper's preprocessing counts",
        worst <= 0.02,
        f"worst relative error {100 * worst:.2f}%")


def claim_table2_dual_i_beats_interval(
        table2: ExperimentResult) -> ClaimResult:
    """Table 2: Dual-I query time at or below Interval on every dataset.

    15% slack per dataset: at quick scale the workloads are small enough
    that single-run timings wobble; at paper scale (100k queries) Dual-I
    wins by 25-40% (EXPERIMENTS.md), well clear of the slack.
    """
    losses = [row["graph"] for row in table2.rows
              if row["dual-i_query_ms"] > 1.15 * row["interval_query_ms"]]
    return ClaimResult(
        "table2-query-order",
        "Dual-I queries no slower than Interval on every real graph",
        not losses,
        "all datasets" if not losses else f"lost on {losses}")


def claim_meg_reduces_t(ablation: ExperimentResult) -> ClaimResult:
    """Section 5: MEG never increases t or the transitive link table."""
    bad = [row["m"] for row in ablation.rows
           if row["meg_t"] > row["no_meg_t"]
           or row["meg_transitive_links"] > row["no_meg_transitive_links"]]
    return ClaimResult(
        "meg-helps",
        "MEG preprocessing never increases t or |T|",
        not bad,
        "all points" if not bad else f"violated at m={bad}")


def claim_tlc_backend_spectrum(ablation: ExperimentResult) -> ClaimResult:
    """Section 4: the search tree is smaller than the matrix, the
    matrix answers queries faster than the search tree."""
    space_ok = all(row["dual-ii_space_bytes"] < row["dual-i_space_bytes"]
                   for row in ablation.rows)
    matrix_q = _mean(_column(ablation.rows, "dual-i_query_ms"))
    tree_q = _mean(_column(ablation.rows, "dual-ii_query_ms"))
    ok = space_ok and matrix_q <= tree_q * 1.1
    return ClaimResult(
        "tlc-spectrum",
        "TLC matrix wins query time, search tree wins space",
        ok,
        f"space ordering holds: {space_ok}; query "
        f"{matrix_q:.1f}ms (matrix) vs {tree_q:.1f}ms (tree)")


#: claim_id -> (experiment name, predicate).
CLAIMS: dict[str, tuple[str, Callable[[ExperimentResult], ClaimResult]]] = {
    "fig8-ratios": ("fig8", claim_preprocessing_ratios_fall),
    "indexing-comparable": ("fig8",
                            claim_dual_indexing_same_order_as_interval),
    "2hop-slow": ("fig8", claim_2hop_orders_slower),
    "dual-i-query-wins": ("fig8", claim_dual_i_fastest_labeled_queries),
    "space-tradeoff": ("fig12", claim_dual_i_space_grows_dual_ii_flat),
    "near-closure": ("fig13", claim_dual_i_near_closure_queries),
    "table2-calibration": ("table2", claim_table2_counts_match_paper),
    "table2-query-order": ("table2", claim_table2_dual_i_beats_interval),
    "meg-helps": ("ablation_meg", claim_meg_reduces_t),
    "tlc-spectrum": ("ablation_tlc", claim_tlc_backend_spectrum),
}


def evaluate_claims(results: dict[str, ExperimentResult]
                    ) -> list[ClaimResult]:
    """Grade every claim whose experiment is present in ``results``."""
    verdicts = []
    for claim_id, (experiment, predicate) in CLAIMS.items():
        if experiment in results:
            verdicts.append(predicate(results[experiment]))
    return verdicts


def run_claims(scale: str = "quick") -> list[ClaimResult]:
    """Run the needed experiments at ``scale`` and grade all claims."""
    from repro.bench.runner import run_experiment

    needed = sorted({experiment for experiment, _ in CLAIMS.values()})
    # At quick scale, bump the query counts: timing-based claims need
    # workloads large enough that per-point measurements escape noise.
    boosts = {}
    if scale == "quick":
        boosts = {"fig8": {"num_queries": 20_000},
                  "fig13": {"num_queries": 20_000},
                  "table2": {"num_queries": 20_000}}
    results = {name: run_experiment(name, scale=scale,
                                    **boosts.get(name, {}))
               for name in needed}
    return evaluate_claims(results)
