"""Construction benchmark: ``python -m repro.bench build``.

Times end-to-end index *construction* (every phase of
:func:`repro.core.pipeline.run_pipeline`) for each backend on one graph
— by default the Figure 11 quick-scale largest graph
(``single_rooted_dag(600, 900, max_fanout=5, seed=600)``, the paper's
density-1.5 scaling family) — and appends the measurement to a
``BENCH_build.json`` trajectory file so build-time regressions show up
as a series over commits.

Measurement protocol
--------------------
* each backend runs as one consecutive best-of-``repeats`` batch (the
  timeit/pytest-benchmark convention): steady-state per backend, no
  cross-backend cache pollution inside a sample;
* per-phase and total times are best-of wall clock (allocation noise
  and GC pauses only ever inflate a sample);
* the backends' outputs are cross-checked every round (``t`` and the
  closed-link count must agree) — a benchmark that silently compared
  different answers would be worthless.

Trajectory schema (``bench-build/v1``)::

    {"schema": "bench-build/v1",
     "entries": [{"timestamp": ..., "graph": {...}, "repeats": N,
                  "runs": [{"backend": ..., "phase_seconds": {...},
                            "total_seconds": ...}, ...],
                  "speedup": ...}, ...]}
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Sequence

from repro.core.pipeline import run_pipeline
from repro.graph.generators import single_rooted_dag

__all__ = ["SCHEMA", "append_trajectory", "format_build_report",
           "run_build_benchmark"]

SCHEMA = "bench-build/v1"

#: Figure 11 quick-scale largest graph (sizes (200, 400, 600), density
#: 1.5, ``seed = 0 + n``) — the acceptance target of the fast backend.
DEFAULT_NODES = 600


def run_build_benchmark(*, nodes: int = DEFAULT_NODES,
                        edges: int | None = None, max_fanout: int = 5,
                        seed: int | None = None,
                        backends: Sequence[str] = ("python", "fast"),
                        repeats: int = 7,
                        use_meg: bool = True) -> dict[str, Any]:
    """Benchmark pipeline construction across ``backends``; return one
    trajectory entry (see module docstring for the schema).

    ``edges`` defaults to the Figure 11 density (``1.5 * nodes``) and
    ``seed`` to the Figure 11 convention (``seed0 + nodes`` with
    ``seed0 = 0``).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    edges = int(1.5 * nodes) if edges is None else edges
    seed = nodes if seed is None else seed
    graph = single_rooted_dag(nodes, edges, max_fanout=max_fanout,
                              seed=seed)

    totals: dict[str, float] = {b: float("inf") for b in backends}
    phases: dict[str, dict[str, float]] = {b: {} for b in backends}
    signature: dict[str, tuple[int, int]] = {}
    for backend in backends:
        for _ in range(repeats):
            started = time.perf_counter()
            pipeline = run_pipeline(graph, use_meg=use_meg,
                                    backend=backend)
            elapsed = time.perf_counter() - started
            totals[backend] = min(totals[backend], elapsed)
            best = phases[backend]
            for phase, seconds in pipeline.phase_seconds.items():
                known = best.get(phase)
                best[phase] = (seconds if known is None
                               else min(known, seconds))
            sig = (pipeline.t, pipeline.num_transitive_links)
            previous = signature.setdefault(backend, sig)
            if previous != sig:
                raise AssertionError(
                    f"backend {backend!r} is non-deterministic: "
                    f"{previous} vs {sig}")
    if len(set(signature.values())) > 1:
        raise AssertionError(
            f"backends disagree on (t, transitive_links): {signature}")

    runs = [{"backend": backend,
             "phase_seconds": dict(phases[backend]),
             "total_seconds": totals[backend]} for backend in backends]
    entry: dict[str, Any] = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "graph": {"family": "single_rooted_dag", "nodes": nodes,
                  "edges": graph.num_edges, "max_fanout": max_fanout,
                  "seed": seed, "use_meg": use_meg},
        "repeats": repeats,
        "t": signature[backends[0]][0],
        "transitive_links": signature[backends[0]][1],
        "runs": runs,
    }
    if "python" in totals and "fast" in totals:
        entry["speedup"] = totals["python"] / totals["fast"]
    return entry


def append_trajectory(entry: dict[str, Any], path: Path) -> None:
    """Append ``entry`` to the ``BENCH_build.json`` trajectory at
    ``path`` (created — or reset, if unreadable/foreign — on demand)."""
    data: dict[str, Any] = {"schema": SCHEMA, "entries": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = None
        if (isinstance(existing, dict) and existing.get("schema") == SCHEMA
                and isinstance(existing.get("entries"), list)):
            data = existing
    data["entries"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def format_build_report(entry: dict[str, Any]) -> str:
    """Human-readable per-phase table for one trajectory entry."""
    graph = entry["graph"]
    lines = [f"build benchmark — single_rooted_dag("
             f"{graph['nodes']}, {graph['edges']}, "
             f"max_fanout={graph['max_fanout']}, seed={graph['seed']})"
             f"  use_meg={graph['use_meg']}  "
             f"best of {entry['repeats']}"]
    phase_names: list[str] = []
    for run in entry["runs"]:
        for phase in run["phase_seconds"]:
            if phase not in phase_names:
                phase_names.append(phase)
    header = f"{'phase':<30s}" + "".join(
        f"{run['backend']:>12s}" for run in entry["runs"])
    lines.append(header)
    for phase in phase_names:
        row = f"{phase:<30s}"
        for run in entry["runs"]:
            seconds = run["phase_seconds"].get(phase)
            row += ("         n/a" if seconds is None
                    else f"{seconds * 1e3:10.3f}ms")
        lines.append(row)
    row = f"{'total':<30s}"
    for run in entry["runs"]:
        row += f"{run['total_seconds'] * 1e3:10.3f}ms"
    lines.append(row)
    if "speedup" in entry:
        lines.append(f"speedup (python/fast): {entry['speedup']:.2f}x")
    return "\n".join(lines)
