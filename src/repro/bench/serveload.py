"""The ``serve-load`` benchmark: gateway throughput under load.

Measures end-to-end served throughput — TCP framing, protocol parsing,
micro-batching, kernel, reply — of the :mod:`repro.server` gateway on
the Figure 11 quick-scale graph, comparing the **micro-batched**
configuration against the **one-query-per-request** baseline
(``max_batch=1``, i.e. every request flushes alone) at several
connection counts.  The headline number is the batched/unbatched
speedup at the highest concurrency: it quantifies exactly what the
cross-connection batcher buys, because both configurations run the
same server code, kernels, and load generator.

Each run appends one entry to ``BENCH_serve.json`` (same trajectory
pattern as ``BENCH_build.json``), so serving-throughput regressions
show up over commits.  ``--smoke`` runs the CI gate instead: a short
low-concurrency drive that must complete with zero protocol errors, at
least one multi-query flush (proof that cross-connection coalescing
happened), and one successful hot ``reload``.

``--workers N`` switches both modes to the multi-process worker fleet
(``repro-reach serve --workers N``): the benchmark
(:func:`run_worker_scaling_benchmark`) measures served throughput at
1, 2, … N workers and records the scaling ratio next to
``os.cpu_count()`` — the ratio is capacity-bound by physical cores, so
the trajectory stores both and the smoke gate
(:func:`run_fleet_smoke`) asserts a **core-aware** floor rather than a
fixed multiple.  The fleet smoke also differentially verifies every
answer, proves more than one worker actually served, hot-swaps a
generation across the whole fleet, and scans ``/dev/shm`` for leaked
index segments after shutdown.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

import repro
from repro.bench.workloads import random_query_pairs
from repro.core.base import build_index
from repro.core.service import QueryService
from repro.core.shm import list_segments
from repro.graph.generators import single_rooted_dag
from repro.graph.io import write_edge_list
from repro.server.client import ReachClient, ServerReplyError
from repro.server.loadgen import run_loadgen
from repro.server.server import ReachServer, ServerConfig, ServerThread

__all__ = ["run_serve_load_benchmark", "run_serve_smoke",
           "run_worker_scaling_benchmark", "run_fleet_smoke",
           "run_protocol_benchmark", "format_protocol_report",
           "run_obs_overhead_benchmark", "format_obs_overhead_report",
           "run_tenant_benchmark", "run_tenant_smoke",
           "format_tenant_report",
           "expected_scaling", "format_scaling_report",
           "append_trajectory", "format_serve_report", "SCHEMA"]

SCHEMA = "repro-bench-serve/1"


def _make_graph(nodes: int, edges: int | None, seed: int | None):
    """The build-bench convention: Figure 11 density and seeding."""
    edges = int(nodes * 1.5) if edges is None else edges
    seed = nodes if seed is None else seed
    return single_rooted_dag(nodes, edges, max_fanout=5, seed=seed), seed


def _start_server(index, scheme: str, *, max_batch: int,
                  max_delay: float, policy: str = "block",
                  max_pending: int = 65536) -> ServerThread:
    config = ServerConfig(max_batch=max_batch, max_delay=max_delay,
                          policy=policy, max_pending=max_pending)
    server = ReachServer(QueryService(index), scheme=scheme,
                         config=config)
    return ServerThread(server).start()


@contextmanager
def _server_process(graph_file: Path, scheme: str, *, max_batch: int,
                    max_delay: float, pipeline: int,
                    connections: int,
                    workers: int = 1,
                    tenants: "Sequence[tuple[str, Path]] | None" = None,
                    extra_args: Sequence[str] = (),
                    ) -> Iterator[int]:
    """``repro-reach serve`` in a subprocess, yielding its bound port.

    The benchmark measures the gateway from a *separate* interpreter so
    the load generator and the server do not share one GIL — in-process
    the two fight for the same core and the measured ratio is mostly
    scheduler noise.  ``workers > 1`` serves through the multi-process
    fleet instead of the single in-process server.  ``tenants`` adds
    ``--tenant NAME=GRAPH`` catalog entries (ids 1, 2, ... in order);
    ``extra_args`` appends raw ``serve`` flags (the obs-overhead
    benchmark's SLO/flight switches).
    """
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    command = [
        sys.executable, "-m", "repro.cli", "serve", str(graph_file),
        "--scheme", scheme, "--port", "0",
        "--workers", str(workers),
        "--max-batch", str(max_batch),
        "--max-delay-ms", str(max_delay * 1000.0),
        "--max-pending", "65536",
        # Headroom over the generator's total in-flight window.
        "--max-conn-inflight", str(max(64, 2 * pipeline)),
        "--max-request-pairs", "65536"]
    for name, tenant_graph in (tenants or ()):
        command += ["--tenant", f"{name}={tenant_graph}"]
    command += list(extra_args)
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        assert proc.stdout is not None
        banner = proc.stdout.readline()  # blocks until the bind print
        match = re.search(r" on \S+:(\d+)", banner)
        if match is None:
            proc.kill()
            rest = proc.stdout.read()
            raise RuntimeError(
                f"server subprocess failed to start: {banner}{rest}")
        yield int(match.group(1))
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def run_serve_load_benchmark(*, nodes: int = 600, edges: int | None = None,
                             seed: int | None = None,
                             scheme: str = "dual-i",
                             connections: Sequence[int] = (8, 32),
                             duration: float = 2.0, pipeline: int = 16,
                             max_batch: int = 512,
                             max_delay: float = 0.002,
                             num_pairs: int = 20_000) -> dict[str, Any]:
    """Throughput/latency vs. concurrency, batched vs. unbatched.

    Returns one trajectory entry: per-(config, concurrency) rows plus
    the batched/unbatched speedup at the highest connection count.
    """
    graph, seed = _make_graph(nodes, edges, seed)
    pairs = random_query_pairs(graph, num_pairs, seed=seed + 1)
    configs = (
        ("batched", max_batch, max_delay),
        ("unbatched", 1, 0.0),
    )
    rows: list[dict[str, Any]] = []
    with tempfile.TemporaryDirectory() as tmp:
        graph_file = Path(tmp) / "graph.txt"
        write_edge_list(graph, graph_file)
        for label, config_batch, config_delay in configs:
            with _server_process(graph_file, scheme,
                                 max_batch=config_batch,
                                 max_delay=config_delay,
                                 pipeline=pipeline,
                                 connections=max(connections)) as port:
                for conns in connections:
                    with ReachClient(port=port) as client:
                        # Drain the server's latency/stage histograms so
                        # this row's percentiles cover only its drive.
                        client.metrics(reset=True)
                    # 1-in-4 latency sampling keeps the generator's
                    # per-reply cost off the throughput measurement and
                    # matches how the trajectory's earlier entries were
                    # recorded (server-side stage percentiles carry the
                    # unsampled tail).
                    result = run_loadgen(
                        "127.0.0.1", port, pairs,
                        connections=conns, duration=duration,
                        pipeline=pipeline, batch_size=1,
                        latency_sample=4)
                    row = {"config": label, "max_batch": config_batch,
                           "max_delay_ms": config_delay * 1000.0,
                           **result.as_dict()}
                    with ReachClient(port=port) as client:
                        row["server_stages"] = client.stats()["stages"]
                    rows.append(row)
                with ReachClient(port=port) as client:
                    batcher = client.stats()["batcher"]
            for row in rows:
                if row["config"] == label \
                        and "mean_flush_pairs" not in row:
                    row["mean_flush_pairs"] = \
                        batcher["mean_flush_pairs"]
                    row["multi_query_flushes"] = \
                        batcher["multi_query_flushes"]
    top = max(connections)

    def qps(config: str) -> float:
        return next(row["queries_per_second"] for row in rows
                    if row["config"] == config
                    and row["connections"] == top)

    batched_qps, unbatched_qps = qps("batched"), qps("unbatched")
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "graph": {"generator": "single_rooted_dag", "nodes": nodes,
                  "edges": graph.num_edges, "max_fanout": 5,
                  "seed": seed},
        "scheme": scheme,
        "duration_seconds": duration,
        "pipeline": pipeline,
        "rows": rows,
        "top_connections": top,
        "batched_qps": batched_qps,
        "unbatched_qps": unbatched_qps,
        "speedup": (batched_qps / unbatched_qps
                    if unbatched_qps > 0 else float("inf")),
    }


def run_protocol_benchmark(*, nodes: int = 600,
                           edges: int | None = None,
                           seed: int | None = None,
                           scheme: str = "dual-i",
                           connections: int = 32,
                           duration: float = 2.0, pipeline: int = 16,
                           batch_size: int = 16, max_batch: int = 512,
                           max_delay: float = 0.002,
                           num_pairs: int = 20_000) -> dict[str, Any]:
    """JSON vs. binary wire framing through one server process.

    Both drives hit the *same* subprocess gateway (binary is negotiated
    per connection, so one server speaks both), with the same pair
    pool, connection count, pipeline depth, and pairs-per-request — the
    measured ratio isolates the wire protocol + kernel path: JSON
    parse/serialize plus the allocating batch kernel against
    ``np.frombuffer`` framing plus the buffer-reusing
    :class:`~repro.core.fastkernel.FastKernel`.  Each protocol gets an
    unrecorded half-second warmup so the first-measured protocol does
    not pay the server's cold start.
    """
    graph, seed = _make_graph(nodes, edges, seed)
    pairs = random_query_pairs(graph, num_pairs, seed=seed + 1)
    rows: list[dict[str, Any]] = []
    with tempfile.TemporaryDirectory() as tmp:
        graph_file = Path(tmp) / "graph.txt"
        write_edge_list(graph, graph_file)
        with _server_process(graph_file, scheme, max_batch=max_batch,
                             max_delay=max_delay, pipeline=pipeline,
                             connections=connections) as port:
            for protocol in ("json", "binary"):
                run_loadgen("127.0.0.1", port, pairs,
                            connections=min(connections, 4),
                            duration=0.5, pipeline=pipeline,
                            batch_size=batch_size, latency_sample=4,
                            protocol=protocol)
                with ReachClient(port=port) as client:
                    client.metrics(reset=True)
                result = run_loadgen(
                    "127.0.0.1", port, pairs,
                    connections=connections, duration=duration,
                    pipeline=pipeline, batch_size=batch_size,
                    latency_sample=4, protocol=protocol)
                row = {"protocol": protocol, **result.as_dict()}
                with ReachClient(port=port) as client:
                    row["server_stages"] = client.stats()["stages"]
                rows.append(row)

    def qps(protocol: str) -> float:
        return next(row["queries_per_second"] for row in rows
                    if row["protocol"] == protocol)

    json_qps, binary_qps = qps("json"), qps("binary")
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "protocol",
        "graph": {"generator": "single_rooted_dag", "nodes": nodes,
                  "edges": graph.num_edges, "max_fanout": 5,
                  "seed": seed},
        "scheme": scheme,
        "duration_seconds": duration,
        "pipeline": pipeline,
        "connections": connections,
        "batch_size": batch_size,
        "rows": rows,
        "json_qps": json_qps,
        "binary_qps": binary_qps,
        "speedup": (binary_qps / json_qps if json_qps > 0
                    else float("inf")),
    }


def format_protocol_report(entry: dict[str, Any]) -> str:
    """Human-readable table for one protocol trajectory entry."""
    from repro.bench.reporting import format_markdown_table

    graph = entry["graph"]
    return "\n".join([
        f"wire-protocol benchmark — single_rooted_dag("
        f"{graph['nodes']}, {graph['edges']}, seed={graph['seed']}), "
        f"scheme={entry['scheme']}, {entry['duration_seconds']}s per "
        f"point, {entry['connections']} connections, "
        f"pipeline={entry['pipeline']}, "
        f"{entry['batch_size']} pairs/request",
        "",
        format_markdown_table(
            entry["rows"],
            ["protocol", "queries", "queries_per_second", "errors",
             "latency_p50_ms", "latency_p95_ms", "latency_p99_ms"]),
        "",
        f"[binary framing speedup at {entry['connections']} "
        f"connections: {entry['speedup']:.2f}x "
        f"({entry['binary_qps']:,.0f} vs {entry['json_qps']:,.0f} "
        f"queries/s over JSON)]",
    ])


def run_obs_overhead_benchmark(*, nodes: int = 600,
                               edges: int | None = None,
                               seed: int | None = None,
                               scheme: str = "dual-i",
                               connections: int = 32,
                               duration: float = 2.0,
                               pipeline: int = 16,
                               batch_size: int = 16,
                               max_batch: int = 512,
                               max_delay: float = 0.002,
                               num_pairs: int = 20_000
                               ) -> dict[str, Any]:
    """Served throughput with the full operations plane on vs. off.

    Three measured rows over the same graph, pool, and gateway
    configuration:

    * ``off``       — plain server, untraced drive (the baseline);
    * ``on``        — SLO engine (availability+latency objectives on
      every entry) plus the flight recorder spilling to disk, untraced
      drive: the *ambient* cost every request pays;
    * ``on+trace``  — same server, every request carrying a
      client-minted trace id: ambient cost plus the per-request trace
      echo/exemplar path.

    The acceptance bar is the ambient row: ``overhead_percent``
    (off→on throughput loss) must stay within ~3%.  The traced row is
    recorded alongside because tracing is opt-in per request — its
    cost rides only on traced traffic.
    """
    graph, seed = _make_graph(nodes, edges, seed)
    pairs = random_query_pairs(graph, num_pairs, seed=seed + 1)
    rows: list[dict[str, Any]] = []

    def drive(label: str, port: int, *, trace: bool) -> None:
        run_loadgen("127.0.0.1", port, pairs,
                    connections=min(connections, 4), duration=0.5,
                    pipeline=pipeline, batch_size=batch_size,
                    latency_sample=4, trace=trace)
        with ReachClient(port=port) as client:
            client.metrics(reset=True)
        result = run_loadgen(
            "127.0.0.1", port, pairs, connections=connections,
            duration=duration, pipeline=pipeline,
            batch_size=batch_size, latency_sample=4, trace=trace)
        row = {"config": label, "traced": trace, **result.as_dict()}
        with ReachClient(port=port) as client:
            row["server_stages"] = client.stats()["stages"]
        rows.append(row)

    with tempfile.TemporaryDirectory() as tmp:
        graph_file = Path(tmp) / "graph.txt"
        write_edge_list(graph, graph_file)
        with _server_process(graph_file, scheme, max_batch=max_batch,
                             max_delay=max_delay, pipeline=pipeline,
                             connections=connections) as port:
            drive("off", port, trace=False)
        plane = ("--slo-availability", "0.999",
                 "--slo-latency-ms", "25",
                 "--flight-dir", str(Path(tmp) / "flightrec"))
        with _server_process(graph_file, scheme, max_batch=max_batch,
                             max_delay=max_delay, pipeline=pipeline,
                             connections=connections,
                             extra_args=plane) as port:
            drive("on", port, trace=False)
            drive("on+trace", port, trace=True)

    def qps(label: str) -> float:
        return next(row["queries_per_second"] for row in rows
                    if row["config"] == label)

    off_qps, on_qps, traced_qps = qps("off"), qps("on"), \
        qps("on+trace")

    def overhead(measured: float) -> float:
        return (100.0 * (off_qps - measured) / off_qps
                if off_qps > 0 else 0.0)

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "obs-overhead",
        "graph": {"generator": "single_rooted_dag", "nodes": nodes,
                  "edges": graph.num_edges, "max_fanout": 5,
                  "seed": seed},
        "scheme": scheme,
        "duration_seconds": duration,
        "pipeline": pipeline,
        "connections": connections,
        "batch_size": batch_size,
        "rows": rows,
        "off_qps": off_qps,
        "on_qps": on_qps,
        "traced_qps": traced_qps,
        "overhead_percent": overhead(on_qps),
        "traced_overhead_percent": overhead(traced_qps),
    }


def format_obs_overhead_report(entry: dict[str, Any]) -> str:
    """Human-readable table for one obs-overhead trajectory entry."""
    from repro.bench.reporting import format_markdown_table

    graph = entry["graph"]
    return "\n".join([
        f"observability-overhead benchmark — single_rooted_dag("
        f"{graph['nodes']}, {graph['edges']}, seed={graph['seed']}), "
        f"scheme={entry['scheme']}, {entry['duration_seconds']}s per "
        f"point, {entry['connections']} connections, "
        f"pipeline={entry['pipeline']}, "
        f"{entry['batch_size']} pairs/request",
        "",
        format_markdown_table(
            entry["rows"],
            ["config", "queries", "queries_per_second", "errors",
             "latency_p50_ms", "latency_p95_ms", "latency_p99_ms"]),
        "",
        f"[SLO engine + flight recorder ambient overhead: "
        f"{entry['overhead_percent']:+.2f}% "
        f"({entry['on_qps']:,.0f} vs {entry['off_qps']:,.0f} "
        f"queries/s); with per-request tracing: "
        f"{entry['traced_overhead_percent']:+.2f}% "
        f"({entry['traced_qps']:,.0f} queries/s)]",
    ])


def append_trajectory(entry: dict[str, Any], path: Path) -> None:
    """Append ``entry`` to the ``BENCH_serve.json`` trajectory at
    ``path`` (created — or reset, if unreadable/foreign — on demand)."""
    data: dict[str, Any] = {"schema": SCHEMA, "entries": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = None
        if (isinstance(existing, dict) and existing.get("schema") == SCHEMA
                and isinstance(existing.get("entries"), list)):
            data = existing
    data["entries"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def format_serve_report(entry: dict[str, Any]) -> str:
    """Human-readable table for one serve-load trajectory entry."""
    from repro.bench.reporting import format_markdown_table

    graph = entry["graph"]
    lines = [
        f"serve-load benchmark — single_rooted_dag("
        f"{graph['nodes']}, {graph['edges']}, seed={graph['seed']}), "
        f"scheme={entry['scheme']}, {entry['duration_seconds']}s per "
        f"point, pipeline={entry['pipeline']}",
        "",
        format_markdown_table(
            entry["rows"],
            ["config", "connections", "queries", "queries_per_second",
             "errors", "latency_p50_ms", "latency_p95_ms",
             "latency_p99_ms"]),
        "",
        f"[micro-batching speedup at {entry['top_connections']} "
        f"connections: {entry['speedup']:.2f}x "
        f"({entry['batched_qps']:,.0f} vs "
        f"{entry['unbatched_qps']:,.0f} queries/s]",
    ]
    stage_rows = [
        {"stage": stage, **{k: f"{v:.3f}" for k, v in block.items()}}
        for row in entry["rows"]
        if row["config"] == "batched"
        and row["connections"] == entry["top_connections"]
        for stage, block in row.get("server_stages", {}).items()
    ]
    if stage_rows:
        lines += [
            "",
            f"server-side stage percentiles (batched, "
            f"{entry['top_connections']} connections):",
            format_markdown_table(
                stage_rows,
                ["stage", "p50_ms", "p95_ms", "p99_ms", "max_ms"]),
        ]
    return "\n".join(lines)


def run_serve_smoke(*, nodes: int = 400, edges: int | None = None,
                    seed: int | None = None, scheme: str = "dual-i",
                    connections: int = 4, duration: float = 2.0,
                    pipeline: int = 4) -> dict[str, Any]:
    """The CI smoke gate: serve, load, assert health, hot-reload once.

    Raises
    ------
    AssertionError
        On any protocol error, on zero multi-query flushes (no
        cross-connection coalescing happened), on missing server-side
        stage percentiles, or on a failed reload.
    """
    graph, seed = _make_graph(nodes, edges, seed)
    index = build_index(graph, scheme=scheme)
    pairs = random_query_pairs(graph, 5000, seed=seed + 1)
    handle = _start_server(index, scheme, max_batch=512,
                           max_delay=0.002)
    try:
        result = run_loadgen("127.0.0.1", handle.port, pairs,
                             connections=connections,
                             duration=duration, pipeline=pipeline,
                             batch_size=1)
        assert result.completed > 0, "loadgen completed no requests"
        assert not result.errors, (
            f"protocol errors during smoke run: {result.errors}")
        with ReachClient(port=handle.port) as client:
            stats = client.stats()
            flushes = stats["batcher"]["multi_query_flushes"]
            assert flushes >= 1, (
                "no multi-query flush happened — cross-connection "
                "batching is not coalescing")
            stages = stats["stages"]
            assert "kernel" in stages and "queue_wait" in stages, (
                f"server-side stage percentiles missing from the stats "
                f"verb; got stages: {sorted(stages)}")
            assert all("p99_ms" in block for block in stages.values()), (
                "stage percentile blocks are missing p99_ms")
            with tempfile.TemporaryDirectory() as tmp:
                graph_file = Path(tmp) / "graph.txt"
                write_edge_list(graph, graph_file)
                swap = client.reload(graph=graph_file)
            assert swap["swapped"] and swap["nodes"] == graph.num_nodes
            probe = client.query_batch(pairs[:32])
            assert probe == index.reachable_many(pairs[:32]), (
                "post-reload answers diverge from the direct index")
        return {
            "completed": result.completed,
            "queries": result.queries,
            "queries_per_second": result.queries_per_second,
            "multi_query_flushes": flushes,
            "server_stages": stages,
            "reload": swap,
        }
    finally:
        handle.stop()


def expected_scaling(workers: int, cpu_count: "int | None") -> float:
    """The core-aware throughput floor for a fleet of ``workers``.

    Fleet scaling is capacity-bound by physical cores: N workers on a
    single-core box time-slice one CPU and can only match (not beat)
    one worker, while N workers on >= N cores should approach Nx.  The
    floor is ``0.625 * usable_cores`` (4 usable cores -> the 2.5x
    acceptance bar; 2 -> 1.25x) and never below ``0.65`` — a fleet may
    not *lose* meaningful throughput to its own process overhead even
    with nothing to parallelise onto.
    """
    usable = min(workers, cpu_count or 1)
    return max(0.65, 0.625 * usable) if usable > 1 else 0.65


def run_worker_scaling_benchmark(
        *, nodes: int = 600, edges: int | None = None,
        seed: int | None = None, scheme: str = "dual-i",
        workers: int = 4, connections: int = 32,
        duration: float = 2.0, pipeline: int = 16,
        max_batch: int = 512, max_delay: float = 0.002,
        num_pairs: int = 20_000) -> dict[str, Any]:
    """Served throughput at 1, 2, 4, ... ``workers`` fleet sizes.

    Every point runs the same graph, load, and gateway configuration;
    only the process count changes, so the ratio between the top and
    the single-worker rows is the fleet's scaling factor.  The entry
    records ``os.cpu_count()`` alongside — the ratio is meaningless
    without knowing how many cores there were to scale onto.
    """
    graph, seed = _make_graph(nodes, edges, seed)
    pairs = random_query_pairs(graph, num_pairs, seed=seed + 1)
    sizes = sorted({min(2 ** i, workers)
                    for i in range(workers.bit_length())} | {workers})
    rows: list[dict[str, Any]] = []
    with tempfile.TemporaryDirectory() as tmp:
        graph_file = Path(tmp) / "graph.txt"
        write_edge_list(graph, graph_file)
        for size in sizes:
            with _server_process(graph_file, scheme,
                                 max_batch=max_batch,
                                 max_delay=max_delay,
                                 pipeline=pipeline,
                                 connections=connections,
                                 workers=size) as port:
                result = run_loadgen(
                    "127.0.0.1", port, pairs,
                    connections=connections, duration=duration,
                    pipeline=pipeline, batch_size=1,
                    latency_sample=4)
                rows.append({"workers": size, **result.as_dict()})

    def qps(size: int) -> float:
        return next(row["queries_per_second"] for row in rows
                    if row["workers"] == size)

    single, top = qps(sizes[0]), qps(sizes[-1])
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "worker-scaling",
        "graph": {"generator": "single_rooted_dag", "nodes": nodes,
                  "edges": graph.num_edges, "max_fanout": 5,
                  "seed": seed},
        "scheme": scheme,
        "duration_seconds": duration,
        "pipeline": pipeline,
        "connections": connections,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "worker_counts": sizes,
        "single_worker_qps": single,
        "top_workers_qps": top,
        "scaling": top / single if single > 0 else float("inf"),
        "expected_scaling": expected_scaling(sizes[-1],
                                             os.cpu_count()),
    }


def format_scaling_report(entry: dict[str, Any]) -> str:
    """Human-readable table for one worker-scaling entry."""
    from repro.bench.reporting import format_markdown_table

    graph = entry["graph"]
    return "\n".join([
        f"worker-scaling benchmark — single_rooted_dag("
        f"{graph['nodes']}, {graph['edges']}, seed={graph['seed']}), "
        f"scheme={entry['scheme']}, {entry['duration_seconds']}s per "
        f"point, {entry['connections']} connections, "
        f"cpu_count={entry['cpu_count']}",
        "",
        format_markdown_table(
            entry["rows"],
            ["workers", "queries", "queries_per_second", "errors",
             "latency_p50_ms", "latency_p95_ms", "latency_p99_ms"]),
        "",
        f"[{entry['worker_counts'][-1]}-worker scaling: "
        f"{entry['scaling']:.2f}x over 1 worker "
        f"({entry['top_workers_qps']:,.0f} vs "
        f"{entry['single_worker_qps']:,.0f} queries/s on "
        f"{entry['cpu_count']} cores; core-aware floor "
        f"{entry['expected_scaling']:.2f}x)]",
    ])


def run_fleet_smoke(*, nodes: int = 400, edges: int | None = None,
                    seed: int | None = None, scheme: str = "dual-i",
                    workers: int = 2, connections: int = 4,
                    duration: float = 1.5,
                    pipeline: int = 4) -> dict[str, Any]:
    """The CI gate for ``serve-load --workers N --smoke``.

    Asserts, in order: the fleet's differential correctness (every
    loadgen reply checked against the direct index), that more than
    one worker actually served traffic, a fleet-wide hot swap, the
    core-aware throughput floor against a single-worker drive of the
    same load, and — after both servers are down — that no shared-
    memory segment leaked.

    Raises
    ------
    AssertionError
        On any violated invariant (the CI step fails).
    """
    graph, seed = _make_graph(nodes, edges, seed)
    index = build_index(graph, scheme=scheme)
    pairs = random_query_pairs(graph, 5000, seed=seed + 1)
    expected = index.reachable_many(pairs)
    qps: dict[int, float] = {}
    report: dict[str, Any] = {"workers": workers,
                              "cpu_count": os.cpu_count()}
    with tempfile.TemporaryDirectory() as tmp:
        graph_file = Path(tmp) / "graph.txt"
        write_edge_list(graph, graph_file)
        for size in (1, workers):
            with _server_process(graph_file, scheme, max_batch=512,
                                 max_delay=0.002, pipeline=pipeline,
                                 connections=connections,
                                 workers=size) as port:
                result = run_loadgen(
                    "127.0.0.1", port, pairs,
                    connections=connections, duration=duration,
                    pipeline=pipeline, batch_size=1,
                    expected=expected, latency_sample=4)
                assert result.completed > 0, (
                    f"{size}-worker loadgen completed no requests")
                assert not result.errors, (
                    f"protocol errors against the {size}-worker "
                    f"server: {result.errors}")
                assert result.wrong_answers == 0, (
                    f"{result.wrong_answers} wrong answers from the "
                    f"{size}-worker server — first mismatches: "
                    f"{result.mismatch_samples[:3]}")
                qps[size] = result.queries_per_second
                if size == 1:
                    continue
                # SO_REUSEPORT hashes per connection; a dozen fresh
                # connections must reach more than one worker.
                served_by = set()
                for _ in range(12):
                    with ReachClient(port=port) as client:
                        served_by.add(client.stats()["worker"])
                    if len(served_by) > 1:
                        break
                assert len(served_by) > 1, (
                    f"12 fresh connections all landed on worker "
                    f"{served_by} — accept sharding is not spreading")
                with ReachClient(port=port, timeout=60.0) as client:
                    swap = client.reload(graph=graph_file)
                    assert swap["swapped"], f"fleet reload failed: {swap}"
                    assert swap["workers"] == workers, (
                        f"swap covered {swap['workers']} of "
                        f"{workers} workers")
                    assert swap["generation"] == 1, (
                        f"expected generation 1 after one reload, got "
                        f"{swap['generation']}")
                    probe = client.query_batch(pairs[:32])
                    assert probe == expected[:32], (
                        "post-swap answers diverge from the direct "
                        "index")
                report["served_by"] = sorted(served_by)
                report["reload"] = swap
    leaked = list_segments()
    assert not leaked, (
        f"shared-memory segments leaked after shutdown: {leaked}")
    floor = expected_scaling(workers, os.cpu_count())
    ratio = qps[workers] / qps[1] if qps[1] > 0 else float("inf")
    assert ratio >= floor, (
        f"{workers}-worker fleet served only {ratio:.2f}x the "
        f"single-worker throughput ({qps[workers]:,.0f} vs "
        f"{qps[1]:,.0f} queries/s) — core-aware floor is "
        f"{floor:.2f}x on {os.cpu_count()} cores")
    report.update({
        "single_worker_qps": qps[1],
        "fleet_qps": qps[workers],
        "scaling": ratio,
        "expected_scaling": floor,
    })
    return report


def _tenant_fixtures(tmp: str, *, tenants: int, nodes: int,
                     edges: "int | None", seed: int, scheme: str,
                     num_pairs: int):
    """Default + N tenant graphs on disk, with verified query pools.

    Returns ``(graph_file, tenant_specs, streams)`` where
    ``tenant_specs`` feeds ``--tenant`` flags and ``streams`` is one
    differentially-verified :func:`run_loadgen_mix` stream per index
    (default first, then tenants 1..N in catalog-id order).
    """
    graph, seed = _make_graph(nodes, edges, seed)
    graph_file = Path(tmp) / "graph.txt"
    write_edge_list(graph, graph_file)
    pairs = random_query_pairs(graph, num_pairs, seed=seed + 1)
    streams = [{"pairs": pairs,
                "expected": build_index(graph, scheme=scheme)
                .reachable_many(pairs)}]
    tenant_specs: list[tuple[str, Path]] = []
    for i in range(1, tenants + 1):
        # Distinct seeds give every tenant its own truth, so a query
        # routed to the wrong index is caught as a wrong answer.
        tenant_graph, tenant_seed = _make_graph(nodes, edges, seed + i)
        tenant_file = Path(tmp) / f"tenant-{i}.txt"
        write_edge_list(tenant_graph, tenant_file)
        tenant_specs.append((f"tenant-{i}", tenant_file))
        tenant_pairs = random_query_pairs(tenant_graph, num_pairs,
                                          seed=tenant_seed + 1)
        streams.append({
            "pairs": tenant_pairs, "index": f"tenant-{i}",
            "expected": build_index(tenant_graph, scheme=scheme)
            .reachable_many(tenant_pairs)})
    return graph_file, tenant_specs, streams


def run_tenant_benchmark(*, nodes: int = 600,
                         edges: int | None = None,
                         seed: int | None = None,
                         scheme: str = "dual-i", tenants: int = 4,
                         connections: int = 32,
                         duration: float = 2.0, pipeline: int = 8,
                         batch_size: int = 8, max_batch: int = 512,
                         max_delay: float = 0.002, workers: int = 1,
                         num_pairs: int = 20_000) -> dict[str, Any]:
    """Concurrent multi-tenant throughput through one gateway.

    ``tenants`` named indexes (plus the default) are served from one
    process and driven *simultaneously* — one differentially-verified
    loadgen stream per index, all sharing a deadline — so the entry
    measures cross-tenant interference, not sequential per-tenant
    peaks.  Records per-tenant throughput, the aggregate, and a
    fairness ratio (min/max per-tenant queries per second; 1.0 is a
    perfectly fair gateway).
    """
    if tenants < 1:
        raise ValueError("tenant benchmark needs tenants >= 1")
    seed0 = nodes if seed is None else seed
    per_stream = max(1, connections // (tenants + 1))
    with tempfile.TemporaryDirectory() as tmp:
        graph_file, tenant_specs, streams = _tenant_fixtures(
            tmp, tenants=tenants, nodes=nodes, edges=edges, seed=seed0,
            scheme=scheme, num_pairs=num_pairs)
        for stream in streams:
            stream.update(connections=per_stream, pipeline=pipeline,
                          batch_size=batch_size, latency_sample=4)
        with _server_process(graph_file, scheme, max_batch=max_batch,
                             max_delay=max_delay, pipeline=pipeline,
                             connections=connections, workers=workers,
                             tenants=tenant_specs) as port:
            from repro.server.loadgen import run_loadgen_mix
            results = run_loadgen_mix("127.0.0.1", port, streams,
                                      duration=duration)
            with ReachClient(port=port) as client:
                catalog = client.catalog_list()
    rows = [result.as_dict() for result in results]
    per_tenant_qps = [row["queries_per_second"] for row in rows]
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "multi-tenant",
        "graph": {"generator": "single_rooted_dag", "nodes": nodes,
                  "edges": edges, "max_fanout": 5, "seed": seed0},
        "scheme": scheme,
        "tenants": tenants,
        "workers": workers,
        "duration_seconds": duration,
        "pipeline": pipeline,
        "batch_size": batch_size,
        "connections_per_tenant": per_stream,
        "rows": rows,
        "catalog": catalog,
        "aggregate_qps": sum(per_tenant_qps),
        "wrong_answers": sum(row["wrong_answers"] for row in rows),
        "fairness": (min(per_tenant_qps) / max(per_tenant_qps)
                     if max(per_tenant_qps) > 0 else 0.0),
    }


def format_tenant_report(entry: dict[str, Any]) -> str:
    """Human-readable table for one multi-tenant trajectory entry."""
    from repro.bench.reporting import format_markdown_table

    return "\n".join([
        f"multi-tenant serve-load — {entry['tenants']} tenants + "
        f"default, scheme={entry['scheme']}, "
        f"workers={entry['workers']}, "
        f"{entry['duration_seconds']}s concurrent drive, "
        f"{entry['connections_per_tenant']} connections/tenant, "
        f"{entry['batch_size']} pairs/request",
        "",
        format_markdown_table(
            entry["rows"],
            ["index", "queries", "queries_per_second", "errors",
             "wrong_answers", "latency_p50_ms", "latency_p99_ms"]),
        "",
        f"[aggregate {entry['aggregate_qps']:,.0f} queries/s across "
        f"{entry['tenants'] + 1} indexes, fairness "
        f"{entry['fairness']:.2f} (min/max per-tenant qps), "
        f"{entry['wrong_answers']} wrong answers]",
    ])


def run_tenant_smoke(*, nodes: int = 300, edges: int | None = None,
                     seed: int | None = None, scheme: str = "dual-i",
                     tenants: int = 2, workers: int = 2,
                     connections: int = 2, duration: float = 1.5,
                     pipeline: int = 4) -> dict[str, Any]:
    """The CI gate for multi-tenant serving (``--tenants N --smoke``).

    Drives a ``--workers N`` fleet carrying ``tenants`` startup
    catalog entries with one verified stream per index (JSON by name
    and, for tenant 1, binary frames by catalog id), exercises the
    full runtime catalog lifecycle (create → build → query → drop),
    and — after shutdown — asserts no per-index shared-memory segment
    leaked.

    Raises
    ------
    AssertionError
        On any wrong answer, any protocol error, a catalog op that
        does not take effect on every index, or a leaked segment.
    """
    from repro.server.loadgen import run_loadgen_mix

    seed0 = nodes if seed is None else seed
    before = set(list_segments())
    report: dict[str, Any] = {"tenants": tenants, "workers": workers}
    with tempfile.TemporaryDirectory() as tmp:
        graph_file, tenant_specs, streams = _tenant_fixtures(
            tmp, tenants=tenants, nodes=nodes, edges=edges, seed=seed0,
            scheme=scheme, num_pairs=4000)
        for stream in streams:
            stream.update(connections=connections, pipeline=pipeline,
                          batch_size=4, latency_sample=4)
        # Tenant 1 additionally drives binary frames by catalog id —
        # startup tenants get ids 1..N in --tenant flag order.
        streams.append(dict(streams[1], index=1, protocol="binary"))
        with _server_process(graph_file, scheme, max_batch=512,
                             max_delay=0.002, pipeline=pipeline,
                             connections=connections, workers=workers,
                             tenants=tenant_specs) as port:
            with ReachClient(port=port) as client:
                names = [row["name"] for row in client.catalog_list()]
                assert names == ["default"] + [
                    name for name, _ in tenant_specs], (
                    f"startup catalog mismatch: {names}")
            results = run_loadgen_mix("127.0.0.1", port, streams,
                                      duration=duration)
            for result in results:
                row = result.as_dict()
                assert result.completed > 0, (
                    f"stream {row['index']} completed no requests")
                assert not result.errors, (
                    f"protocol errors on stream {row['index']}: "
                    f"{result.errors}")
                assert result.wrong_answers == 0, (
                    f"{result.wrong_answers} wrong answers on stream "
                    f"{row['index']} — cross-tenant leakage? first: "
                    f"{result.mismatch_samples[:3]}")
            report["streams"] = [r.as_dict() for r in results]
            # Runtime lifecycle: a tenant created, built, queried, and
            # dropped while the fleet serves.
            with ReachClient(port=port, timeout=60.0) as client:
                created = client.catalog("create", name="smoke-extra",
                                         scheme=scheme)
                built = client.catalog("build", name="smoke-extra",
                                       graph=str(graph_file))
                assert built["swapped"], f"runtime build failed: {built}"
                probe_pairs = streams[0]["pairs"][:32]
                probe = client.query_batch(
                    [list(p) for p in probe_pairs],
                    index="smoke-extra")
                assert probe == streams[0]["expected"][:32], (
                    "runtime tenant answers diverge from the direct "
                    "index")
                client.catalog("drop", name="smoke-extra")
                try:
                    client.query(0, 1, index="smoke-extra")
                except ServerReplyError as exc:
                    assert exc.code == "unknown_index", exc
                else:
                    raise AssertionError(
                        "dropped tenant still answers queries")
                report["runtime_tenant"] = {
                    "index_id": created["index_id"],
                    "generation": built["generation"]}
            # Per-tenant admission counters carried traffic.  Counters
            # are per worker process and fresh connections land on an
            # arbitrary worker, so accumulate across a few samples.
            admitted: dict[str, int] = {}
            for _ in range(12):
                with ReachClient(port=port) as client:
                    for row in client.stats()["catalog"]:
                        admitted[row["name"]] = max(
                            admitted.get(row["name"], 0),
                            row["admitted"])
                if all(admitted.get(name, 0) > 0
                       for name, _ in tenant_specs):
                    break
            assert all(admitted.get(name, 0) > 0
                       for name, _ in tenant_specs), (
                f"per-tenant admission counters missing traffic: "
                f"{admitted}")
    leaked = set(list_segments()) - before
    assert not leaked, (
        f"per-index shared-memory segments leaked after shutdown: "
        f"{sorted(leaked)}")
    report["aggregate_qps"] = sum(
        row["queries_per_second"] for row in report["streams"])
    return report
