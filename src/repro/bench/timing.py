"""Timing protocol — the paper's Section 6 measurement methodology.

The paper measures query time over 100,000 random queries and subtracts
the cost of a "no-op" iteration (retrieving the two nodes but doing
nothing), because loop overhead would otherwise dominate:

    "The real query time is defined as the difference between the total
    elapsed time and the baseline time."

:func:`measure_query_time` reproduces that protocol exactly;
:func:`measure_build_time` times index construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.base import ReachabilityIndex
from repro.graph.digraph import DiGraph, Node

__all__ = [
    "BuildMeasurement",
    "QueryMeasurement",
    "measure_build_time",
    "measure_query_time",
]


@dataclass(frozen=True)
class BuildMeasurement:
    """Result of timing an index build."""

    scheme: str
    seconds: float
    index: ReachabilityIndex


@dataclass(frozen=True)
class QueryMeasurement:
    """Result of the paper's query-timing protocol.

    ``seconds`` is loop time minus no-op baseline time (clamped at 0);
    ``positives`` counts reachable answers, a cheap cross-scheme checksum.
    """

    scheme: str
    num_queries: int
    seconds: float
    raw_seconds: float
    baseline_seconds: float
    positives: int

    @property
    def microseconds_per_query(self) -> float:
        """Net per-query latency in microseconds."""
        if self.num_queries == 0:
            return 0.0
        return 1e6 * self.seconds / self.num_queries


def measure_build_time(graph: DiGraph, scheme: str,
                       **options: Any) -> BuildMeasurement:
    """Time one index construction (wall clock)."""
    from repro.core.base import build_index

    start = time.perf_counter()
    index = build_index(graph, scheme=scheme, **options)
    seconds = time.perf_counter() - start
    return BuildMeasurement(scheme=scheme, seconds=seconds, index=index)


def _noop(u: Node, v: Node) -> bool:
    """The no-op body: receive the two nodes, do nothing."""
    return False


def measure_query_time(index: ReachabilityIndex,
                       pairs: list[tuple[Node, Node]]) -> QueryMeasurement:
    """Run the paper's subtract-the-no-op query timing protocol."""
    reach = index.reachable
    raw_seconds, positives = _timed_loop(reach, pairs)
    baseline_seconds, _ = _timed_loop(_noop, pairs)
    return QueryMeasurement(
        scheme=getattr(index, "scheme_name", type(index).__name__),
        num_queries=len(pairs),
        seconds=max(0.0, raw_seconds - baseline_seconds),
        raw_seconds=raw_seconds,
        baseline_seconds=baseline_seconds,
        positives=positives,
    )


def _timed_loop(func: Callable[[Node, Node], bool],
                pairs: list[tuple[Node, Node]]) -> tuple[float, int]:
    """Time ``func`` over all pairs; return (seconds, positive count)."""
    positives = 0
    start = time.perf_counter()
    for u, v in pairs:
        if func(u, v):
            positives += 1
    seconds = time.perf_counter() - start
    return seconds, positives
