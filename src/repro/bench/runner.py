"""Experiment runner CLI: ``python -m repro.bench run <experiment>``.

Runs a paper experiment at full or reduced scale, prints the markdown
table, and optionally saves markdown/CSV to a results directory.  The
``serve`` subcommand throughput-tests the :class:`QueryService` serving
layer instead (see :func:`serve_experiment`).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.bench.charts import experiment_chart
from repro.bench.experiments import EXPERIMENTS, ExperimentResult
from repro.bench.reporting import (
    format_csv,
    format_kv_table,
    format_markdown_table,
)

__all__ = ["main", "run_experiment", "scaled_overrides",
           "serve_experiment"]


def scaled_overrides(name: str, scale: str) -> dict:
    """Parameter overrides implementing the ``--scale`` presets.

    ``paper`` is the empty override (function defaults are paper scale);
    ``quick`` shrinks graphs and query counts so every experiment
    finishes in seconds.
    """
    if scale == "paper":
        return {}
    if scale != "quick":
        raise ValueError(f"unknown scale {scale!r}")
    quick: dict[str, dict] = {
        "fig8": {"n": 400, "edge_counts": range(420, 800, 90),
                 "num_queries": 5000},
        "fig9": {"n": 400, "edge_counts": range(420, 800, 90),
                 "num_queries": 5000},
        "fig10": {"n": 400, "edge_counts": range(420, 800, 90),
                  "num_queries": 5000},
        "fig11": {"sizes": (200, 400, 600), "num_queries": 5000},
        "fig12": {"n": 400, "edge_counts": range(420, 640, 40)},
        "fig13": {"n": 400, "edge_counts": range(420, 640, 40),
                  "num_queries": 5000},
        "fig14": {"n": 2000, "edge_counts": (2100, 2400, 2800)},
        "table2": {"num_queries": 5000, "names": ("HpyCyc", "XMark")},
        "ablation_meg": {"n": 400, "edge_counts": (450, 550, 700)},
        "ablation_tlc": {"n": 400, "edge_counts": (450, 550, 700),
                         "num_queries": 5000},
        "amortization": {"n": 400, "num_queries": 3000},
        "latency_tails": {"n": 400, "num_queries": 3000},
    }
    return quick.get(name, {})


def run_experiment(name: str, scale: str = "paper",
                   **overrides) -> ExperimentResult:
    """Run one registered experiment with optional overrides."""
    try:
        func = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; available: {known}"
                       ) from None
    params = scaled_overrides(name, scale)
    params.update(overrides)
    return func(**params)


def _save(result: ExperimentResult, out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    columns = result.column_order()
    markdown = format_markdown_table(result.rows, columns,
                                     title=result.title)
    if result.notes:
        markdown += f"\n\n> {result.notes}\n"
    (out_dir / f"{result.name}.md").write_text(markdown, encoding="utf-8")
    (out_dir / f"{result.name}.csv").write_text(
        format_csv(result.rows, columns), encoding="utf-8")


def serve_experiment(*, graph=None, kind: str = "dag", nodes: int = 2000,
                     edges: int = 2600, scheme: str = "dual-i",
                     num_queries: int = 100_000, batch_size: int = 8192,
                     cache_size: int = 0, max_workers: int = 1,
                     chunk_size: int = 32_768, seed: int = 0,
                     baseline: bool = False) -> dict:
    """Drive a query workload through :class:`QueryService`; return the
    serving metrics (plus setup context and, optionally, the scalar-loop
    baseline comparison) as one flat report dict.

    This is the paper's 100k-query protocol run over the production hot
    path: the workload arrives in ``batch_size`` batches, exactly as the
    bench suite and the serving CLI feed it.
    """
    from repro.bench.timing import measure_build_time
    from repro.bench.workloads import chunked, random_query_pairs
    from repro.core.service import QueryService
    from repro.graph.generators import gnm_random_digraph, single_rooted_dag

    if graph is None:
        if kind == "dag":
            graph = single_rooted_dag(nodes, edges, max_fanout=5, seed=seed)
        elif kind == "gnm":
            graph = gnm_random_digraph(nodes, edges, seed=seed)
        else:
            raise ValueError(f"kind must be 'dag' or 'gnm', got {kind!r}")
    built = measure_build_time(graph, scheme)
    pairs = random_query_pairs(graph, num_queries, seed=seed + 1)
    report: dict = {
        "scheme": scheme,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "build_seconds": built.seconds,
        "num_queries": len(pairs),
        "batch_size": batch_size,
        "cache_size": cache_size,
        "max_workers": max_workers,
    }
    with QueryService(built.index, cache_size=cache_size,
                      max_workers=max_workers,
                      chunk_size=chunk_size) as service:
        report["vectorised"] = service.vectorised
        for batch in chunked(pairs, batch_size):
            service.query_batch(batch)
        report.update(service.metrics.as_dict())
    if baseline:
        reach = built.index.reachable
        started = time.perf_counter()
        positives = sum(reach(u, v) for u, v in pairs)
        scalar_seconds = time.perf_counter() - started
        service_seconds = report["seconds_total"]
        report["scalar_loop_seconds"] = scalar_seconds
        report["scalar_loop_positives"] = positives
        report["service_speedup"] = (
            scalar_seconds / service_seconds if service_seconds > 0
            else float("inf"))
        if positives != report["positives"]:
            raise AssertionError(
                f"service/scalar disagreement: {report['positives']} vs "
                f"{positives} positives")
    return report


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.bench.buildbench import (append_trajectory,
                                        format_build_report,
                                        run_build_benchmark)

    entry = run_build_benchmark(
        nodes=args.nodes, edges=args.edges, seed=args.seed,
        repeats=3 if args.quick else args.repeats,
        use_meg=not args.no_meg)
    print(format_build_report(entry))
    if str(args.out) != "-":
        append_trajectory(entry, args.out)
        print(f"[appended to {args.out}]")
    if args.assert_speedup is not None:
        speedup = entry.get("speedup", 0.0)
        if speedup < args.assert_speedup:
            print(f"FAIL: speedup {speedup:.2f}x is below the required "
                  f"{args.assert_speedup:.2f}x")
            return 1
        print(f"OK: speedup {speedup:.2f}x >= "
              f"{args.assert_speedup:.2f}x")
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from repro.bench.kernelbench import (append_trajectory,
                                         format_kernel_report,
                                         run_kernel_benchmark)

    entry = run_kernel_benchmark(
        nodes=args.nodes, edges=args.edges, seed=args.seed,
        scheme=args.scheme, num_pairs=args.pairs,
        repeats=args.repeats)
    print(format_kernel_report(entry))
    if str(args.out) != "-":
        append_trajectory(entry, args.out)
        print(f"[appended to {args.out}]")
    if args.assert_fast is not None:
        speedup = entry["fast_speedup_vs_batched"]
        if speedup < args.assert_fast:
            print(f"FAIL: fast-buffer speedup {speedup:.2f}x is below "
                  f"the required {args.assert_fast:.2f}x over "
                  f"batched-numpy")
            return 1
        print(f"OK: fast-buffer speedup {speedup:.2f}x >= "
              f"{args.assert_fast:.2f}x over batched-numpy")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.graph.io import read_edge_list

    graph = read_edge_list(args.graph) if args.graph is not None else None
    report = serve_experiment(
        graph=graph, kind=args.kind, nodes=args.nodes, edges=args.edges,
        scheme=args.scheme, num_queries=args.queries,
        batch_size=args.batch_size, cache_size=args.cache,
        max_workers=args.workers, chunk_size=args.chunk_size,
        seed=args.seed, baseline=args.baseline)
    print(format_kv_table(
        report, title=f"QueryService — {args.scheme} serving "
                      f"{report['num_queries']} queries"))
    qps = report["queries_per_second"]
    print(f"\n[{qps:,.0f} queries/second through the service]")
    if args.baseline:
        print(f"[{report['service_speedup']:.1f}x the scalar "
              f"reachable loop]")
    return 0


def _cmd_serve_load(args: argparse.Namespace) -> int:
    from repro.bench.serveload import (append_trajectory,
                                       format_obs_overhead_report,
                                       format_protocol_report,
                                       format_scaling_report,
                                       format_serve_report,
                                       format_tenant_report,
                                       run_fleet_smoke,
                                       run_obs_overhead_benchmark,
                                       run_protocol_benchmark,
                                       run_serve_load_benchmark,
                                       run_serve_smoke,
                                       run_tenant_benchmark,
                                       run_tenant_smoke,
                                       run_worker_scaling_benchmark)

    if args.obs_overhead:
        entry = run_obs_overhead_benchmark(
            nodes=args.nodes, edges=args.edges, seed=args.seed,
            scheme=args.scheme, connections=args.connections,
            duration=args.duration, pipeline=args.pipeline,
            batch_size=args.batch_size)
        print(format_obs_overhead_report(entry))
        if str(args.out) != "-":
            append_trajectory(entry, args.out)
            print(f"[appended to {args.out}]")
        if args.assert_overhead is not None:
            overhead = entry["overhead_percent"]
            if overhead > args.assert_overhead:
                print(f"FAIL: ambient observability overhead "
                      f"{overhead:.2f}% exceeds the allowed "
                      f"{args.assert_overhead:.2f}%")
                return 1
            print(f"OK: ambient observability overhead "
                  f"{overhead:.2f}% <= {args.assert_overhead:.2f}%")
        return 0
    if args.tenants > 0:
        return _cmd_serve_load_tenants(args, run_tenant_smoke,
                                       run_tenant_benchmark,
                                       format_tenant_report,
                                       append_trajectory)
    if args.protocols:
        entry = run_protocol_benchmark(
            nodes=args.nodes, edges=args.edges, seed=args.seed,
            scheme=args.scheme, connections=args.connections,
            duration=args.duration, pipeline=args.pipeline,
            batch_size=args.batch_size)
        print(format_protocol_report(entry))
        if str(args.out) != "-":
            append_trajectory(entry, args.out)
            print(f"[appended to {args.out}]")
        if args.assert_speedup is not None:
            speedup = entry["speedup"]
            if speedup < args.assert_speedup:
                print(f"FAIL: binary-over-JSON speedup {speedup:.2f}x "
                      f"is below the required "
                      f"{args.assert_speedup:.2f}x")
                return 1
            print(f"OK: binary-over-JSON speedup {speedup:.2f}x >= "
                  f"{args.assert_speedup:.2f}x")
        return 0
    if args.workers > 1:
        return _cmd_serve_load_fleet(args, run_fleet_smoke,
                                     run_worker_scaling_benchmark,
                                     format_scaling_report,
                                     append_trajectory)
    if args.smoke:
        report = run_serve_smoke(
            nodes=args.nodes if args.nodes != 600 else 400,
            edges=args.edges, seed=args.seed, scheme=args.scheme,
            connections=min(args.connections, 4),
            duration=min(args.duration, 2.0), pipeline=args.pipeline)
        print(format_kv_table(
            {k: v for k, v in report.items()
             if k not in ("reload", "server_stages")},
            title="serve-load smoke"))
        for stage, block in report["server_stages"].items():
            print(f"  stage {stage:10s} p50={block['p50_ms']:.2f}ms "
                  f"p99={block['p99_ms']:.2f}ms")
        print(f"[hot reload swapped in {report['reload']['nodes']} "
              f"nodes from {report['reload']['source']}]")
        print("OK: zero protocol errors, cross-connection batching "
              "active, server-side stage percentiles present, hot "
              "reload verified")
        return 0
    entry = run_serve_load_benchmark(
        nodes=args.nodes, edges=args.edges, seed=args.seed,
        scheme=args.scheme, connections=(8, args.connections),
        duration=args.duration, pipeline=args.pipeline)
    print(format_serve_report(entry))
    if str(args.out) != "-":
        append_trajectory(entry, args.out)
        print(f"[appended to {args.out}]")
    if args.assert_speedup is not None:
        speedup = entry["speedup"]
        if speedup < args.assert_speedup:
            print(f"FAIL: speedup {speedup:.2f}x is below the required "
                  f"{args.assert_speedup:.2f}x")
            return 1
        print(f"OK: speedup {speedup:.2f}x >= "
              f"{args.assert_speedup:.2f}x")
    return 0


def _cmd_serve_load_tenants(args: argparse.Namespace, run_tenant_smoke,
                            run_tenant_benchmark, format_tenant_report,
                            append_trajectory) -> int:
    """``serve-load --tenants N``: multi-tenant smoke gate or bench."""
    if args.smoke:
        report = run_tenant_smoke(
            nodes=args.nodes if args.nodes != 600 else 300,
            edges=args.edges, seed=args.seed, scheme=args.scheme,
            tenants=args.tenants, workers=max(args.workers, 2),
            connections=min(args.connections, 2),
            duration=min(args.duration, 1.5), pipeline=args.pipeline)
        print(format_kv_table(
            {k: v for k, v in report.items()
             if k not in ("streams", "runtime_tenant")},
            title=f"serve-load multi-tenant smoke "
                  f"({args.tenants} tenants, "
                  f"{report['workers']} workers)"))
        for row in report["streams"]:
            print(f"  index {row['index']!s:12} "
                  f"{row['queries']:>7} queries, "
                  f"{row['wrong_answers']} wrong answers")
        print(f"[runtime tenant lifecycle verified: id "
              f"{report['runtime_tenant']['index_id']} created, "
              f"built (gen {report['runtime_tenant']['generation']}), "
              f"queried, dropped]")
        print("OK: zero wrong answers on every tenant stream, "
              "runtime catalog lifecycle verified, no leaked "
              "per-index shared-memory segments")
        return 0
    entry = run_tenant_benchmark(
        nodes=args.nodes, edges=args.edges, seed=args.seed,
        scheme=args.scheme, tenants=args.tenants,
        connections=args.connections, duration=args.duration,
        pipeline=args.pipeline, batch_size=args.batch_size,
        workers=args.workers)
    print(format_tenant_report(entry))
    if str(args.out) != "-":
        append_trajectory(entry, args.out)
        print(f"[appended to {args.out}]")
    if entry["wrong_answers"]:
        print(f"FAIL: {entry['wrong_answers']} wrong answers under "
              f"multi-tenant load")
        return 1
    return 0


def _cmd_serve_load_fleet(args: argparse.Namespace, run_fleet_smoke,
                          run_worker_scaling_benchmark,
                          format_scaling_report,
                          append_trajectory) -> int:
    """``serve-load --workers N``: fleet smoke gate or scaling bench."""
    if args.smoke:
        report = run_fleet_smoke(
            nodes=args.nodes if args.nodes != 600 else 400,
            edges=args.edges, seed=args.seed, scheme=args.scheme,
            workers=args.workers,
            connections=min(args.connections, 4),
            duration=min(args.duration, 2.0), pipeline=args.pipeline)
        print(format_kv_table(
            {k: v for k, v in report.items() if k != "reload"},
            title=f"serve-load fleet smoke ({args.workers} workers)"))
        print(f"[fleet hot swap moved all {report['reload']['workers']} "
              f"workers to generation {report['reload']['generation']}]")
        print(f"OK: zero wrong answers, workers "
              f"{report['served_by']} all served, scaling "
              f"{report['scaling']:.2f}x >= core-aware floor "
              f"{report['expected_scaling']:.2f}x, no leaked "
              f"shared-memory segments")
        return 0
    entry = run_worker_scaling_benchmark(
        nodes=args.nodes, edges=args.edges, seed=args.seed,
        scheme=args.scheme, workers=args.workers,
        connections=args.connections, duration=args.duration,
        pipeline=args.pipeline)
    print(format_scaling_report(entry))
    if str(args.out) != "-":
        append_trajectory(entry, args.out)
        print(f"[appended to {args.out}]")
    if args.assert_scaling is not None:
        floor = (entry["expected_scaling"]
                 if args.assert_scaling == "auto"
                 else float(args.assert_scaling))
        if entry["scaling"] < floor:
            print(f"FAIL: scaling {entry['scaling']:.2f}x is below "
                  f"the required {floor:.2f}x")
            return 1
        print(f"OK: scaling {entry['scaling']:.2f}x >= {floor:.2f}x")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     choices=sorted(EXPERIMENTS) + ["all"],
                     help="experiment name")
    run.add_argument("--scale", choices=("paper", "quick"), default="paper",
                     help="paper-scale parameters or a quick smoke run")
    run.add_argument("--out", type=Path, default=None,
                     help="directory to save markdown/CSV results")
    run.add_argument("--chart", action="store_true",
                     help="also print an ASCII chart of the main series")

    sub.add_parser("list", help="list available experiments")

    serve = sub.add_parser(
        "serve",
        help="throughput-test the QueryService serving layer")
    serve.add_argument("--graph", type=Path, default=None,
                       help="edge-list file (default: synthetic graph)")
    serve.add_argument("--kind", choices=("dag", "gnm"), default="dag",
                       help="synthetic family when --graph is absent")
    serve.add_argument("--nodes", type=int, default=2000)
    serve.add_argument("--edges", type=int, default=2600)
    serve.add_argument("--scheme", default="dual-i",
                       help="index scheme to serve (see `repro-reach "
                            "schemes`)")
    serve.add_argument("--queries", type=int, default=100_000,
                       help="workload size (paper protocol: 100k)")
    serve.add_argument("--batch-size", type=int, default=8192,
                       help="queries per service batch")
    serve.add_argument("--cache", type=int, default=0,
                       help="LRU result-cache entries (0 disables)")
    serve.add_argument("--workers", type=int, default=1,
                       help="shard thread-pool width")
    serve.add_argument("--chunk-size", type=int, default=32_768,
                       help="shard granularity in queries")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--baseline", action="store_true",
                       help="also time the scalar reachable loop and "
                            "report the speedup")

    serve_load = sub.add_parser(
        "serve-load",
        help="benchmark the repro.server gateway under multi-"
             "connection load (micro-batched vs. unbatched)")
    serve_load.add_argument("--nodes", type=int, default=600,
                            help="graph size (default: the Figure 11 "
                                 "quick-scale largest graph)")
    serve_load.add_argument("--edges", type=int, default=None,
                            help="edge count (default: 1.5x nodes)")
    serve_load.add_argument("--seed", type=int, default=None,
                            help="generator seed (default: seed = "
                                 "nodes)")
    serve_load.add_argument("--scheme", default="dual-i")
    serve_load.add_argument("--connections", type=int, default=32,
                            help="peak concurrent connections")
    serve_load.add_argument("--duration", type=float, default=2.0,
                            help="seconds of load per measurement "
                                 "point")
    serve_load.add_argument("--pipeline", type=int, default=16,
                            help="in-flight requests per connection")
    serve_load.add_argument("--out", type=Path,
                            default=Path("BENCH_serve.json"),
                            help="trajectory file to append to ('-' "
                                 "to skip writing)")
    serve_load.add_argument("--assert-speedup", type=float,
                            default=None, metavar="RATIO",
                            help="exit non-zero unless micro-batching "
                                 "is at least RATIO times faster than "
                                 "one-query-per-request")
    serve_load.add_argument("--smoke", action="store_true",
                            help="CI gate: short low-concurrency run "
                                 "asserting zero protocol errors, "
                                 "multi-query flushes, and one hot "
                                 "reload")
    serve_load.add_argument("--workers", type=int, default=1,
                            help="benchmark the multi-process worker "
                                 "fleet: throughput at 1..N workers "
                                 "(with --smoke: the fleet CI gate — "
                                 "differential answers, core-aware "
                                 "scaling floor, fleet-wide hot swap, "
                                 "shared-memory leak scan)")
    serve_load.add_argument("--protocols", action="store_true",
                            help="compare JSON vs binary wire framing "
                                 "through one server at the peak "
                                 "connection count (--assert-speedup "
                                 "then gates the binary-over-JSON "
                                 "ratio)")
    serve_load.add_argument("--batch-size", type=int, default=16,
                            help="pairs per request in the --protocols "
                                 "comparison (both protocols use the "
                                 "same value)")
    serve_load.add_argument("--obs-overhead", action="store_true",
                            help="measure the operations plane's cost: "
                                 "throughput with the SLO engine + "
                                 "flight recorder off, on, and on with "
                                 "per-request tracing "
                                 "(--assert-overhead then gates the "
                                 "ambient off-to-on loss)")
    serve_load.add_argument("--assert-overhead", type=float,
                            default=None, metavar="PERCENT",
                            help="with --obs-overhead: exit non-zero "
                                 "if the ambient overhead exceeds "
                                 "PERCENT")
    serve_load.add_argument("--assert-scaling", default=None,
                            metavar="RATIO",
                            help="with --workers: exit non-zero unless "
                                 "the top fleet reaches RATIO times the "
                                 "single-worker throughput ('auto' = "
                                 "the core-aware floor)")
    serve_load.add_argument("--tenants", type=int, default=0,
                            metavar="N",
                            help="drive N named catalog indexes plus "
                                 "the default concurrently, one "
                                 "differentially-verified stream each "
                                 "(with --smoke: the multi-tenant CI "
                                 "gate — zero wrong answers per "
                                 "tenant, runtime catalog lifecycle, "
                                 "per-index shared-memory leak scan; "
                                 "composes with --workers)")

    kernel = sub.add_parser(
        "kernel",
        help="microbenchmark the query kernels (scalar loop, batched "
             "NumPy, fast buffer path, compiled extension) on one "
             "workload")
    kernel.add_argument("--nodes", type=int, default=600,
                        help="graph size (default: the Figure 11 "
                             "quick-scale largest graph)")
    kernel.add_argument("--edges", type=int, default=None,
                        help="edge count (default: 1.5x nodes)")
    kernel.add_argument("--seed", type=int, default=None,
                        help="generator seed (default: seed = nodes)")
    kernel.add_argument("--scheme", default="dual-i")
    kernel.add_argument("--pairs", type=int, default=100_000,
                        help="workload size (paper protocol: 100k)")
    kernel.add_argument("--repeats", type=int, default=5,
                        help="rounds per kernel; best-of wall clock")
    kernel.add_argument("--out", type=Path,
                        default=Path("BENCH_kernel.json"),
                        help="trajectory file to append to ('-' to "
                             "skip writing)")
    kernel.add_argument("--assert-fast", type=float, default=None,
                        metavar="RATIO",
                        help="exit non-zero unless the fast buffer "
                             "path is at least RATIO times the "
                             "batched-numpy throughput")

    claims = sub.add_parser(
        "claims", help="grade the paper-fidelity claims (PASS/FAIL)")
    claims.add_argument("--scale", choices=("paper", "quick"),
                        default="quick")

    build = sub.add_parser(
        "build",
        help="benchmark pipeline construction across backends")
    build.add_argument("--nodes", type=int, default=600,
                       help="graph size (default: the Figure 11 "
                            "quick-scale largest graph)")
    build.add_argument("--edges", type=int, default=None,
                       help="edge count (default: 1.5x nodes, the "
                            "Figure 11 density)")
    build.add_argument("--seed", type=int, default=None,
                       help="generator seed (default: Figure 11 "
                            "convention, seed = nodes)")
    build.add_argument("--repeats", type=int, default=7,
                       help="rounds per backend; best-of wall clock")
    build.add_argument("--quick", action="store_true",
                       help="smoke mode: 3 repeats")
    build.add_argument("--no-meg", action="store_true",
                       help="skip the MEG preprocessing phase")
    build.add_argument("--out", type=Path,
                       default=Path("BENCH_build.json"),
                       help="trajectory file to append to ('-' to skip "
                            "writing)")
    build.add_argument("--assert-speedup", type=float, default=None,
                       metavar="RATIO",
                       help="exit non-zero unless fast is at least "
                            "RATIO times faster than python")

    args = parser.parse_args(argv)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "kernel":
        return _cmd_kernel(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "serve-load":
        return _cmd_serve_load(args)
    if args.command == "claims":
        from repro.bench.claims import run_claims

        verdicts = run_claims(scale=args.scale)
        for verdict in verdicts:
            print(verdict.summary())
        failed = sum(1 for v in verdicts if not v.passed)
        print(f"\n{len(verdicts) - failed}/{len(verdicts)} fidelity "
              f"claims hold at scale={args.scale}")
        return 1 if failed else 0
    if args.command == "list":
        for name, func in sorted(EXPERIMENTS.items()):
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:14s} {doc}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment]
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, scale=args.scale)
        elapsed = time.perf_counter() - started
        print(format_markdown_table(result.rows, result.column_order(),
                                    title=result.title))
        if args.chart:
            chart = experiment_chart(result)
            if chart:
                print()
                print(chart)
        if result.notes:
            print(f"\n> {result.notes}")
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
        if args.out is not None:
            _save(result, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
