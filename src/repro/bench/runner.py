"""Experiment runner CLI: ``python -m repro.bench run <experiment>``.

Runs a paper experiment at full or reduced scale, prints the markdown
table, and optionally saves markdown/CSV to a results directory.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.bench.charts import experiment_chart
from repro.bench.experiments import EXPERIMENTS, ExperimentResult
from repro.bench.reporting import format_csv, format_markdown_table

__all__ = ["main", "run_experiment", "scaled_overrides"]


def scaled_overrides(name: str, scale: str) -> dict:
    """Parameter overrides implementing the ``--scale`` presets.

    ``paper`` is the empty override (function defaults are paper scale);
    ``quick`` shrinks graphs and query counts so every experiment
    finishes in seconds.
    """
    if scale == "paper":
        return {}
    if scale != "quick":
        raise ValueError(f"unknown scale {scale!r}")
    quick: dict[str, dict] = {
        "fig8": {"n": 400, "edge_counts": range(420, 800, 90),
                 "num_queries": 5000},
        "fig9": {"n": 400, "edge_counts": range(420, 800, 90),
                 "num_queries": 5000},
        "fig10": {"n": 400, "edge_counts": range(420, 800, 90),
                  "num_queries": 5000},
        "fig11": {"sizes": (200, 400, 600), "num_queries": 5000},
        "fig12": {"n": 400, "edge_counts": range(420, 640, 40)},
        "fig13": {"n": 400, "edge_counts": range(420, 640, 40),
                  "num_queries": 5000},
        "fig14": {"n": 2000, "edge_counts": (2100, 2400, 2800)},
        "table2": {"num_queries": 5000, "names": ("HpyCyc", "XMark")},
        "ablation_meg": {"n": 400, "edge_counts": (450, 550, 700)},
        "ablation_tlc": {"n": 400, "edge_counts": (450, 550, 700),
                         "num_queries": 5000},
        "amortization": {"n": 400, "num_queries": 3000},
        "latency_tails": {"n": 400, "num_queries": 3000},
    }
    return quick.get(name, {})


def run_experiment(name: str, scale: str = "paper",
                   **overrides) -> ExperimentResult:
    """Run one registered experiment with optional overrides."""
    try:
        func = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; available: {known}"
                       ) from None
    params = scaled_overrides(name, scale)
    params.update(overrides)
    return func(**params)


def _save(result: ExperimentResult, out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    columns = result.column_order()
    markdown = format_markdown_table(result.rows, columns,
                                     title=result.title)
    if result.notes:
        markdown += f"\n\n> {result.notes}\n"
    (out_dir / f"{result.name}.md").write_text(markdown, encoding="utf-8")
    (out_dir / f"{result.name}.csv").write_text(
        format_csv(result.rows, columns), encoding="utf-8")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     choices=sorted(EXPERIMENTS) + ["all"],
                     help="experiment name")
    run.add_argument("--scale", choices=("paper", "quick"), default="paper",
                     help="paper-scale parameters or a quick smoke run")
    run.add_argument("--out", type=Path, default=None,
                     help="directory to save markdown/CSV results")
    run.add_argument("--chart", action="store_true",
                     help="also print an ASCII chart of the main series")

    sub.add_parser("list", help="list available experiments")

    claims = sub.add_parser(
        "claims", help="grade the paper-fidelity claims (PASS/FAIL)")
    claims.add_argument("--scale", choices=("paper", "quick"),
                        default="quick")

    args = parser.parse_args(argv)
    if args.command == "claims":
        from repro.bench.claims import run_claims

        verdicts = run_claims(scale=args.scale)
        for verdict in verdicts:
            print(verdict.summary())
        failed = sum(1 for v in verdicts if not v.passed)
        print(f"\n{len(verdicts) - failed}/{len(verdicts)} fidelity "
              f"claims hold at scale={args.scale}")
        return 1 if failed else 0
    if args.command == "list":
        for name, func in sorted(EXPERIMENTS.items()):
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:14s} {doc}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment]
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, scale=args.scale)
        elapsed = time.perf_counter() - started
        print(format_markdown_table(result.rows, result.column_order(),
                                    title=result.title))
        if args.chart:
            chart = experiment_chart(result)
            if chart:
                print()
                print(chart)
        if result.notes:
            print(f"\n> {result.notes}")
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
        if args.out is not None:
            _save(result, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
