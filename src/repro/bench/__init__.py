"""Benchmark harness: workloads, the paper's timing protocol, experiment
definitions for every table/figure, and a runner CLI
(``python -m repro.bench run fig8``)."""

from repro.bench.charts import experiment_chart, render_series_chart
from repro.bench.compare import (
    CellDelta,
    ComparisonReport,
    compare_result_files,
    compare_rows,
)
from repro.bench.claims import (
    CLAIMS,
    ClaimResult,
    evaluate_claims,
    run_claims,
)
from repro.bench.goldens import (
    GoldenWorkload,
    check_against_golden,
    create_golden,
    load_golden,
    save_golden,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ablation_meg,
    ablation_tlc,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    amortization,
    latency_tails,
    preprocess,
    table2,
)
from repro.bench.reporting import format_csv, format_markdown_table
from repro.bench.profiles import (
    AmortizationReport,
    LatencyProfile,
    amortization_point,
    latency_profile,
)
from repro.bench.runner import run_experiment
from repro.bench.timing import (
    BuildMeasurement,
    QueryMeasurement,
    measure_build_time,
    measure_query_time,
)
from repro.bench.workloads import (
    mixed_query_pairs,
    positive_query_pairs,
    random_query_pairs,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "preprocess",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table2",
    "ablation_meg",
    "ablation_tlc",
    "amortization",
    "latency_tails",
    "experiment_chart",
    "render_series_chart",
    "CellDelta",
    "ComparisonReport",
    "compare_result_files",
    "compare_rows",
    "AmortizationReport",
    "LatencyProfile",
    "amortization_point",
    "latency_profile",
    "CLAIMS",
    "ClaimResult",
    "evaluate_claims",
    "run_claims",
    "GoldenWorkload",
    "create_golden",
    "save_golden",
    "load_golden",
    "check_against_golden",
    "format_markdown_table",
    "format_csv",
    "BuildMeasurement",
    "QueryMeasurement",
    "measure_build_time",
    "measure_query_time",
    "random_query_pairs",
    "positive_query_pairs",
    "mixed_query_pairs",
]
