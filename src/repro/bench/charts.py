"""Terminal chart rendering for experiment results.

The paper presents Figures 8–14 as bar/line charts; the runner prints
their data as tables plus, via this module, a quick ASCII rendering so
the *shape* (orderings, crossovers, growth rates) is visible at a
glance without leaving the terminal.

Values spanning orders of magnitude (indexing times with 2-hop in the
mix) are drawn on a log scale automatically.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

__all__ = ["render_series_chart", "experiment_chart"]

_BAR = "▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A unicode bar filling ``fraction`` of ``width`` columns."""
    fraction = min(max(fraction, 0.0), 1.0)
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * full
    if remainder > 1 / 16 and full < width:
        bar += _BAR[min(int(remainder * 8), 7)]
    return bar


def render_series_chart(rows: Sequence[Mapping[str, Any]],
                        x_key: str,
                        series_keys: Sequence[str],
                        title: str = "",
                        width: int = 44,
                        log_scale: bool | None = None) -> str:
    """Render grouped horizontal bars: one group per row, one bar per
    series.

    Parameters
    ----------
    rows: experiment rows (missing/None series values are skipped).
    x_key: the row key used as the group label (e.g. ``"m"``).
    series_keys: row keys to draw as bars (e.g. ``"dual-i_query_ms"``).
    title: optional heading.
    width: bar width in columns.
    log_scale: force log/linear; default decides automatically (log
        when the value spread exceeds 50x).
    """
    values: list[float] = []
    for row in rows:
        for key in series_keys:
            value = row.get(key)
            if isinstance(value, (int, float)) and value > 0:
                values.append(float(value))
    if not values:
        return f"{title}\n(no data)" if title else "(no data)"

    lo, hi = min(values), max(values)
    if log_scale is None:
        log_scale = hi / lo > 50 if lo > 0 else True

    def scale(value: float) -> float:
        if value <= 0:
            return 0.0
        if not log_scale:
            return value / hi
        if hi == lo:
            return 1.0
        return (math.log10(value) - math.log10(lo) + 0.05) / \
            (math.log10(hi) - math.log10(lo) + 0.05)

    label_width = max(len(str(key)) for key in series_keys)
    lines: list[str] = []
    if title:
        scale_tag = "log scale" if log_scale else "linear scale"
        lines.append(f"{title}  [{scale_tag}]")
    for row in rows:
        lines.append(f"{x_key}={row.get(x_key)}")
        for key in series_keys:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                continue
            lines.append(f"  {str(key):<{label_width}} "
                         f"{_bar(scale(float(value)), width):<{width}} "
                         f"{value:,.3g}")
    return "\n".join(lines)


def experiment_chart(result, width: int = 44) -> str:
    """Best-effort chart for an :class:`ExperimentResult`.

    Picks the per-scheme measurement columns (query, index, or space)
    and the natural x axis; returns ``""`` when the result has no
    chartable series.
    """
    if not result.rows:
        return ""
    sample = result.rows[0]
    for suffix in ("_query_ms", "_index_ms", "_space_bytes", "_build_ms"):
        series = [key for key in sample if key.endswith(suffix)]
        if series:
            break
    else:
        return ""
    for x_key in ("m", "n", "graph", "density"):
        if x_key in sample:
            break
    else:
        x_key = next(iter(sample))
    return render_series_chart(result.rows, x_key, series,
                               title=result.title, width=width)
