"""Result comparison: diff two experiment CSVs and flag regressions.

The runner saves every experiment as CSV (``--out``); this module
compares two such files — e.g. yesterday's ``results/fig13.csv``
against today's — and reports per-cell ratios for the measurement
columns, flagging any that moved beyond a tolerance.  Intended for
performance CI on the reproduction itself ("did dual-i's query time
regress?").

Rows are matched positionally (experiments are deterministic: same
parameters → same row order); only numeric columns whose name carries a
measurement suffix (``_ms``, ``_us``, ``_bytes``, ``_seconds``) are
compared.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.exceptions import DatasetError

__all__ = ["CellDelta", "ComparisonReport", "compare_result_files",
           "compare_rows"]

PathLike = Union[str, Path]

_MEASUREMENT_SUFFIXES = ("_ms", "_us", "_bytes", "_seconds")


@dataclass(frozen=True)
class CellDelta:
    """One measurement cell's movement between two runs."""

    row: int
    column: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline (``inf`` when baseline is 0)."""
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def __repr__(self) -> str:
        return (f"CellDelta(row={self.row}, {self.column}: "
                f"{self.baseline:g} -> {self.current:g}, "
                f"x{self.ratio:.2f})")


@dataclass(frozen=True)
class ComparisonReport:
    """All compared cells plus the ones beyond tolerance."""

    num_rows: int
    columns: list[str]
    deltas: list[CellDelta] = field(default_factory=list)
    regressions: list[CellDelta] = field(default_factory=list)
    improvements: list[CellDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` iff nothing regressed beyond tolerance."""
        return not self.regressions

    def summary(self) -> str:
        """One-line verdict."""
        if self.ok:
            return (f"OK — {len(self.deltas)} cells compared over "
                    f"{self.num_rows} rows, no regressions "
                    f"({len(self.improvements)} improvements)")
        worst = max(self.regressions, key=lambda d: d.ratio)
        return (f"REGRESSIONS — {len(self.regressions)} of "
                f"{len(self.deltas)} cells slowed down; worst {worst!r}")


def _is_measurement(column: str) -> bool:
    return column.endswith(_MEASUREMENT_SUFFIXES)


def compare_rows(baseline: list[dict], current: list[dict],
                 tolerance: float = 1.25) -> ComparisonReport:
    """Compare two row lists (see module docstring for matching rules).

    ``tolerance`` is the current/baseline ratio above which a cell
    counts as a regression (and below whose reciprocal it counts as an
    improvement).
    """
    if tolerance <= 1.0:
        raise ValueError(f"tolerance must exceed 1.0, got {tolerance}")
    num_rows = min(len(baseline), len(current))
    columns = [c for c in (baseline[0] if baseline else {})
               if _is_measurement(c)]
    deltas: list[CellDelta] = []
    regressions: list[CellDelta] = []
    improvements: list[CellDelta] = []
    for i in range(num_rows):
        for column in columns:
            try:
                old = float(baseline[i].get(column, ""))
                new = float(current[i].get(column, ""))
            except (TypeError, ValueError):
                continue
            delta = CellDelta(row=i, column=column, baseline=old,
                              current=new)
            deltas.append(delta)
            if delta.ratio > tolerance:
                regressions.append(delta)
            elif delta.ratio < 1.0 / tolerance:
                improvements.append(delta)
    return ComparisonReport(num_rows=num_rows, columns=columns,
                            deltas=deltas, regressions=regressions,
                            improvements=improvements)


def compare_result_files(baseline_path: PathLike, current_path: PathLike,
                         tolerance: float = 1.25) -> ComparisonReport:
    """Compare two runner-produced CSV files.

    Raises
    ------
    DatasetError
        If either file cannot be parsed as CSV.
    """
    def _read(path: PathLike) -> list[dict]:
        path = Path(path)
        try:
            with path.open("r", encoding="utf-8", newline="") as fh:
                return list(csv.DictReader(fh))
        except OSError as exc:
            raise DatasetError(f"{path}: {exc}") from exc

    return compare_rows(_read(baseline_path), _read(current_path),
                        tolerance=tolerance)
