"""Golden workloads: persisted query sets with ground-truth answers.

A *golden* couples a seeded workload with the BFS-oracle answer for
every pair, serialised as one JSON file.  Uses:

* **cross-version correctness** — regenerate an index with new code and
  check it against a golden produced by an old version;
* **cross-implementation checks** — hand the file to another dual-
  labeling implementation and compare answers;
* **frozen regression fixtures** — goldens are deterministic given
  (graph, count, seed), so the file can live in version control.

Node names must be JSON scalars (the same restriction as index
serialisation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.bench.workloads import random_query_pairs
from repro.core.base import ReachabilityIndex
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import is_reachable_search

__all__ = ["GoldenWorkload", "create_golden", "save_golden",
           "load_golden", "check_against_golden"]

PathLike = Union[str, Path]

_FORMAT = "repro-golden"
_VERSION = 1


@dataclass(frozen=True)
class GoldenWorkload:
    """A workload plus its ground-truth answers."""

    seed: int
    pairs: list[tuple[Node, Node]]
    answers: list[bool]

    def __post_init__(self) -> None:
        if len(self.pairs) != len(self.answers):
            raise ValueError("pairs and answers must align")

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def positives(self) -> int:
        """Number of reachable pairs."""
        return sum(self.answers)


def create_golden(graph: DiGraph, num_queries: int,
                  seed: int = 0) -> GoldenWorkload:
    """Draw a seeded workload and answer it with the BFS oracle."""
    pairs = random_query_pairs(graph, num_queries, seed=seed)
    answers = [is_reachable_search(graph, u, v) for u, v in pairs]
    return GoldenWorkload(seed=seed, pairs=pairs, answers=answers)


def save_golden(golden: GoldenWorkload, path: PathLike) -> None:
    """Write a golden to ``path`` as JSON."""
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "seed": golden.seed,
        "pairs": [[u, v] for u, v in golden.pairs],
        "answers": golden.answers,
    }
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def load_golden(path: PathLike) -> GoldenWorkload:
    """Read a golden written by :func:`save_golden`.

    Raises
    ------
    DatasetError
        On malformed documents.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(document, dict) or document.get("format") != _FORMAT:
        raise DatasetError(f"{path}: not a {_FORMAT} document")
    try:
        pairs = [(u, v) for u, v in document["pairs"]]
        answers = [bool(a) for a in document["answers"]]
        return GoldenWorkload(seed=int(document["seed"]), pairs=pairs,
                              answers=answers)
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"{path}: malformed golden ({exc})") from exc


def check_against_golden(index: ReachabilityIndex,
                         golden: GoldenWorkload,
                         max_mismatches: int = 20
                         ) -> list[tuple[Node, Node, bool, bool]]:
    """Answer the golden's pairs with ``index``; return disagreements.

    Each mismatch is ``(u, v, index_answer, golden_answer)``; an empty
    list means full agreement.
    """
    mismatches: list[tuple[Node, Node, bool, bool]] = []
    for (u, v), expected in zip(golden.pairs, golden.answers):
        actual = index.reachable(u, v)
        if actual != expected:
            mismatches.append((u, v, actual, expected))
            if len(mismatches) >= max_mismatches:
                break
    return mismatches
