"""Latency profiles and build-cost amortization analysis.

Beyond the paper's aggregate query-time protocol, two questions decide
whether an index is worth building in practice:

* **Latency distribution** — aggregate milliseconds hide tail latency;
  :func:`latency_profile` measures per-query latencies and reports
  p50/p90/p99/max.  (Schemes with data-dependent query cost — online
  BFS, GRAIL's fallback DFS, long interval labels — have heavy tails
  that the mean obscures.)
* **Amortization point** — building Dual-I costs time an online search
  would not pay; :func:`amortization_point` computes after how many
  queries the index's (build + per-query) total undercuts the no-index
  baseline, i.e. where the paper's approach starts winning end to end.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any

from repro.bench.timing import measure_build_time, measure_query_time
from repro.core.base import ReachabilityIndex
from repro.graph.digraph import DiGraph, Node

__all__ = ["LatencyProfile", "latency_profile", "AmortizationReport",
           "amortization_point"]


@dataclass(frozen=True)
class LatencyProfile:
    """Per-query latency distribution (seconds)."""

    scheme: str
    num_queries: int
    p50: float
    p90: float
    p99: float
    maximum: float
    mean: float

    def as_dict(self) -> dict[str, Any]:
        """Flat dict (microseconds) for reporting."""
        return {
            "scheme": self.scheme,
            "num_queries": self.num_queries,
            "p50_us": 1e6 * self.p50,
            "p90_us": 1e6 * self.p90,
            "p99_us": 1e6 * self.p99,
            "max_us": 1e6 * self.maximum,
            "mean_us": 1e6 * self.mean,
        }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def latency_profile(index: ReachabilityIndex,
                    pairs: list[tuple[Node, Node]]) -> LatencyProfile:
    """Measure each query individually and summarise the distribution.

    Per-query timing carries clock overhead (~100 ns), so absolute
    values skew slightly high; the *relative* spread (tail vs median)
    is the signal.
    """
    reach = index.reachable
    clock = time.perf_counter
    latencies = []
    for u, v in pairs:
        start = clock()
        reach(u, v)
        latencies.append(clock() - start)
    latencies.sort()
    total = sum(latencies)
    return LatencyProfile(
        scheme=getattr(index, "scheme_name", type(index).__name__),
        num_queries=len(pairs),
        p50=_percentile(latencies, 0.50),
        p90=_percentile(latencies, 0.90),
        p99=_percentile(latencies, 0.99),
        maximum=latencies[-1] if latencies else 0.0,
        mean=total / len(latencies) if latencies else 0.0,
    )


@dataclass(frozen=True)
class AmortizationReport:
    """When an index's total cost undercuts the no-index baseline.

    ``break_even_queries`` is the smallest query count ``q`` with
    ``build + q·per_query <= q·baseline_per_query``; ``None`` when the
    indexed per-query cost is not actually below the baseline's (the
    index never pays off).
    """

    scheme: str
    build_seconds: float
    per_query_seconds: float
    baseline_per_query_seconds: float
    break_even_queries: int | None

    def total_seconds(self, num_queries: int) -> float:
        """Indexed total cost for a workload of ``num_queries``."""
        return self.build_seconds + num_queries * self.per_query_seconds


def amortization_point(graph: DiGraph, scheme: str,
                       sample_pairs: list[tuple[Node, Node]],
                       baseline_scheme: str = "online-bfs",
                       **options: Any) -> AmortizationReport:
    """Compute the break-even query count of ``scheme`` vs no index.

    Both schemes answer the same ``sample_pairs`` workload to estimate
    per-query cost (the paper's no-op subtraction applied to each).
    """
    built = measure_build_time(graph, scheme, **options)
    indexed = measure_query_time(built.index, sample_pairs)

    baseline_built = measure_build_time(graph, baseline_scheme)
    baseline = measure_query_time(baseline_built.index, sample_pairs)

    n = max(1, len(sample_pairs))
    per_query = indexed.seconds / n
    baseline_per_query = baseline.seconds / n

    if per_query >= baseline_per_query:
        break_even = None
    else:
        # The baseline's "build" is just snapshotting a graph the
        # application already holds, so it does not offset the index's
        # construction cost.
        saving = baseline_per_query - per_query
        break_even = max(1, math.ceil(built.seconds / saving))
    return AmortizationReport(
        scheme=scheme,
        build_seconds=built.seconds,
        per_query_seconds=per_query,
        baseline_per_query_seconds=baseline_per_query,
        break_even_queries=break_even,
    )
