"""Experiment definitions: one function per table/figure of the paper.

Each function regenerates the data series behind a Section 6 exhibit and
returns an :class:`ExperimentResult` (rows of flat dicts) that
:mod:`repro.bench.reporting` renders as a table.  Paper-scale parameters
are the defaults; every function accepts smaller parameters so the
pytest-benchmark suite can run the same code quickly.

Measurement conventions (matching the paper):

* Figures 8–14 preprocess each graph once (SCC condensation + minimal
  equivalent graph) and then time *labeling* of the preprocessed DAG —
  "indexing time of the random graph (after preprocessing)".
* Query time uses the no-op-subtracted 100k-random-pair protocol of
  :mod:`repro.bench.timing`.
* The interval baseline runs in its paper-faithful subset-probe mode
  (Section 2's "every interval in L(v) contained by some interval in
  L(u)" test); 2-hop runs the Cohen-style greedy unless a caller opts
  out.
* Space is :attr:`IndexStats.total_space_bytes` (logical bytes, uniform
  convention across schemes — see :mod:`repro.core.base`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.bench.timing import measure_build_time, measure_query_time
from repro.bench.workloads import random_query_pairs
from repro.core.base import build_index
from repro.datasets import TABLE2_SPECS, get_spec, load_dataset
from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph, single_rooted_dag
from repro.graph.meg import minimal_equivalent_graph

__all__ = [
    "ExperimentResult",
    "SCHEME_BUILD_OPTIONS",
    "preprocess",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table2",
    "ablation_meg",
    "ablation_tlc",
    "amortization",
    "latency_tails",
    "EXPERIMENTS",
]

#: Paper-faithful build options per scheme (see module docstring).
SCHEME_BUILD_OPTIONS: dict[str, dict[str, Any]] = {
    "interval": {"probe": "subset"},
    "2hop": {"strategy": "greedy"},
    # Preprocessing happens once, outside the schemes, so the dual schemes
    # must not re-run MEG during the timed labeling phase.
    "dual-i": {"use_meg": False},
    "dual-ii": {"use_meg": False},
    "dual-rt": {"use_meg": False},
}


@dataclass
class ExperimentResult:
    """The regenerated data behind one table/figure."""

    name: str
    title: str
    rows: list[dict[str, Any]]
    columns: list[str] = field(default_factory=list)
    notes: str = ""

    def column_order(self) -> list[str]:
        """Explicit column order, or first-appearance order."""
        if self.columns:
            return self.columns
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)


def preprocess(graph: DiGraph) -> tuple[DiGraph, dict[str, int]]:
    """Condense SCCs and reduce to the MEG — Section 6's shared prep.

    Returns the preprocessed DAG and the counters the Figure 8 (top) bar
    chart reports.
    """
    cond = condense(graph)
    meg = minimal_equivalent_graph(cond.dag)
    counters = {
        "nodes_original": graph.num_nodes,
        "edges_original": graph.num_edges,
        "nodes_dag": cond.num_components,
        "edges_dag": cond.dag.num_edges,
        "edges_meg": meg.graph.num_edges,
    }
    return meg.graph, counters


def _options_for(scheme: str) -> dict[str, Any]:
    return dict(SCHEME_BUILD_OPTIONS.get(scheme, {}))


def _measure_schemes(dag: DiGraph, schemes: Sequence[str],
                     num_queries: int, seed: int,
                     row: dict[str, Any]) -> None:
    """Fill ``row`` with per-scheme indexing/query/space measurements."""
    pairs = random_query_pairs(dag, num_queries, seed=seed)
    for scheme in schemes:
        built = measure_build_time(dag, scheme, **_options_for(scheme))
        queried = measure_query_time(built.index, pairs)
        row[f"{scheme}_index_ms"] = 1000.0 * built.seconds
        row[f"{scheme}_query_ms"] = 1000.0 * queried.seconds
        row[f"{scheme}_space_bytes"] = built.index.stats().total_space_bytes
        row.setdefault("positives", queried.positives)


# ----------------------------------------------------------------------
# Figure 8: random graphs, |V| = 2000, |E| = 2100..3900
# ----------------------------------------------------------------------
def fig8(n: int = 2000,
         edge_counts: Iterable[int] = range(2100, 4000, 200),
         num_queries: int = 100_000,
         seed: int = 0,
         schemes: Sequence[str] = ("interval", "dual-i", "dual-ii", "2hop"),
         ) -> ExperimentResult:
    """Figure 8: preprocessing ratios, indexing time, and query time on
    uniform random digraphs."""
    rows = []
    for m in edge_counts:
        graph = gnm_random_digraph(n, m, seed=seed + m)
        dag, counters = preprocess(graph)
        row: dict[str, Any] = {"n": n, "m": m}
        row.update(counters)
        row["node_ratio"] = counters["nodes_dag"] / n
        row["edge_ratio"] = counters["edges_meg"] / m
        _measure_schemes(dag, schemes, num_queries, seed + m + 1, row)
        rows.append(row)
    return ExperimentResult(
        name="fig8",
        title=(f"Figure 8 — random graphs (|V|={n}, |Q|={num_queries}): "
               "preprocessing reduction, indexing time, query time"),
        rows=rows,
        notes=("Paper shape: node/edge ratios fall as m grows; "
               "Interval ≈ Dual-I ≈ Dual-II ≪ 2-hop on indexing time; "
               "Dual-I fastest on query time, Interval slowest, "
               "Dual-II ≈ 2-hop."),
    )


# ----------------------------------------------------------------------
# Figure 9/10: single-rooted DAGs, fanout 5 and 9
# ----------------------------------------------------------------------
def _dag_experiment(name: str, title: str, notes: str, n: int,
                    edge_counts: Iterable[int], max_fanout: int,
                    num_queries: int, seed: int,
                    schemes: Sequence[str]) -> ExperimentResult:
    rows = []
    for m in edge_counts:
        graph = single_rooted_dag(n, m, max_fanout=max_fanout, seed=seed + m)
        dag, counters = preprocess(graph)
        row: dict[str, Any] = {"n": n, "m": m, "max_fanout": max_fanout}
        row.update(counters)
        _measure_schemes(dag, schemes, num_queries, seed + m + 1, row)
        rows.append(row)
    return ExperimentResult(name=name, title=title, rows=rows, notes=notes)


def fig9(n: int = 2000,
         edge_counts: Iterable[int] = range(2100, 4000, 200),
         num_queries: int = 100_000,
         seed: int = 0,
         schemes: Sequence[str] = ("interval", "dual-i", "dual-ii", "2hop"),
         ) -> ExperimentResult:
    """Figure 9: indexing and query time on single-rooted DAGs
    (max fanout 5)."""
    return _dag_experiment(
        "fig9",
        f"Figure 9 — single-rooted DAGs (|V|={n}, fanout<=5, "
        f"|Q|={num_queries})",
        ("Paper shape: same ordering as Figure 8; 2-hop slower than on "
         "random graphs at low m because the DAG is fully connected."),
        n, edge_counts, 5, num_queries, seed, schemes)


def fig10(n: int = 2000,
          edge_counts: Iterable[int] = range(2100, 4000, 200),
          num_queries: int = 100_000,
          seed: int = 0,
          schemes: Sequence[str] = ("interval", "dual-i", "dual-ii", "2hop"),
          ) -> ExperimentResult:
    """Figure 10: query time with max fanout 9 (shape insensitivity)."""
    return _dag_experiment(
        "fig10",
        f"Figure 10 — single-rooted DAGs (|V|={n}, fanout<=9, "
        f"|Q|={num_queries})",
        "Paper shape: query performance is not sensitive to tree fanout.",
        n, edge_counts, 9, num_queries, seed, schemes)


# ----------------------------------------------------------------------
# Figure 11: fixed density, growing size
# ----------------------------------------------------------------------
def fig11(sizes: Iterable[int] = (1000, 2000, 3000, 4000, 5000),
          density: float = 1.5,
          num_queries: int = 100_000,
          seed: int = 0,
          schemes: Sequence[str] = ("interval", "dual-i", "dual-ii", "2hop"),
          ) -> ExperimentResult:
    """Figure 11: indexing time for DAGs of fixed density m/n = 1.5,
    increasing size."""
    rows = []
    for n in sizes:
        m = int(n * density)
        graph = single_rooted_dag(n, m, max_fanout=5, seed=seed + n)
        dag, counters = preprocess(graph)
        row: dict[str, Any] = {"n": n, "m": m, "density": density}
        row.update(counters)
        _measure_schemes(dag, schemes, num_queries, seed + n + 1, row)
        rows.append(row)
    return ExperimentResult(
        name="fig11",
        title=(f"Figure 11 — DAGs of fixed density m/n={density}, "
               "increasing size: indexing time"),
        rows=rows,
        notes=("Paper shape: Interval fastest to build; Dual-I/Dual-II "
               "slightly slower but comparable; 2-hop several orders "
               "slower."),
    )


# ----------------------------------------------------------------------
# Figures 12/13/14: space and query time vs density, incl. closure
# ----------------------------------------------------------------------
def fig12(n: int = 2000,
          edge_counts: Iterable[int] = range(2100, 3100, 100),
          seed: int = 0,
          schemes: Sequence[str] = ("interval", "dual-i", "dual-ii", "2hop"),
          ) -> ExperimentResult:
    """Figure 12: label/index sizes vs density (n=2000), with the
    transitive-closure matrix as the reference line."""
    closure_bytes = (n * n + 7) // 8
    rows = []
    for m in edge_counts:
        graph = single_rooted_dag(n, m, max_fanout=5, seed=seed + m)
        dag, counters = preprocess(graph)
        row: dict[str, Any] = {"n": n, "m": m,
                               "closure_space_bytes": closure_bytes}
        row.update(counters)
        for scheme in schemes:
            index = build_index(dag, scheme=scheme, **_options_for(scheme))
            stats = index.stats()
            row[f"{scheme}_space_bytes"] = stats.total_space_bytes
            if stats.t is not None:
                row.setdefault("t", stats.t)
                row.setdefault("transitive_links", stats.transitive_links)
        rows.append(row)
    return ExperimentResult(
        name="fig12",
        title=f"Figure 12 — label sizes of DAGs (|V|={n})",
        rows=rows,
        notes=("Paper shape: Dual-I space grows fast with density "
               "(t² matrix); Dual-II comparable to 2-hop and Interval; "
               "all below the n²-bit closure line on sparse graphs."),
    )


def fig13(n: int = 2000,
          edge_counts: Iterable[int] = range(2100, 3100, 100),
          num_queries: int = 100_000,
          seed: int = 0,
          schemes: Sequence[str] = ("interval", "dual-i", "dual-ii", "2hop",
                                    "closure"),
          ) -> ExperimentResult:
    """Figure 13: query time vs density, including the closure matrix."""
    rows = []
    for m in edge_counts:
        graph = single_rooted_dag(n, m, max_fanout=5, seed=seed + m)
        dag, counters = preprocess(graph)
        row: dict[str, Any] = {"n": n, "m": m}
        row.update(counters)
        _measure_schemes(dag, schemes, num_queries, seed + m + 1, row)
        rows.append(row)
    return ExperimentResult(
        name="fig13",
        title=f"Figure 13 — query time of DAGs (|V|={n}, |Q|={num_queries})",
        rows=rows,
        notes=("Paper shape: Dual-I barely worse than the transitive-"
               "closure matrix and much better than the other labelings."),
    )


def fig14(n: int = 10_000,
          edge_counts: Iterable[int] = (10500, 11000, 12000, 13000, 14000,
                                        15000),
          seed: int = 0,
          schemes: Sequence[str] = ("interval", "dual-i", "dual-ii"),
          ) -> ExperimentResult:
    """Figure 14: label sizes at n = 10000 (2-hop omitted — too slow to
    build, as in the paper)."""
    closure_bytes = (n * n + 7) // 8
    rows = []
    for m in edge_counts:
        graph = single_rooted_dag(n, m, max_fanout=5, seed=seed + m)
        dag, counters = preprocess(graph)
        row: dict[str, Any] = {"n": n, "m": m,
                               "closure_space_bytes": closure_bytes}
        row.update(counters)
        for scheme in schemes:
            index = build_index(dag, scheme=scheme, **_options_for(scheme))
            row[f"{scheme}_space_bytes"] = index.stats().total_space_bytes
        rows.append(row)
    return ExperimentResult(
        name="fig14",
        title=f"Figure 14 — label sizes of DAGs (|V|={n}), no 2-hop",
        rows=rows,
        notes=("Paper omits 2-hop here because labeling 10k-node graphs "
               "with it is impractical — the point of dual labeling."),
    )


# ----------------------------------------------------------------------
# Table 2: real-graph stand-ins
# ----------------------------------------------------------------------
def table2(names: Sequence[str] | None = None,
           num_queries: int = 100_000,
           seed: int = 0,
           schemes: Sequence[str] = ("interval", "dual-i", "dual-ii"),
           ) -> ExperimentResult:
    """Table 2: the five real graphs (calibrated synthetic stand-ins).

    Unlike the figure experiments, indexing time here is the *full* build
    including condensation and MEG, as an end-to-end figure of merit.
    """
    rows = []
    if names is None:
        # Table 2 graphs only — scenario packs carry no paper columns.
        names = list(TABLE2_SPECS)
    for name in names:
        spec = get_spec(name)
        graph = load_dataset(name, seed=seed)
        _, counters = preprocess(graph)
        row: dict[str, Any] = {
            "graph": name,
            "V_G": counters["nodes_original"],
            "E_G": counters["edges_original"],
            "V_DAG": counters["nodes_dag"],
            "E_DAG": counters["edges_dag"],
            "E_MEG": counters["edges_meg"],
            "paper_V_DAG": spec.dag_nodes,
            "paper_E_DAG": spec.dag_edges,
            "paper_E_MEG": spec.meg_edges,
        }
        pairs = random_query_pairs(graph, num_queries, seed=seed + 1)
        for scheme in schemes:
            options = _options_for(scheme)
            options.pop("use_meg", None)  # full build includes MEG
            built = measure_build_time(graph, scheme, **options)
            queried = measure_query_time(built.index, pairs)
            row[f"{scheme}_index_ms"] = 1000.0 * built.seconds
            row[f"{scheme}_query_ms"] = 1000.0 * queried.seconds
        rows.append(row)
    return ExperimentResult(
        name="table2",
        title=f"Table 2 — real graphs (stand-ins), |Q|={num_queries}",
        rows=rows,
        notes=("Datasets are calibrated synthetic stand-ins (DESIGN.md §3)."
               " Paper shape: Dual-I/Dual-II indexing within a hair of "
               "Interval; query time at least one order faster than "
               "Interval."),
    )


# ----------------------------------------------------------------------
# Ablations (design-choice experiments beyond the paper's exhibits)
# ----------------------------------------------------------------------
def ablation_meg(n: int = 2000,
                 edge_counts: Iterable[int] = (2200, 2600, 3000, 3400, 3800),
                 seed: int = 0) -> ExperimentResult:
    """Ablation: effect of the MEG step on t, |T|, space, build time."""
    rows = []
    for m in edge_counts:
        graph = gnm_random_digraph(n, m, seed=seed + m)
        row: dict[str, Any] = {"n": n, "m": m}
        for use_meg, tag in ((False, "no_meg"), (True, "meg")):
            built = measure_build_time(graph, "dual-i", use_meg=use_meg)
            stats = built.index.stats()
            row[f"{tag}_t"] = stats.t
            row[f"{tag}_transitive_links"] = stats.transitive_links
            row[f"{tag}_space_bytes"] = stats.total_space_bytes
            row[f"{tag}_build_ms"] = 1000.0 * built.seconds
        rows.append(row)
    return ExperimentResult(
        name="ablation_meg",
        title="Ablation — minimal equivalent graph on/off (Dual-I)",
        rows=rows,
        notes=("MEG shrinks t and therefore the transitive link table and "
               "TLC matrix, at a small build-time cost — Section 5's "
               "motivation, quantified."),
    )


def ablation_tlc(n: int = 2000,
                 edge_counts: Iterable[int] = (2200, 2600, 3000, 3400, 3800),
                 num_queries: int = 50_000,
                 seed: int = 0) -> ExperimentResult:
    """Ablation: TLC backend — matrix vs search tree vs range tree."""
    rows = []
    for m in edge_counts:
        graph = single_rooted_dag(n, m, max_fanout=5, seed=seed + m)
        dag, counters = preprocess(graph)
        row: dict[str, Any] = {"n": n, "m": m}
        pairs = random_query_pairs(dag, num_queries, seed=seed + m + 1)
        for scheme in ("dual-i", "dual-ii", "dual-rt"):
            built = measure_build_time(dag, scheme, use_meg=False)
            queried = measure_query_time(built.index, pairs)
            stats = built.index.stats()
            row.setdefault("t", stats.t)
            row[f"{scheme}_build_ms"] = 1000.0 * built.seconds
            row[f"{scheme}_query_ms"] = 1000.0 * queried.seconds
            row[f"{scheme}_space_bytes"] = stats.total_space_bytes
        rows.append(row)
    return ExperimentResult(
        name="ablation_tlc",
        title="Ablation — TLC backend: matrix vs search tree vs range tree",
        rows=rows,
        notes=("The paper's Section 4 tradeoff, quantified: matrix wins "
               "query time, search tree wins space, range tree sits "
               "between (linear-in-|T| space, log² query)."),
    )


def amortization(n: int = 2000,
                 density: float = 1.3,
                 num_queries: int = 20_000,
                 seed: int = 0,
                 schemes: Sequence[str] = ("dual-i", "dual-ii",
                                           "interval", "closure"),
                 ) -> ExperimentResult:
    """Extension: after how many queries does each index pay for its
    build, versus answering with online BFS?"""
    from repro.bench.profiles import amortization_point

    graph = single_rooted_dag(n, int(n * density), max_fanout=5,
                              seed=seed + 77)
    pairs = random_query_pairs(graph, num_queries, seed=seed + 78)
    rows = []
    for scheme in schemes:
        options = _options_for(scheme)
        report = amortization_point(graph, scheme, pairs, **options)
        rows.append({
            "scheme": scheme,
            "n": n,
            "m": int(n * density),
            "build_ms": 1000.0 * report.build_seconds,
            "per_query_us": 1e6 * report.per_query_seconds,
            "bfs_per_query_us": 1e6 * report.baseline_per_query_seconds,
            "break_even_queries": report.break_even_queries,
        })
    return ExperimentResult(
        name="amortization",
        title=(f"Amortization — queries needed before each index beats "
               f"no-index BFS (n={n}, m/n={density})"),
        rows=rows,
        notes=("Builds pay off within a few thousand queries; the "
               "paper's applications fire orders of magnitude more."),
    )


def latency_tails(n: int = 2000,
                  density: float = 1.3,
                  num_queries: int = 20_000,
                  seed: int = 0,
                  schemes: Sequence[str] = ("dual-i", "dual-ii",
                                            "interval", "2hop",
                                            "online-bfs"),
                  ) -> ExperimentResult:
    """Extension: per-query latency distribution (p50/p90/p99/max) —
    constant-time schemes have flat tails; search-based ones do not."""
    from repro.bench.profiles import latency_profile

    graph = single_rooted_dag(n, int(n * density), max_fanout=5,
                              seed=seed + 79)
    dag, _ = preprocess(graph)
    pairs = random_query_pairs(dag, num_queries, seed=seed + 80)
    rows = []
    for scheme in schemes:
        index = build_index(dag, scheme=scheme, **_options_for(scheme))
        profile = latency_profile(index, pairs)
        rows.append(profile.as_dict())
    return ExperimentResult(
        name="latency_tails",
        title=(f"Latency tails — per-query p50/p90/p99/max "
               f"(n={n}, m/n={density}, |Q|={num_queries})"),
        rows=rows,
        notes=("Dual-I's max latency sits close to its median; online "
               "BFS and long-label schemes exhibit heavy tails the "
               "aggregate protocol hides."),
    )


#: Registry used by the CLI runner.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "table2": table2,
    "ablation_meg": ablation_meg,
    "ablation_tlc": ablation_tlc,
    "amortization": amortization,
    "latency_tails": latency_tails,
}
