"""``python -m repro.bench`` — experiment runner entry point."""

import sys

from repro.bench.runner import main

if __name__ == "__main__":
    sys.exit(main())
