"""Descriptive statistics of graphs, used by reports and dataset tables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph

__all__ = ["GraphStats", "graph_stats", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a digraph.

    ``num_sccs``/``largest_scc`` describe the cycle content the
    condensation step will collapse; ``num_roots`` counts in-degree-0 nodes
    (spanning-forest roots once the graph is a DAG).
    """

    num_nodes: int
    num_edges: int
    density: float
    num_roots: int
    num_leaves: int
    max_in_degree: int
    max_out_degree: int
    num_sccs: int
    largest_scc: int
    num_self_loops: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for report serialisation."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "density": self.density,
            "num_roots": self.num_roots,
            "num_leaves": self.num_leaves,
            "max_in_degree": self.max_in_degree,
            "max_out_degree": self.max_out_degree,
            "num_sccs": self.num_sccs,
            "largest_scc": self.largest_scc,
            "num_self_loops": self.num_self_loops,
        }


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    cond = condense(graph)
    in_degrees = [graph.in_degree(n) for n in graph.nodes()]
    out_degrees = [graph.out_degree(n) for n in graph.nodes()]
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        density=graph.density,
        num_roots=len(graph.roots()),
        num_leaves=len(graph.leaves()),
        max_in_degree=max(in_degrees, default=0),
        max_out_degree=max(out_degrees, default=0),
        num_sccs=cond.num_components,
        largest_scc=max((len(m) for m in cond.members), default=0),
        num_self_loops=len(graph.self_loops()),
    )


def degree_histogram(graph: DiGraph, direction: str = "out") -> dict[int, int]:
    """Histogram mapping degree -> node count.

    Parameters
    ----------
    direction: ``"out"`` (default), ``"in"``, or ``"total"``.
    """
    if direction not in {"out", "in", "total"}:
        raise ValueError(f"direction must be 'out', 'in' or 'total', "
                         f"got {direction!r}")
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        if direction == "out":
            degree = graph.out_degree(node)
        elif direction == "in":
            degree = graph.in_degree(node)
        else:
            degree = graph.in_degree(node) + graph.out_degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram
