"""Strongly connected components via an iterative Tarjan algorithm.

The paper's preprocessing step (Section 3) collapses each strongly connected
component into a representative node before labeling — reachability within
an SCC is trivially "everyone reaches everyone".  This module finds the
components in ``O(n + m)`` time; :mod:`repro.graph.condensation` performs the
collapse.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.digraph import DiGraph, Node

__all__ = ["strongly_connected_components", "scc_index", "is_strongly_connected"]


def strongly_connected_components(graph: DiGraph) -> list[list[Node]]:
    """Return the SCCs of ``graph`` as lists of nodes.

    Components are emitted in Tarjan order, which is a *reverse topological*
    order of the condensation (every component appears before any component
    that can reach it).  Within a component, nodes appear in the order the
    DFS popped them off Tarjan's stack.

    The implementation is fully iterative, so deep chain graphs (common in
    the paper's sparse workloads) do not hit the recursion limit.
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Each work-stack frame is (node, successor-iterator).
        work: list[tuple[Node, Iterator[Node]]] = [
            (root, graph.successors(root))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, graph.successors(succ)))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def scc_index(graph: DiGraph) -> dict[Node, int]:
    """Map every node to the id of its SCC.

    Ids follow the order of :func:`strongly_connected_components` (reverse
    topological over the condensation).
    """
    mapping: dict[Node, int] = {}
    for cid, component in enumerate(strongly_connected_components(graph)):
        for node in component:
            mapping[node] = cid
    return mapping


def is_strongly_connected(graph: DiGraph) -> bool:
    """Return ``True`` iff the whole graph is one SCC (and non-empty)."""
    if graph.num_nodes == 0:
        return False
    return len(strongly_connected_components(graph)) == 1
