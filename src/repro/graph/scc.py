"""Strongly connected components via an iterative Tarjan algorithm.

The paper's preprocessing step (Section 3) collapses each strongly connected
component into a representative node before labeling — reachability within
an SCC is trivially "everyone reaches everyone".  This module finds the
components in ``O(n + m)`` time; :mod:`repro.graph.condensation` performs the
collapse.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.graph.digraph import DiGraph, Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.csr import CSRGraph

__all__ = [
    "strongly_connected_components",
    "scc_index",
    "is_strongly_connected",
    "tarjan_scc_csr",
]


def strongly_connected_components(graph: DiGraph) -> list[list[Node]]:
    """Return the SCCs of ``graph`` as lists of nodes.

    Components are emitted in Tarjan order, which is a *reverse topological*
    order of the condensation (every component appears before any component
    that can reach it).  Within a component, nodes appear in the order the
    DFS popped them off Tarjan's stack.

    The implementation is fully iterative, so deep chain graphs (common in
    the paper's sparse workloads) do not hit the recursion limit.
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Each work-stack frame is (node, successor-iterator).
        work: list[tuple[Node, Iterator[Node]]] = [
            (root, graph.successors(root))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, graph.successors(succ)))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _dag_postorder_csr(csr: "CSRGraph") -> list[int] | None:
    """DFS postorder of a CSR graph, or ``None`` if it has a cycle.

    On an acyclic graph Tarjan degenerates: the DFS stack and Tarjan's
    component stack coincide, every node is its own component, and
    components pop exactly in DFS finish order — so the far lighter
    plain postorder (no index/lowlink bookkeeping) reproduces
    :func:`tarjan_scc_csr`'s emission order verbatim.

    The stack holds edge ids (non-negative) and finish sentinels
    (``~node``); popping an edge whose head is already visited skips it
    exactly when the cursor-based DFS would, so the postorder is
    identical.  Cycle detection is deferred: a DFS postorder reversed is
    a topological order iff the graph is acyclic, which one vectorised
    edge sweep checks at the end (self-loops fail it trivially).
    """
    n = csr.num_nodes
    ptr = csr.indptr.tolist()
    ind = csr.indices.tolist()
    visited = [False] * n
    post: list[int] = []
    append = post.append
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = True
        stack = [~root]
        stack.extend(range(ptr[root + 1] - 1, ptr[root] - 1, -1))
        pop = stack.pop
        push = stack.append
        extend = stack.extend
        while stack:
            e = pop()
            if e < 0:
                append(~e)
                continue
            v = ind[e]
            if visited[v]:
                continue
            visited[v] = True
            push(~v)
            a = ptr[v]
            b = ptr[v + 1]
            if b - a == 1:  # single-successor rows skip the range object
                push(a)
            elif b != a:
                extend(range(b - 1, a - 1, -1))
    if csr.num_edges:
        pos = np.empty(n, dtype=np.int64)
        pos[np.asarray(post, dtype=np.int64)] = np.arange(n, dtype=np.int64)
        if not bool((pos[csr.src_of_edge()] > pos[csr.indices]).all()):
            return None
    return post


def tarjan_scc_csr(csr: "CSRGraph") -> list[list[int]]:
    """Array-backed iterative Tarjan over a :class:`CSRGraph` snapshot.

    Exact mirror of :func:`strongly_connected_components` — DFS roots in
    id order, successors in CSR row (adjacency insertion) order, so both
    the component emission order (reverse topological) and the member
    order within each component are identical; only the bookkeeping
    differs (flat lists and a ``bytearray`` instead of dicts and sets).
    Returns components as lists of dense node ids.

    Acyclic inputs (the common case for the paper's workloads) take the
    :func:`_dag_postorder_csr` shortcut, which produces the identical
    singleton components without Tarjan's per-node bookkeeping.
    """
    post = _dag_postorder_csr(csr)
    if post is not None:
        return [[node] for node in post]
    n = csr.num_nodes
    ptr = csr.indptr.tolist()
    ind = csr.indices.tolist()
    UNVISITED = -1
    index_of = [UNVISITED] * n
    lowlink = [0] * n
    on_stack = bytearray(n)
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != UNVISITED:
            continue
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        # Work-stack frames: parallel lists of (node, edge cursor).
        work = [root]
        cursor = [ptr[root]]
        while work:
            node = work[-1]
            pos = cursor[-1]
            end = ptr[node + 1]
            advanced = False
            while pos < end:
                succ = ind[pos]
                pos += 1
                if index_of[succ] == UNVISITED:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = 1
                    cursor[-1] = pos
                    work.append(succ)
                    cursor.append(ptr[succ])
                    advanced = True
                    break
                if on_stack[succ]:
                    if index_of[succ] < lowlink[node]:
                        lowlink[node] = index_of[succ]
            if advanced:
                continue
            work.pop()
            cursor.pop()
            if work:
                parent = work[-1]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def scc_index(graph: DiGraph) -> dict[Node, int]:
    """Map every node to the id of its SCC.

    Ids follow the order of :func:`strongly_connected_components` (reverse
    topological over the condensation).
    """
    mapping: dict[Node, int] = {}
    for cid, component in enumerate(strongly_connected_components(graph)):
        for node in component:
            mapping[node] = cid
    return mapping


def is_strongly_connected(graph: DiGraph) -> bool:
    """Return ``True`` iff the whole graph is one SCC (and non-empty)."""
    if graph.num_nodes == 0:
        return False
    return len(strongly_connected_components(graph)) == 1
