"""Synthetic graph generators used by the paper's experiments (Section 6).

Every generator takes an explicit ``seed`` and is fully deterministic for a
given seed, so each experiment in :mod:`repro.bench` is exactly
re-runnable.

Generators
----------
* :func:`gnm_random_digraph` — uniform simple directed ``G(n, m)``; the
  analogue of the Boost Graph Library generator used for Figure 8.  These
  graphs typically contain cycles, exercising the SCC-condensation
  preprocessing path.
* :func:`single_rooted_dag` — the paper's Section 6.2 generator: a
  breadth-first spanning tree shaped by a ``max_fanout`` parameter, plus
  random extra edges oriented from shallower to deeper nodes (or
  left-to-right within a level), which keeps the result acyclic.
* :func:`random_tree` — a rooted tree with bounded fanout (the degenerate
  ``t = 0`` case of dual labeling).
* :func:`random_dag` — generic DAG: random node order, edges sampled
  forward along it.
* :func:`layered_dag` — stratified DAG with optional back edges (used by
  the dataset stand-ins to introduce controlled cycle content).
"""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph

__all__ = [
    "gnm_random_digraph",
    "single_rooted_dag",
    "random_tree",
    "random_dag",
    "layered_dag",
    "citation_dag",
]


def _check_counts(n: int, m: int, max_edges: int) -> None:
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if m > max_edges:
        raise ValueError(
            f"m={m} exceeds the maximum of {max_edges} for n={n}")


def gnm_random_digraph(n: int, m: int, seed: int = 0) -> DiGraph:
    """Uniform simple directed graph with ``n`` nodes and ``m`` edges.

    Nodes are ``0..n-1``.  Self-loops are excluded; the ``m`` ordered pairs
    are sampled without replacement by rejection (efficient for the sparse
    regimes of the paper, where ``m ≈ n``).
    """
    _check_counts(n, m, n * (n - 1))
    rng = random.Random(seed)
    graph = DiGraph(nodes=range(n))
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and (u, v) not in chosen:
            chosen.add((u, v))
            graph.add_edge(u, v)
    return graph


def random_tree(n: int, max_fanout: int = 5, seed: int = 0) -> DiGraph:
    """Rooted tree over nodes ``0..n-1`` with node 0 as root.

    Built breadth-first: each new node attaches to a uniformly random
    existing node that still has spare fanout capacity.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if max_fanout < 1:
        raise ValueError(f"max_fanout must be >= 1, got {max_fanout}")
    rng = random.Random(seed)
    tree = DiGraph(nodes=range(n))
    open_parents: list[int] = [0] if n else []
    fanout_used = {0: 0} if n else {}
    for v in range(1, n):
        slot = rng.randrange(len(open_parents))
        parent = open_parents[slot]
        tree.add_edge(parent, v)
        fanout_used[parent] += 1
        if fanout_used[parent] >= max_fanout:
            # Swap-remove keeps the candidate pick O(1).
            open_parents[slot] = open_parents[-1]
            open_parents.pop()
        open_parents.append(v)
        fanout_used[v] = 0
    return tree


def single_rooted_dag(n: int, m: int, max_fanout: int = 5,
                      seed: int = 0) -> DiGraph:
    """The paper's single-rooted DAG generator (Section 6.2).

    First a spanning tree over ``n`` nodes is generated breadth-first with
    at most ``max_fanout`` children per node; then ``m - (n - 1)`` extra
    edges ``u -> v`` are added between random node pairs, constrained so
    that ``u`` sits on a strictly shallower level than ``v``, or on the same
    level with a smaller position (further left).  All edges therefore move
    "downward or rightward", which guarantees acyclicity.

    Parameters
    ----------
    n: number of nodes (node 0 is the root).
    m: total number of edges; must satisfy ``n - 1 <= m``.
    max_fanout: spanning-tree fanout bound (5 for Figure 9, 9 for Fig. 10).
    seed: RNG seed.
    """
    if n == 0:
        _check_counts(n, m, 0)
        return DiGraph()
    if m < n - 1:
        raise ValueError(
            f"single-rooted DAG on n={n} nodes needs at least {n - 1} "
            f"edges, got m={m}")

    rng = random.Random(seed)
    dag = DiGraph(nodes=range(n))

    # Breadth-first spanning tree with bounded fanout.
    level = {0: 0}
    pos_in_level = {0: 0}
    level_sizes = [1]
    frontier = [0]
    next_node = 1
    while next_node < n:
        nxt: list[int] = []
        for parent in frontier:
            fanout = rng.randint(1, max_fanout)
            for _ in range(fanout):
                if next_node >= n:
                    break
                child = next_node
                next_node += 1
                dag.add_edge(parent, child)
                depth = level[parent] + 1
                if depth == len(level_sizes):
                    level_sizes.append(0)
                level[child] = depth
                pos_in_level[child] = level_sizes[depth]
                level_sizes[depth] += 1
                nxt.append(child)
            if next_node >= n:
                break
        if not nxt and next_node < n:
            # Degenerate fanout draw; extend from the last node created.
            nxt = [next_node - 1]
        frontier = nxt

    def _orders_before(u: int, v: int) -> bool:
        """True iff an edge u -> v respects the acyclic ordering rule."""
        if level[u] != level[v]:
            return level[u] < level[v]
        return pos_in_level[u] < pos_in_level[v]

    target_extra = m - (n - 1)
    added = 0
    # Rejection-sample pairs; for the sparse regimes of the paper the
    # acceptance rate is high.  A generous attempt cap avoids pathological
    # loops on tiny graphs where few legal pairs remain.
    attempts = 0
    max_attempts = max(10_000, 200 * target_extra)
    while added < target_extra and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or dag.has_edge(u, v) or not _orders_before(u, v):
            continue
        dag.add_edge(u, v)
        added += 1
    if added < target_extra:
        raise ValueError(
            f"could not place {target_extra} extra edges on n={n} "
            f"(placed {added}); graph too dense for this generator")
    return dag


def random_dag(n: int, m: int, seed: int = 0) -> DiGraph:
    """Generic DAG: uniform random edges oriented along a random order.

    Nodes ``0..n-1`` are shuffled into a hidden topological order; ``m``
    distinct forward pairs along it become the edges.
    """
    _check_counts(n, m, n * (n - 1) // 2)
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    rank = {node: i for i, node in enumerate(order)}
    dag = DiGraph(nodes=range(n))
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if rank[u] > rank[v]:
            u, v = v, u
        if (u, v) not in chosen:
            chosen.add((u, v))
            dag.add_edge(u, v)
    return dag


def layered_dag(layers: list[int], forward_edges: int,
                back_edges: int = 0, seed: int = 0,
                skip_prob: float = 0.2) -> DiGraph:
    """Stratified digraph: nodes in layers, edges mostly layer-to-next.

    Used by the dataset stand-ins (metabolic-pathway-like structure):

    * ``forward_edges`` edges run from a layer to a strictly deeper one
      (usually the next; with probability ``skip_prob`` a deeper layer is
      chosen, creating long-range shortcuts that the minimal-equivalent-
      graph step can later prune);
    * ``back_edges`` edges run from a deeper layer to a shallower one,
      introducing cycles (exercising SCC condensation).

    Nodes are numbered ``0..sum(layers)-1``, layer by layer.
    """
    if any(size <= 0 for size in layers):
        raise ValueError("every layer must have positive size")
    if forward_edges < 0 or back_edges < 0:
        raise ValueError("edge counts must be non-negative")
    rng = random.Random(seed)
    offsets = [0]
    for size in layers:
        offsets.append(offsets[-1] + size)
    n = offsets[-1]
    graph = DiGraph(nodes=range(n))

    def _node_in(layer: int) -> int:
        return offsets[layer] + rng.randrange(layers[layer])

    num_layers = len(layers)
    placed = 0
    attempts = 0
    max_attempts = max(10_000, 100 * forward_edges)
    while placed < forward_edges and attempts < max_attempts:
        attempts += 1
        src_layer = rng.randrange(num_layers - 1) if num_layers > 1 else 0
        if num_layers > 1:
            if rng.random() < skip_prob and src_layer + 2 < num_layers:
                dst_layer = rng.randrange(src_layer + 2, num_layers)
            else:
                dst_layer = src_layer + 1
        else:
            break
        u, v = _node_in(src_layer), _node_in(dst_layer)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            placed += 1

    placed_back = 0
    attempts = 0
    max_attempts = max(10_000, 100 * back_edges) if back_edges else 0
    while placed_back < back_edges and attempts < max_attempts:
        attempts += 1
        if num_layers < 2:
            break
        dst_layer = rng.randrange(num_layers - 1)
        src_layer = rng.randrange(dst_layer + 1, num_layers)
        u, v = _node_in(src_layer), _node_in(dst_layer)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            placed_back += 1
    return graph


def citation_dag(n: int, refs_per_node: int = 2, seed: int = 0) -> DiGraph:
    """Preferential-attachment DAG (citation-network shaped).

    Nodes arrive in order ``0..n-1``; each new node "cites" up to
    ``refs_per_node`` distinct earlier nodes, chosen preferentially by
    current in-degree (plus one), producing the heavy-tailed in-degree
    distribution of citation/reference graphs.  Edges always point from
    newer to older nodes, so the result is a DAG; hub nodes with huge
    in-degree stress spanning-tree extraction (every extra parent is a
    non-tree edge).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if refs_per_node < 0:
        raise ValueError(
            f"refs_per_node must be non-negative, got {refs_per_node}")
    rng = random.Random(seed)
    dag = DiGraph(nodes=range(n))
    # Repeated-node urn: node k appears (in_degree(k) + 1) times.
    urn: list[int] = []
    for v in range(n):
        cited: set[int] = set()
        attempts = 0
        want = min(refs_per_node, v)
        while len(cited) < want and attempts < 50 * (want + 1):
            attempts += 1
            candidate = rng.choice(urn) if urn and rng.random() < 0.8 \
                else rng.randrange(v)
            if candidate != v:
                cited.add(candidate)
        for target in cited:
            dag.add_edge(v, target)
            urn.append(target)
        urn.append(v)
    return dag
