"""Bitset utilities built on Python's arbitrary-precision integers.

CPython big-ints give word-parallel set union/intersection "for free"
(``|``, ``&`` run over 30-bit digits in C), which makes them the most
effective pure-Python substrate for the dense set algebra used by the
transitive-closure, minimal-equivalent-graph, and 2-hop code.

A bitset over a universe of ``n`` dense integer ids is simply an ``int``
whose bit ``i`` is set iff element ``i`` is in the set.  The helpers below
keep that convention in one place.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bit",
    "from_indices",
    "to_indices",
    "iter_indices",
    "popcount",
    "contains",
    "union_all",
    "mask",
]


def bit(i: int) -> int:
    """The singleton bitset ``{i}``."""
    return 1 << i


def from_indices(indices: Iterable[int]) -> int:
    """Build a bitset from an iterable of element ids."""
    result = 0
    for i in indices:
        result |= 1 << i
    return result


def iter_indices(bits: int) -> Iterator[int]:
    """Yield the element ids of a bitset in increasing order."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def to_indices(bits: int) -> list[int]:
    """Element ids of a bitset as a sorted list."""
    return list(iter_indices(bits))


def popcount(bits: int) -> int:
    """Number of elements in the bitset."""
    return bits.bit_count()


def contains(bits: int, i: int) -> bool:
    """``True`` iff element ``i`` is in the bitset."""
    return bool((bits >> i) & 1)


def union_all(sets: Iterable[int]) -> int:
    """Union of an iterable of bitsets."""
    result = 0
    for s in sets:
        result |= s
    return result


def mask(n: int) -> int:
    """The full universe ``{0, …, n-1}`` as a bitset."""
    return (1 << n) - 1
