"""A small, fast, from-scratch directed-graph container.

This module provides :class:`DiGraph`, the substrate every algorithm in this
repository runs on.  The paper's reference implementation used the Boost
Graph Library; :class:`DiGraph` plays that role here.

Design notes
------------
* Nodes are arbitrary hashable objects.  Algorithms that need dense integer
  ids (bitsets, numpy matrices, interval labeling) call
  :meth:`DiGraph.node_index` once and work on the returned dense numbering.
* Adjacency is stored twice — successor sets and predecessor sets — because
  the reachability algorithms in this repository need both directions
  (topological sorts, ancestor sweeps, condensation).
* The graph is *simple*: parallel edges collapse, self-loops are allowed at
  the container level (SCC condensation removes them before labeling).
* Successor/predecessor iteration order is insertion order (Python ``dict``
  semantics), which keeps every algorithm in the package deterministic.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError

Node = Hashable
Edge = tuple[Node, Node]

__all__ = ["DiGraph", "Node", "Edge"]


class DiGraph:
    """A mutable directed graph with set-based adjacency.

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_edge("a", "b")
    >>> g.add_edge("b", "c")
    >>> sorted(g.successors("a"))
    ['b']
    >>> g.num_nodes, g.num_edges
    (3, 2)
    """

    __slots__ = ("_succ", "_pred", "_num_edges")

    def __init__(self, edges: Optional[Iterable[Edge]] = None,
                 nodes: Optional[Iterable[Node]] = None) -> None:
        """Create a graph, optionally from iterables of edges and nodes.

        Parameters
        ----------
        edges:
            Edges to insert; endpoints are added as nodes automatically.
        nodes:
            Extra (possibly isolated) nodes to insert.
        """
        self._succ: dict[Node, dict[Node, None]] = {}
        self._pred: dict[Node, dict[Node, None]] = {}
        self._num_edges = 0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if self._succ.keys() != other._succ.keys():
            return False
        return all(self._succ[u].keys() == other._succ[u].keys()
                   for u in self._succ)

    def __hash__(self) -> int:  # mutable container
        raise TypeError("DiGraph objects are unhashable")

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert ``node``; a no-op if it is already present."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Insert every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert edge ``u -> v``, adding endpoints as needed.

        Inserting an edge twice is a no-op (the graph is simple).
        """
        self.add_node(u)
        self.add_node(v)
        if v not in self._succ[u]:
            self._succ[u][v] = None
            self._pred[v][u] = None
            self._num_edges += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Insert every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``u -> v``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if u not in self._succ or v not in self._succ[u]:
            raise EdgeNotFoundError(u, v)
        del self._succ[u][v]
        del self._pred[v][u]
        self._num_edges -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every edge incident to it.

        Raises
        ------
        NodeNotFoundError
            If the node is not present.
        """
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        for u in list(self._pred[node]):
            self.remove_edge(u, node)
        del self._succ[node]
        del self._pred[node]

    def clear(self) -> None:
        """Remove all nodes and edges."""
        self._succ.clear()
        self._pred.clear()
        self._num_edges = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._num_edges

    @property
    def density(self) -> float:
        """Edge/vertex ratio ``m / n`` (the paper's sparsity measure)."""
        if not self._succ:
            return 0.0
        return self._num_edges / len(self._succ)

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(u, v)`` pairs, grouped by source."""
        for u, targets in self._succ.items():
            for v in targets:
                yield (u, v)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` iff ``node`` is in the graph."""
        return node in self._succ

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` iff edge ``u -> v`` is in the graph."""
        return u in self._succ and v in self._succ[u]

    def successors(self, node: Node) -> Iterator[Node]:
        """Iterate over direct successors of ``node``."""
        try:
            return iter(self._succ[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate over direct predecessors of ``node``."""
        try:
            return iter(self._pred[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node``."""
        try:
            return len(self._succ[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node``."""
        try:
            return len(self._pred[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def roots(self) -> list[Node]:
        """Nodes with in-degree zero, in insertion order."""
        return [n for n in self._succ if not self._pred[n]]

    def leaves(self) -> list[Node]:
        """Nodes with out-degree zero, in insertion order."""
        return [n for n in self._succ if not self._succ[n]]

    def node_index(self) -> dict[Node, int]:
        """Map each node to a dense integer id in insertion order.

        The numbering is stable as long as the node set is unchanged, which
        lets bitset/matrix algorithms agree on ids across calls.
        """
        return {node: i for i, node in enumerate(self._succ)}

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        """Return an independent copy (nodes/edges, insertion order kept)."""
        clone = DiGraph()
        for node, targets in self._succ.items():
            clone._succ[node] = dict(targets)
        for node, sources in self._pred.items():
            clone._pred[node] = dict(sources)
        clone._num_edges = self._num_edges
        return clone

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph()
        for node in self._succ:
            rev.add_node(node)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the induced subgraph over ``nodes``.

        Unknown nodes in ``nodes`` raise :class:`NodeNotFoundError`.
        """
        keep = []
        for node in nodes:
            if node not in self._succ:
                raise NodeNotFoundError(node)
            keep.append(node)
        keep_set = set(keep)
        sub = DiGraph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for v in self._succ[node]:
                if v in keep_set:
                    sub.add_edge(node, v)
        return sub

    def self_loops(self) -> list[Node]:
        """Nodes carrying a self-loop edge."""
        return [u for u in self._succ if u in self._succ[u]]
