"""Compressed-sparse-row graph snapshot — the fast-backend substrate.

:class:`DiGraph` optimises for mutation (dict-of-dict adjacency); every
construction phase of the dual-labeling pipeline, however, only *reads* a
frozen graph.  :class:`CSRGraph` is that read-only snapshot: both edge
directions flattened into ``int32`` ``indptr``/``indices`` arrays plus a
dense node ↔ id map, produced once per pipeline run.  Array phases
(:func:`repro.graph.scc.tarjan_scc_csr`,
:func:`repro.graph.condensation.condense_csr`,
:func:`repro.graph.meg.minimal_equivalent_graph_csr`,
:func:`repro.graph.spanning.spanning_forest_csr`) consume it instead of
chasing dict entries.

The reverse (predecessor) direction materialises lazily on first access:
several pipeline stages only ever walk successors (Tarjan, the spanning
DFS), so building both directions up front would double the snapshot cost
for nothing.  A snapshot taken with :meth:`from_digraph` keeps a
reference to the source graph for that deferred build — mutating the
graph between the snapshot and the first reverse access is undefined.

Ordering contract
-----------------
Bit-for-bit equivalence with the reference (``DiGraph``-based) phases
rests on two invariants, which every constructor here maintains:

* node ids follow :meth:`DiGraph.node_index` — insertion order;
* each forward row lists successors in adjacency insertion order, and
  each reverse row lists predecessors in *their* insertion order
  (:meth:`from_digraph` reads both adjacency maps; derived graphs built
  with :meth:`from_forward` recover the reverse rows by a stable sort,
  which matches the insertion order of any graph whose edges were added
  grouped by source — true for every graph the pipeline derives).
"""

from __future__ import annotations

from itertools import chain
from typing import Optional, Sequence

import numpy as np

from repro.graph.digraph import DiGraph, Node

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable dual-direction CSR snapshot of a directed graph.

    Attributes
    ----------
    nodes:
        Original node objects, position = dense id.
    id_of:
        Inverse map ``node -> dense id``.
    indptr / indices:
        Forward (successor) adjacency: the successors of node ``i`` are
        ``indices[indptr[i]:indptr[i + 1]]``.  The *position* of an entry
        in ``indices`` is the edge's dense edge id.
    rindptr / rindices:
        Reverse (predecessor) adjacency, same layout; built lazily on
        first access.
    redge_id:
        For each reverse slot, the forward edge id of the same edge
        (``None`` for snapshots taken with :meth:`from_digraph`, which
        never need it).
    """

    __slots__ = ("nodes", "_id_of", "indptr", "indices",
                 "_rindptr", "_rindices", "_redge_id", "_src",
                 "_rev_source")

    def __init__(self, nodes: Sequence[Node], id_of: Optional[dict],
                 indptr: np.ndarray, indices: np.ndarray,
                 rindptr: Optional[np.ndarray] = None,
                 rindices: Optional[np.ndarray] = None,
                 redge_id: Optional[np.ndarray] = None,
                 rev_source: Optional[DiGraph] = None) -> None:
        self.nodes = list(nodes)
        self._id_of = id_of
        self.indptr = indptr
        self.indices = indices
        self._rindptr = rindptr
        self._rindices = rindices
        self._redge_id = redge_id
        self._src: Optional[np.ndarray] = None
        self._rev_source = rev_source

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "CSRGraph":
        """Snapshot ``graph``; both directions copy the insertion order
        of the corresponding ``DiGraph`` adjacency maps (the reverse one
        deferred until first use)."""
        nodes = list(graph.nodes())
        n = len(nodes)
        # Reads the adjacency maps directly (same-package friend access):
        # one pass instead of n successors()/predecessors() calls.
        succ = graph._succ
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(np.fromiter(map(len, succ.values()), dtype=np.int32,
                              count=n), out=indptr[1:])
        flat = chain.from_iterable(succ.values())
        id_of: Optional[dict] = None
        if not (n and type(nodes[0]) is int and nodes == list(range(n))):
            # Node labels other than dense 0..n-1 ints go through the map.
            id_of = {node: i for i, node in enumerate(nodes)}
            flat = map(id_of.__getitem__, flat)
        indices = np.fromiter(flat, dtype=np.int32, count=int(indptr[-1]))
        return cls(nodes, id_of, indptr, indices, rev_source=graph)

    @classmethod
    def from_forward(cls, nodes: Sequence[Node], indptr: np.ndarray,
                     indices: np.ndarray) -> "CSRGraph":
        """Build a snapshot from forward rows only.

        The reverse rows (when first accessed) come from a *stable* sort
        of the forward edge list by target, so each predecessor row is
        ordered by forward edge id — the insertion order of any
        ``DiGraph`` whose edges were added in source-major order.
        ``redge_id`` records the forward edge id of every reverse slot.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int32)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        return cls(nodes, None, indptr, indices)

    # ------------------------------------------------------------------
    # lazy node -> id map
    # ------------------------------------------------------------------
    @property
    def id_of(self) -> dict:
        """Inverse node map, built on first use (never needed by the
        pipeline's array phases)."""
        if self._id_of is None:
            self._id_of = {node: i for i, node in enumerate(self.nodes)}
        return self._id_of

    # ------------------------------------------------------------------
    # lazy reverse direction
    # ------------------------------------------------------------------
    def _build_reverse(self) -> None:
        n = self.num_nodes
        graph = self._rev_source
        if graph is not None:
            # Faithful predecessor insertion order from the source graph.
            lookup = self.id_of.__getitem__
            pred = graph._pred
            rindptr = np.zeros(n + 1, dtype=np.int32)
            np.cumsum([len(row) for row in pred.values()], out=rindptr[1:])
            rindices = np.fromiter(
                (lookup(u) for row in pred.values() for u in row),
                dtype=np.int32, count=int(rindptr[-1]))
            self._rindptr = rindptr
            self._rindices = rindices
            self._rev_source = None
            return
        perm = np.argsort(self.indices, kind="stable").astype(np.int32)
        src = self.src_of_edge()
        self._rindices = src[perm]
        rindptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(np.bincount(self.indices, minlength=n), out=rindptr[1:])
        self._rindptr = rindptr
        self._redge_id = perm

    @property
    def rindptr(self) -> np.ndarray:
        if self._rindptr is None:
            self._build_reverse()
        return self._rindptr

    @property
    def rindices(self) -> np.ndarray:
        if self._rindices is None:
            self._build_reverse()
        return self._rindices

    @property
    def redge_id(self) -> Optional[np.ndarray]:
        if self._rindptr is None:
            self._build_reverse()
        return self._redge_id

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return int(self.indices.shape[0])

    def successors(self, i: int) -> np.ndarray:
        """Dense ids of node ``i``'s successors (adjacency order)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def predecessors(self, i: int) -> np.ndarray:
        """Dense ids of node ``i``'s predecessors (insertion order)."""
        return self.rindices[self.rindptr[i]:self.rindptr[i + 1]]

    def out_degree(self, i: int) -> int:
        """Out-degree of node ``i``."""
        return int(self.indptr[i + 1] - self.indptr[i])

    def in_degree(self, i: int) -> int:
        """In-degree of node ``i``."""
        return int(self.rindptr[i + 1] - self.rindptr[i])

    def out_degrees(self) -> np.ndarray:
        """All out-degrees as one array."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """All in-degrees as one array (no reverse build needed)."""
        return np.bincount(self.indices, minlength=self.num_nodes)

    def src_of_edge(self) -> np.ndarray:
        """Source id of every forward edge (computed once, cached)."""
        if self._src is None:
            self._src = np.repeat(
                np.arange(self.num_nodes, dtype=np.int32),
                np.diff(self.indptr))
        return self._src

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges})")

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def to_digraph(self) -> DiGraph:
        """Materialise back into a :class:`DiGraph`.

        Nodes are inserted in id order and each adjacency map copies the
        corresponding CSR row order, so a round trip through
        :meth:`from_digraph` reproduces the original graph including
        iteration order.
        """
        graph = DiGraph()
        succ = graph._succ
        pred = graph._pred
        nodes = self.nodes
        ind = self.indices.tolist()
        ptr = self.indptr.tolist()
        rind = self.rindices.tolist()
        rptr = self.rindptr.tolist()
        for i, node in enumerate(nodes):
            row = ind[ptr[i]:ptr[i + 1]]
            succ[node] = dict.fromkeys([nodes[j] for j in row])
        for i, node in enumerate(nodes):
            row = rind[rptr[i]:rptr[i + 1]]
            pred[node] = dict.fromkeys([nodes[j] for j in row])
        graph._num_edges = len(ind)
        return graph
