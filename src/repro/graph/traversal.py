"""Graph traversals: DFS (with structured events), BFS, topological sorts.

All traversals are iterative — the graphs in the paper's evaluation have
thousands of nodes arranged in long chains, which would overflow CPython's
recursion limit if the traversals were written recursively.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.exceptions import NodeNotFoundError, NotADAGError
from repro.graph.digraph import DiGraph, Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.csr import CSRGraph

__all__ = [
    "dfs_preorder",
    "dfs_postorder",
    "dfs_events",
    "bfs_order",
    "bfs_layers",
    "topological_sort",
    "topological_sort_dfs",
    "topological_layers_csr",
    "is_topological_order",
    "reachable_set",
    "ancestor_set",
    "is_reachable_search",
    "has_path",
]

# Event kinds yielded by :func:`dfs_events`.
ENTER = "enter"
LEAVE = "leave"
TREE_EDGE = "tree"
NONTREE_EDGE = "nontree"


def _resolve_sources(graph: DiGraph,
                     sources: Optional[Iterable[Node]]) -> list[Node]:
    """Normalise a ``sources`` argument, defaulting to all nodes."""
    if sources is None:
        return list(graph.nodes())
    resolved = []
    for node in sources:
        if node not in graph:
            raise NodeNotFoundError(node)
        resolved.append(node)
    return resolved


def dfs_events(graph: DiGraph,
               sources: Optional[Iterable[Node]] = None
               ) -> Iterator[tuple[str, object]]:
    """Iterative depth-first search yielding structured events.

    Yields, in DFS order:

    * ``("enter", node)`` when a node is first discovered;
    * ``("tree", (u, v))`` when edge ``u -> v`` discovers ``v``;
    * ``("nontree", (u, v))`` when edge ``u -> v`` leads to an already
      discovered node;
    * ``("leave", node)`` when a node's whole subtree is finished.

    Successors are visited in adjacency (insertion) order, so the traversal
    is deterministic.  ``sources`` defaults to every node (in insertion
    order), producing a spanning forest of the whole graph.
    """
    visited: set[Node] = set()
    for source in _resolve_sources(graph, sources):
        if source in visited:
            continue
        visited.add(source)
        yield (ENTER, source)
        # Stack of (node, iterator-over-successors).
        stack: list[tuple[Node, Iterator[Node]]] = [
            (source, graph.successors(source))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    yield (TREE_EDGE, (node, succ))
                    yield (ENTER, succ)
                    stack.append((succ, graph.successors(succ)))
                    advanced = True
                    break
                yield (NONTREE_EDGE, (node, succ))
            if not advanced:
                stack.pop()
                yield (LEAVE, node)


def dfs_preorder(graph: DiGraph,
                 sources: Optional[Iterable[Node]] = None) -> list[Node]:
    """Nodes in depth-first preorder (discovery order)."""
    return [payload for kind, payload in dfs_events(graph, sources)
            if kind == ENTER]


def dfs_postorder(graph: DiGraph,
                  sources: Optional[Iterable[Node]] = None) -> list[Node]:
    """Nodes in depth-first postorder (finish order)."""
    return [payload for kind, payload in dfs_events(graph, sources)
            if kind == LEAVE]


def bfs_order(graph: DiGraph, source: Node) -> list[Node]:
    """Nodes reachable from ``source`` in breadth-first order."""
    if source not in graph:
        raise NodeNotFoundError(source)
    order = [source]
    visited = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for succ in graph.successors(node):
            if succ not in visited:
                visited.add(succ)
                order.append(succ)
                queue.append(succ)
    return order


def bfs_layers(graph: DiGraph, source: Node) -> list[list[Node]]:
    """Reachable nodes from ``source`` grouped by BFS depth."""
    if source not in graph:
        raise NodeNotFoundError(source)
    layers: list[list[Node]] = [[source]]
    visited = {source}
    frontier = [source]
    while frontier:
        nxt: list[Node] = []
        for node in frontier:
            for succ in graph.successors(node):
                if succ not in visited:
                    visited.add(succ)
                    nxt.append(succ)
        if nxt:
            layers.append(nxt)
        frontier = nxt
    return layers


def topological_sort(graph: DiGraph) -> list[Node]:
    """Topological order of a DAG via Kahn's algorithm.

    Ties are broken by node insertion order, making the result
    deterministic.

    Raises
    ------
    NotADAGError
        If the graph contains a cycle.
    """
    in_deg = {node: graph.in_degree(node) for node in graph.nodes()}
    ready = deque(node for node, deg in in_deg.items() if deg == 0)
    order: list[Node] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for succ in graph.successors(node):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                ready.append(succ)
    if len(order) != graph.num_nodes:
        raise NotADAGError("graph contains at least one cycle")
    return order


def topological_sort_dfs(graph: DiGraph) -> list[Node]:
    """Topological order via reversed DFS postorder.

    Equivalent guarantees to :func:`topological_sort` but produced by DFS;
    useful in tests to confirm the two independent implementations agree on
    validity.

    Raises
    ------
    NotADAGError
        If the graph contains a cycle (detected via a gray-set check).
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[Node, int] = {node: WHITE for node in graph.nodes()}
    postorder: list[Node] = []
    for source in graph.nodes():
        if color[source] != WHITE:
            continue
        stack: list[tuple[Node, Iterator[Node]]] = [
            (source, graph.successors(source))]
        color[source] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if color[succ] == GRAY:
                    raise NotADAGError("graph contains at least one cycle")
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    stack.append((succ, graph.successors(succ)))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                color[node] = BLACK
                postorder.append(node)
    postorder.reverse()
    return postorder


def topological_layers_csr(csr: "CSRGraph") -> list[np.ndarray] | None:
    """Kahn's algorithm over a CSR snapshot, peeled in whole generations.

    Layer 0 holds every node of in-degree zero; layer ``i + 1`` holds the
    nodes whose last incoming edge originates in layers ``<= i``.  Within
    a layer, ids are ascending.  Concatenating the layers yields a valid
    topological order, and a node's layer is the length of the longest
    path reaching it — exactly the granularity the vectorised MEG sweep
    (:func:`repro.graph.meg.minimal_equivalent_graph_csr`) wants, since
    nodes of one layer never depend on each other.

    Returns ``None`` when the graph contains a cycle (including
    self-loops): the peel stalls before covering every node.
    """
    n = csr.num_nodes
    if n == 0:
        return []
    indptr, indices = csr.indptr, csr.indices
    indeg = csr.in_degrees()
    layers: list[np.ndarray] = []
    frontier = np.flatnonzero(indeg == 0).astype(np.int32)
    covered = 0
    while frontier.size:
        layers.append(frontier)
        covered += frontier.size
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        cum = np.cumsum(counts)
        total = int(cum[-1])
        if total == 0:
            break
        # Flat positions of the frontier's out-edges in `indices`.
        excl = cum - counts
        pos = np.repeat(starts - excl, counts) + np.arange(total,
                                                           dtype=np.int32)
        dec = np.bincount(indices[pos], minlength=n)
        # A node drops to zero exactly when this wave removes its whole
        # remaining in-degree.
        frontier = np.flatnonzero((dec > 0) & (indeg == dec)).astype(np.int32)
        indeg -= dec
    return layers if covered == n else None


def is_topological_order(graph: DiGraph, order: list[Node]) -> bool:
    """Check that ``order`` is a valid topological order of ``graph``."""
    if len(order) != graph.num_nodes or set(order) != set(graph.nodes()):
        return False
    position = {node: i for i, node in enumerate(order)}
    return all(position[u] < position[v] for u, v in graph.edges())


def reachable_set(graph: DiGraph, source: Node) -> set[Node]:
    """All nodes reachable from ``source`` (including ``source``)."""
    return set(bfs_order(graph, source))


def ancestor_set(graph: DiGraph, target: Node) -> set[Node]:
    """All nodes that can reach ``target`` (including ``target``)."""
    if target not in graph:
        raise NodeNotFoundError(target)
    seen = {target}
    queue = deque([target])
    while queue:
        node = queue.popleft()
        for pred in graph.predecessors(node):
            if pred not in seen:
                seen.add(pred)
                queue.append(pred)
    return seen


def is_reachable_search(graph: DiGraph, source: Node, target: Node) -> bool:
    """Online reachability test by BFS — the paper's no-index baseline.

    ``O(n + m)`` per query; used both as the ground-truth oracle in tests
    and as the "single source search" naive approach from Section 1.2.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return True
    visited = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for succ in graph.successors(node):
            if succ == target:
                return True
            if succ not in visited:
                visited.add(succ)
                queue.append(succ)
    return False


# Alias matching common graph-library naming.
has_path = is_reachable_search
