"""Minimal equivalent graph (MEG) of a DAG — paper Section 5, Algorithm 3.

The MEG removes the maximum number of edges from a DAG without changing its
reachability relation.  For DAGs the MEG is unique and coincides with the
*transitive reduction*.  Dual labeling runs it as an optional preprocessing
step: the fewer edges survive, the smaller the non-tree edge count ``t``
after spanning-tree extraction, and ``t`` drives both the TLC structures'
size and the transitive-link-closure cost.

Two implementations:

* :func:`minimal_equivalent_graph` — the paper's Algorithm 3: one sweep in
  topological order maintaining *strict ancestor* bitsets per node.  An edge
  ``p_i -> v`` is superfluous iff ``p_i`` is an ancestor of another parent
  ``p_j`` of ``v`` (then ``p_i ⇝ p_j -> v`` survives without it).  Ancestor
  sets are discarded as soon as all of a node's children have been
  processed, which keeps memory proportional to the "frontier" for sparse
  graphs — the point the paper makes against closure-based methods.
* :func:`minimal_equivalent_graph_closure` — the Hsu-style baseline that
  materialises the transitive closure first; used as an independent oracle
  in tests and in the MEG ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotADAGError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import topological_layers_csr, topological_sort

__all__ = [
    "MEGResult",
    "minimal_equivalent_graph",
    "minimal_equivalent_graph_csr",
    "minimal_equivalent_graph_closure",
]


@dataclass(frozen=True)
class MEGResult:
    """Outcome of a MEG computation.

    Attributes
    ----------
    graph:
        The reduced DAG (a new :class:`DiGraph`; the input is untouched).
    removed_edges:
        The superfluous edges that were dropped, in removal order.
    """

    graph: DiGraph
    removed_edges: list[tuple[Node, Node]]

    @property
    def num_removed(self) -> int:
        """Number of edges removed."""
        return len(self.removed_edges)


def minimal_equivalent_graph(dag: DiGraph) -> MEGResult:
    """Reduce a DAG to its minimal equivalent graph (Algorithm 3).

    Complexity is one topological sweep with bitset unions —
    ``O(n + m)`` set operations, each ``O(n / wordsize)`` in the worst case
    but far cheaper on the sparse graphs the paper targets.

    Raises
    ------
    NotADAGError
        If the input contains a cycle (Algorithm 3's correctness argument
        requires acyclicity; condense first).
    """
    order = topological_sort(dag)  # raises NotADAGError on cycles
    index = {node: i for i, node in enumerate(order)}

    # Strict-ancestor bitset per node, in topological-id space.  Entries are
    # freed once every child of the node has been visited.
    ancestors: dict[int, int] = {}
    remaining_children = {node: dag.out_degree(node) for node in order}

    reduced = dag.copy()
    removed: list[tuple[Node, Node]] = []

    for v in order:
        parents = list(dag.predecessors(v))
        parent_ids = [index[p] for p in parents]
        # Union of the parents' strict ancestor sets: any parent inside this
        # union is itself an ancestor of another parent, so its direct edge
        # into v is superfluous.
        others_union = 0
        for pid in parent_ids:
            others_union |= ancestors[pid]
        keep_bits = 0
        for p, pid in zip(parents, parent_ids):
            if (others_union >> pid) & 1:
                reduced.remove_edge(p, v)
                removed.append((p, v))
            else:
                keep_bits |= 1 << pid
        # v's strict ancestors: all parents plus their ancestors.
        own = others_union | keep_bits
        for pid in parent_ids:
            own |= 1 << pid
        ancestors[index[v]] = own
        # Free ancestor sets whose children are all processed.
        for p in parents:
            remaining_children[p] -= 1
            if remaining_children[p] == 0:
                del ancestors[index[p]]

    return MEGResult(graph=reduced, removed_edges=removed)


#: Byte budget for the dense layered ancestor matrix; above it (or when
#: the DAG is chain-like and layers degenerate) the big-int sweep with
#: frontier freeing takes over.
_DENSE_ANCESTOR_BYTES = 1 << 28


def _layers_if_topological_ids(csr: CSRGraph) -> list[np.ndarray] | None:
    """Longest-path layers when node ids are already a topological order.

    The pipeline always hands this function a condensation CSR, whose
    component ids increase along every edge by construction.  Then the
    Kahn peel is overkill: one forward pass over the edge list computes
    each node's longest-path level (a source's level is final before any
    of its out-edges appear, since rows are source-major and ascending),
    and a stable argsort groups the levels into exactly the layers
    :func:`~repro.graph.traversal.topological_layers_csr` would emit —
    same generations, ascending ids within each.  Returns ``None`` when
    some edge does not increase (arbitrary snapshot): the caller falls
    back to the general peel.
    """
    src = csr.src_of_edge()
    if not bool((src < csr.indices).all()):
        return None
    n = csr.num_nodes
    level = [0] * n
    for u, v in zip(src.tolist(), csr.indices.tolist()):
        w = level[u] + 1
        if w > level[v]:
            level[v] = w
    lv = np.asarray(level, dtype=np.int64)
    order = np.argsort(lv, kind="stable")
    bounds = np.cumsum(np.bincount(lv))[:-1]
    return np.split(order, bounds)


def minimal_equivalent_graph_csr(csr: CSRGraph) -> CSRGraph:
    """Algorithm 3 on a CSR snapshot — the fast-backend MEG.

    Processes the DAG one topological *layer* at a time
    (:func:`~repro.graph.traversal.topological_layers_csr`): within a
    layer no node depends on another, so the strict-ancestor rows of a
    whole layer are computed with a handful of vectorised operations —
    the rows are packed ``uint64`` bit matrices, parent unions are one
    ``bitwise_or.reduceat``, and the superfluous-edge test is a single
    gather-and-mask over the layer's in-edges.

    Chain-like DAGs (many tiny layers) and graphs whose dense ancestor
    matrix would exceed ~256 MB fall back to a big-int sweep that frees
    each ancestor row once all of the node's children are processed —
    the same frontier-memory argument as the reference implementation,
    just driven by flat arrays.

    Returns the reduced graph as a new :class:`CSRGraph` whose rows keep
    the surviving edges in their original order (matching the reference
    path's ``copy()`` + ``remove_edge`` adjacency exactly).  The input
    snapshot is untouched.

    Raises
    ------
    NotADAGError
        If the input contains a cycle.
    """
    n = csr.num_nodes
    m = csr.num_edges
    if m == 0:
        return csr
    layers = _layers_if_topological_ids(csr)
    if layers is None:
        layers = topological_layers_csr(csr)
    if layers is None:
        raise NotADAGError("graph contains at least one cycle")

    words = (n + 63) >> 6
    dense_ok = (n * words * 8 <= _DENSE_ANCESTOR_BYTES
                and len(layers) <= max(64, n // 4))
    if dense_ok:
        removed = _meg_removed_dense(csr, layers, words)
    else:
        removed = _meg_removed_bigint(csr, layers)

    keep = ~removed
    indices = csr.indices[keep]
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(np.bincount(csr.src_of_edge()[keep], minlength=n),
              out=indptr[1:])
    return CSRGraph.from_forward(csr.nodes, indptr, indices)


def _meg_removed_dense(csr: CSRGraph, layers: list[np.ndarray],
                       words: int) -> np.ndarray:
    """Superfluous-edge mask via the layered packed-``uint64`` sweep.

    All per-edge quantities (flat reverse positions, parent ids, word/bit
    coordinates, reduceat group boundaries) are gathered once for the
    whole graph in layer order; the per-layer loop then works on
    contiguous slices, keeping the kernel-launch count per layer small —
    the layers of the paper's sparse DAGs are few but the graphs small
    enough that per-call overhead would otherwise dominate.
    """
    n = csr.num_nodes
    rindptr, rindices = csr.rindptr, csr.rindices
    redge = csr.redge_id
    removed = np.zeros(csr.num_edges, dtype=bool)
    if len(layers) <= 1:
        return removed

    # One global gather of every reverse edge, grouped by layer.
    order = np.concatenate(layers[1:])
    starts = rindptr[order].astype(np.int64)
    counts = (rindptr[order + 1] - starts).astype(np.int64)
    excl = np.concatenate(([0], np.cumsum(counts)[:-1]))
    total = int(excl[-1] + counts[-1]) if counts.size else 0
    pos = np.repeat(starts - excl, counts) + np.arange(total)
    parents = rindices[pos].astype(np.int64)
    edge_ids = redge[pos]
    group = np.repeat(np.arange(order.size), counts)
    word = parents >> 6
    own = np.uint64(1) << (parents & 63).astype(np.uint64)
    # Per-layer slice bounds in node space and edge space.
    node_hi = np.cumsum([layer.size for layer in layers[1:]])
    edge_hi = np.cumsum(counts)[node_hi - 1]
    # Direct-parent bit rows for every swept node, built in one scatter
    # up front so the per-layer loop never calls the (slow) buffered
    # ``bitwise_or.at``.
    parent_bits = np.zeros((order.size, words), dtype=np.uint64)
    np.bitwise_or.at(parent_bits, (group, word), own)

    ancestors = np.zeros((n, words), dtype=np.uint64)
    n0 = e0 = 0
    for li, layer in enumerate(layers[1:]):
        n1 = int(node_hi[li])
        e1 = int(edge_hi[li])
        sl = slice(e0, e1)
        # Union of every parent's strict-ancestor row, one row per node.
        union = np.bitwise_or.reduceat(
            ancestors[parents[sl]], excl[n0:n1] - e0, axis=0)
        # An edge is superfluous iff its parent's bit already sits in the
        # union of the other parents' ancestor rows (a parent is never
        # its own ancestor, so testing the full union is equivalent).
        removed[edge_ids[sl]] = (union[group[sl] - n0, word[sl]]
                                 & own[sl]) != 0
        # Each node's own strict ancestors: the union plus all parents.
        union |= parent_bits[n0:n1]
        ancestors[layer] = union
        n0, e0 = n1, e1
    return removed


def _meg_removed_bigint(csr: CSRGraph,
                        layers: list[np.ndarray]) -> np.ndarray:
    """Superfluous-edge mask via per-node big-int ancestor rows.

    Keeps memory proportional to the topological frontier by freeing a
    node's row once all of its children are processed — the reference
    implementation's trick, re-driven by flat CSR arrays.
    """
    n = csr.num_nodes
    ptr = csr.indptr.tolist()
    rptr = csr.rindptr.tolist()
    rind = csr.rindices.tolist()
    redge = csr.redge_id.tolist()
    order = [i for layer in layers for i in layer.tolist()]
    remaining_children = [ptr[i + 1] - ptr[i] for i in range(n)]
    ancestors: dict[int, int] = {}
    removed = np.zeros(csr.num_edges, dtype=bool)
    for v in order:
        others_union = 0
        own_bits = 0
        lo, hi = rptr[v], rptr[v + 1]
        for slot in range(lo, hi):
            p = rind[slot]
            others_union |= ancestors[p]
            own_bits |= 1 << p
        for slot in range(lo, hi):
            p = rind[slot]
            if (others_union >> p) & 1:
                removed[redge[slot]] = True
        ancestors[v] = others_union | own_bits
        for slot in range(lo, hi):
            p = rind[slot]
            remaining_children[p] -= 1
            if remaining_children[p] == 0:
                del ancestors[p]
    return removed


def minimal_equivalent_graph_closure(dag: DiGraph) -> MEGResult:
    """Closure-based MEG (Hsu 1975 style) — the ``O(n³)`` baseline.

    Computes the full transitive closure, then drops every edge
    ``u -> v`` for which some other successor ``w`` of ``u`` reaches ``v``
    (i.e. a longer path ``u -> w ⇝ v`` exists).  Exact same output as
    Algorithm 3 on any DAG — asserted by tests — but with the quadratic
    memory footprint the paper set out to avoid.
    """
    from repro.graph.closure import transitive_closure_bitsets

    order = topological_sort(dag)  # validates acyclicity
    del order
    desc, index = transitive_closure_bitsets(dag)

    reduced = dag.copy()
    removed: list[tuple[Node, Node]] = []
    for u in dag.nodes():
        succs = list(dag.successors(u))
        succ_ids = [index[w] for w in succs]
        for v, vid in zip(succs, succ_ids):
            # Reachable from another successor of u?
            superfluous = any(
                wid != vid and (desc[wid] >> vid) & 1
                for wid in succ_ids)
            if superfluous:
                reduced.remove_edge(u, v)
                removed.append((u, v))
    return MEGResult(graph=reduced, removed_edges=removed)
