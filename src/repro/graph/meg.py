"""Minimal equivalent graph (MEG) of a DAG — paper Section 5, Algorithm 3.

The MEG removes the maximum number of edges from a DAG without changing its
reachability relation.  For DAGs the MEG is unique and coincides with the
*transitive reduction*.  Dual labeling runs it as an optional preprocessing
step: the fewer edges survive, the smaller the non-tree edge count ``t``
after spanning-tree extraction, and ``t`` drives both the TLC structures'
size and the transitive-link-closure cost.

Two implementations:

* :func:`minimal_equivalent_graph` — the paper's Algorithm 3: one sweep in
  topological order maintaining *strict ancestor* bitsets per node.  An edge
  ``p_i -> v`` is superfluous iff ``p_i`` is an ancestor of another parent
  ``p_j`` of ``v`` (then ``p_i ⇝ p_j -> v`` survives without it).  Ancestor
  sets are discarded as soon as all of a node's children have been
  processed, which keeps memory proportional to the "frontier" for sparse
  graphs — the point the paper makes against closure-based methods.
* :func:`minimal_equivalent_graph_closure` — the Hsu-style baseline that
  materialises the transitive closure first; used as an independent oracle
  in tests and in the MEG ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import topological_sort

__all__ = [
    "MEGResult",
    "minimal_equivalent_graph",
    "minimal_equivalent_graph_closure",
]


@dataclass(frozen=True)
class MEGResult:
    """Outcome of a MEG computation.

    Attributes
    ----------
    graph:
        The reduced DAG (a new :class:`DiGraph`; the input is untouched).
    removed_edges:
        The superfluous edges that were dropped, in removal order.
    """

    graph: DiGraph
    removed_edges: list[tuple[Node, Node]]

    @property
    def num_removed(self) -> int:
        """Number of edges removed."""
        return len(self.removed_edges)


def minimal_equivalent_graph(dag: DiGraph) -> MEGResult:
    """Reduce a DAG to its minimal equivalent graph (Algorithm 3).

    Complexity is one topological sweep with bitset unions —
    ``O(n + m)`` set operations, each ``O(n / wordsize)`` in the worst case
    but far cheaper on the sparse graphs the paper targets.

    Raises
    ------
    NotADAGError
        If the input contains a cycle (Algorithm 3's correctness argument
        requires acyclicity; condense first).
    """
    order = topological_sort(dag)  # raises NotADAGError on cycles
    index = {node: i for i, node in enumerate(order)}

    # Strict-ancestor bitset per node, in topological-id space.  Entries are
    # freed once every child of the node has been visited.
    ancestors: dict[int, int] = {}
    remaining_children = {node: dag.out_degree(node) for node in order}

    reduced = dag.copy()
    removed: list[tuple[Node, Node]] = []

    for v in order:
        parents = list(dag.predecessors(v))
        parent_ids = [index[p] for p in parents]
        # Union of the parents' strict ancestor sets: any parent inside this
        # union is itself an ancestor of another parent, so its direct edge
        # into v is superfluous.
        others_union = 0
        for pid in parent_ids:
            others_union |= ancestors[pid]
        keep_bits = 0
        for p, pid in zip(parents, parent_ids):
            if (others_union >> pid) & 1:
                reduced.remove_edge(p, v)
                removed.append((p, v))
            else:
                keep_bits |= 1 << pid
        # v's strict ancestors: all parents plus their ancestors.
        own = others_union | keep_bits
        for pid in parent_ids:
            own |= 1 << pid
        ancestors[index[v]] = own
        # Free ancestor sets whose children are all processed.
        for p in parents:
            remaining_children[p] -= 1
            if remaining_children[p] == 0:
                del ancestors[index[p]]

    return MEGResult(graph=reduced, removed_edges=removed)


def minimal_equivalent_graph_closure(dag: DiGraph) -> MEGResult:
    """Closure-based MEG (Hsu 1975 style) — the ``O(n³)`` baseline.

    Computes the full transitive closure, then drops every edge
    ``u -> v`` for which some other successor ``w`` of ``u`` reaches ``v``
    (i.e. a longer path ``u -> w ⇝ v`` exists).  Exact same output as
    Algorithm 3 on any DAG — asserted by tests — but with the quadratic
    memory footprint the paper set out to avoid.
    """
    from repro.graph.closure import transitive_closure_bitsets

    order = topological_sort(dag)  # validates acyclicity
    del order
    desc, index = transitive_closure_bitsets(dag)

    reduced = dag.copy()
    removed: list[tuple[Node, Node]] = []
    for u in dag.nodes():
        succs = list(dag.successors(u))
        succ_ids = [index[w] for w in succs]
        for v, vid in zip(succs, succ_ids):
            # Reachable from another successor of u?
            superfluous = any(
                wid != vid and (desc[wid] >> vid) & 1
                for wid in succ_ids)
            if superfluous:
                reduced.remove_edge(u, v)
                removed.append((u, v))
    return MEGResult(graph=reduced, removed_edges=removed)
