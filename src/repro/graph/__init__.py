"""Directed-graph substrate: container, traversals, SCC, closure, MEG.

This subpackage plays the role the Boost Graph Library played for the
paper's C++ implementation — everything the dual-labeling core needs from a
graph library, built from scratch.
"""

from repro.graph.bitset import from_indices, iter_indices, popcount, to_indices
from repro.graph.closure import (
    count_reachable_pairs,
    transitive_closure_bitsets,
    transitive_closure_matrix,
    transitive_closure_pairs,
)
from repro.graph.condensation import Condensation, condense, condense_csr
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    layered_dag,
    random_dag,
    random_tree,
    single_rooted_dag,
)
from repro.graph.io import (
    read_edge_list,
    read_json,
    to_dot,
    write_dot,
    write_edge_list,
    write_json,
)
from repro.graph.meg import (
    MEGResult,
    minimal_equivalent_graph,
    minimal_equivalent_graph_closure,
    minimal_equivalent_graph_csr,
)
from repro.graph.scc import (
    is_strongly_connected,
    scc_index,
    strongly_connected_components,
    tarjan_scc_csr,
)
from repro.graph.spanning import CSRForest, SpanningForest, spanning_forest, spanning_forest_csr
from repro.graph.stats import GraphStats, degree_histogram, graph_stats
from repro.graph.traversal import (
    ancestor_set,
    bfs_layers,
    bfs_order,
    dfs_events,
    dfs_postorder,
    dfs_preorder,
    has_path,
    is_reachable_search,
    is_topological_order,
    reachable_set,
    topological_layers_csr,
    topological_sort,
    topological_sort_dfs,
)

__all__ = [
    "DiGraph",
    "CSRGraph",
    "Condensation",
    "condense",
    "condense_csr",
    "tarjan_scc_csr",
    "strongly_connected_components",
    "scc_index",
    "is_strongly_connected",
    "transitive_closure_bitsets",
    "transitive_closure_matrix",
    "transitive_closure_pairs",
    "count_reachable_pairs",
    "MEGResult",
    "minimal_equivalent_graph",
    "minimal_equivalent_graph_closure",
    "minimal_equivalent_graph_csr",
    "CSRForest",
    "SpanningForest",
    "spanning_forest",
    "spanning_forest_csr",
    "gnm_random_digraph",
    "single_rooted_dag",
    "random_tree",
    "random_dag",
    "layered_dag",
    "read_edge_list",
    "write_edge_list",
    "read_json",
    "write_json",
    "to_dot",
    "write_dot",
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "dfs_preorder",
    "dfs_postorder",
    "dfs_events",
    "bfs_order",
    "bfs_layers",
    "topological_sort",
    "topological_sort_dfs",
    "topological_layers_csr",
    "is_topological_order",
    "reachable_set",
    "ancestor_set",
    "is_reachable_search",
    "has_path",
    "from_indices",
    "to_indices",
    "iter_indices",
    "popcount",
]
