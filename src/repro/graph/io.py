"""Graph serialisation: edge-list text files and a JSON document format.

Two formats are supported:

* **edge list** — one ``u v`` pair per line, ``#`` comments, isolated nodes
  declared on their own line.  Node names are strings (or ints when
  ``int_nodes=True`` on read).  This is the interchange format of most
  public reachability benchmarks.
* **JSON** — ``{"nodes": [...], "edges": [[u, v], ...]}`` with arbitrary
  JSON-representable node names; round-trips insertion order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
    "to_dot",
    "write_dot",
]

PathLike = Union[str, Path]


def write_edge_list(graph: DiGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in edge-list format.

    Isolated nodes are written as single-token lines so the round trip
    preserves the node set exactly.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        written: set[object] = set()
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
            written.add(u)
            written.add(v)
        for node in graph.nodes():
            if node not in written:
                fh.write(f"{node}\n")


def read_edge_list(path: PathLike, int_nodes: bool = True) -> DiGraph:
    """Read a graph from an edge-list file.

    Parameters
    ----------
    path: file to read.
    int_nodes: when ``True`` (default) node tokens are parsed as integers;
        otherwise they stay strings.

    Raises
    ------
    DatasetError
        On malformed lines (more than two tokens, or non-integer tokens
        with ``int_nodes=True``).
    """
    path = Path(path)
    graph = DiGraph()

    def _parse(token: str) -> object:
        if not int_nodes:
            return token
        try:
            return int(token)
        except ValueError:
            raise DatasetError(
                f"{path}: expected integer node id, got {token!r}") from None

    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            tokens = body.split()
            if len(tokens) == 1:
                graph.add_node(_parse(tokens[0]))
            elif len(tokens) == 2:
                graph.add_edge(_parse(tokens[0]), _parse(tokens[1]))
            else:
                raise DatasetError(
                    f"{path}:{lineno}: expected 1 or 2 tokens, "
                    f"got {len(tokens)}")
    return graph


def write_json(graph: DiGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as a JSON document."""
    document = {
        "nodes": list(graph.nodes()),
        "edges": [[u, v] for u, v in graph.edges()],
    }
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def read_json(path: PathLike) -> DiGraph:
    """Read a graph from a JSON document written by :func:`write_json`.

    Raises
    ------
    DatasetError
        If the document is not valid JSON or lacks the expected keys.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}: invalid JSON ({exc})") from exc
    if (not isinstance(document, dict) or "nodes" not in document
            or "edges" not in document):
        raise DatasetError(
            f"{path}: expected an object with 'nodes' and 'edges' keys")
    graph = DiGraph()
    for node in document["nodes"]:
        # JSON arrays arrive as lists, which are unhashable; normalise.
        graph.add_node(tuple(node) if isinstance(node, list) else node)
    for edge in document["edges"]:
        if not isinstance(edge, list) or len(edge) != 2:
            raise DatasetError(f"{path}: malformed edge entry {edge!r}")
        u, v = edge
        graph.add_edge(tuple(u) if isinstance(u, list) else u,
                       tuple(v) if isinstance(v, list) else v)
    return graph


def _dot_id(node: object) -> str:
    """Quote a node as a DOT identifier."""
    text = str(node).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def to_dot(graph: DiGraph, name: str = "G",
           highlight_path: "list | None" = None,
           highlight_edges: "set | None" = None) -> str:
    """Render ``graph`` as Graphviz DOT text.

    Parameters
    ----------
    graph: the graph to render.
    name: the DOT graph name.
    highlight_path: optional node path (e.g. a witness from
        :func:`repro.core.witness.witness_path`); its nodes and edges
        are emphasised.
    highlight_edges: optional extra edge set to style dashed (e.g. the
        non-tree edges of a spanning forest, to visualise the paper's
        tree/non-tree decomposition).
    """
    path_nodes = set(highlight_path or ())
    path_edges = set(zip(highlight_path or [], (highlight_path or [])[1:]))
    dashed = set(highlight_edges or ())
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for node in graph.nodes():
        style = ' [style=filled, fillcolor="#ffd37f"]' \
            if node in path_nodes else ""
        lines.append(f"  {_dot_id(node)}{style};")
    for u, v in graph.edges():
        if (u, v) in path_edges:
            attr = ' [color="#d4622a", penwidth=2.0]'
        elif (u, v) in dashed:
            attr = " [style=dashed]"
        else:
            attr = ""
        lines.append(f"  {_dot_id(u)} -> {_dot_id(v)}{attr};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(graph: DiGraph, path: PathLike, **options) -> None:
    """Write :func:`to_dot` output to ``path`` (options forwarded)."""
    Path(path).write_text(to_dot(graph, **options), encoding="utf-8")
