"""SCC condensation: collapse each strongly connected component to one node.

This is the first preprocessing step of dual labeling (paper, Section 3):
"If [the input graph is] not [acyclic], we find strongly connected
components of G and collapse each component into a representative node."

The result is always a DAG.  :class:`Condensation` keeps both directions of
the node mapping so reachability queries posed on *original* vertices can be
answered on the condensed DAG: ``u ⇝ v`` in ``G`` iff
``rep(u) ⇝ rep(v)`` in the condensation.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph, Node
from repro.graph.scc import (_dag_postorder_csr,
                             strongly_connected_components, tarjan_scc_csr)

__all__ = ["Condensation", "condense", "condense_csr"]


class Condensation:
    """The condensation DAG of a digraph plus node mappings.

    Attributes
    ----------
    dag:
        The condensed graph.  Its nodes are dense integers ``0..k-1``
        (component ids); it contains no self-loops and is acyclic.
    component_of:
        Maps each original node to its component id.
    members:
        ``members[cid]`` lists the original nodes of component ``cid``.

    :func:`condense` sets all three eagerly; :func:`condense_csr`
    provides them as factories so each materialises from the flat
    arrays on first access — a pipeline run that only needs the label
    arrays never builds the dicts.
    """

    __slots__ = ("_dag", "_dag_factory", "_component_of",
                 "_component_of_factory", "_members", "_members_factory",
                 "_num_components")

    def __init__(self, dag: Optional[DiGraph] = None,
                 component_of: Optional[dict[Node, int]] = None,
                 members: Optional[list[list[Node]]] = None, *,
                 dag_factory: Optional[Callable[[], DiGraph]] = None,
                 component_of_factory:
                     Optional[Callable[[], dict[Node, int]]] = None,
                 members_factory:
                     Optional[Callable[[], list[list[Node]]]] = None,
                 num_components: Optional[int] = None) -> None:
        if dag is None and dag_factory is None:
            raise ValueError("Condensation needs a dag or a dag_factory")
        if component_of is None and component_of_factory is None:
            component_of = {}
        if members is None and members_factory is None:
            members = []
        self._dag = dag
        self._dag_factory = dag_factory
        self._component_of = component_of
        self._component_of_factory = component_of_factory
        self._members = members
        self._members_factory = members_factory
        self._num_components = num_components

    @property
    def dag(self) -> DiGraph:
        if self._dag is None:
            self._dag = self._dag_factory()
            self._dag_factory = None
        return self._dag

    @property
    def component_of(self) -> dict[Node, int]:
        if self._component_of is None:
            self._component_of = self._component_of_factory()
            self._component_of_factory = None
        return self._component_of

    @property
    def members(self) -> list[list[Node]]:
        if self._members is None:
            self._members = self._members_factory()
            self._members_factory = None
        return self._members

    @property
    def num_components(self) -> int:
        """Number of strongly connected components."""
        if self._num_components is None:
            self._num_components = len(self.members)
        return self._num_components

    def __repr__(self) -> str:
        return f"Condensation(num_components={self.num_components})"

    def representative(self, node: Node) -> int:
        """Component id of an original node.

        Raises
        ------
        NodeNotFoundError
            If ``node`` was not in the original graph.
        """
        try:
            return self.component_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def is_trivial(self) -> bool:
        """``True`` iff every component is a single node (input was a DAG
        without self-loop-induced collapses — i.e. condensation changed
        nothing but relabeling)."""
        return all(len(m) == 1 for m in self.members)


def condense(graph: DiGraph) -> Condensation:
    """Condense ``graph``'s SCCs into single nodes.

    Component ids are assigned in *topological* order of the condensation
    (component 0 has no incoming edges from other components), which many
    downstream algorithms rely on for determinism.  Self-loops and
    intra-component edges vanish; inter-component parallel edges collapse.
    """
    components = strongly_connected_components(graph)
    # Tarjan emits components in reverse topological order; flip them so
    # component ids increase along edges of the condensation.
    components.reverse()
    component_of: dict[Node, int] = {}
    for cid, component in enumerate(components):
        for node in component:
            component_of[node] = cid

    dag = DiGraph()
    for cid in range(len(components)):
        dag.add_node(cid)
    for u, v in graph.edges():
        cu, cv = component_of[u], component_of[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return Condensation(dag=dag, component_of=component_of,
                        members=components)


def condense_csr(csr: CSRGraph) -> tuple[Condensation, CSRGraph]:
    """Array-backed condensation of a :class:`CSRGraph` snapshot.

    Produces the same :class:`Condensation` as :func:`condense` —
    identical component ids (topological order), member order, and DAG
    adjacency order (first occurrence of each inter-component edge in
    the original source-major edge order) — plus the condensed graph as
    a second CSR snapshot for the downstream array phases.
    """
    n = csr.num_nodes
    nodes = csr.nodes
    post = _dag_postorder_csr(csr)
    if post is not None:
        # Acyclic input: every component is a singleton and component ids
        # are the reversed postorder ranks — assignable in one scatter,
        # and the condensed edge list is the original edge list verbatim
        # (no self-loops to drop, no parallel edges to dedup).
        comp = np.empty(n, dtype=np.int32)
        comp[np.asarray(post, dtype=np.int64)] = np.arange(
            n - 1, -1, -1, dtype=np.int32)
        tails32 = comp[csr.src_of_edge()]
        heads32 = comp[csr.indices]
        perm = np.argsort(tails32, kind="stable")
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(np.bincount(tails32, minlength=n), out=indptr[1:])
        cond_csr = CSRGraph.from_forward(list(range(n)), indptr,
                                         heads32[perm])
        return (Condensation(
                    dag_factory=cond_csr.to_digraph,
                    component_of_factory=lambda: dict(zip(nodes,
                                                          comp.tolist())),
                    members_factory=lambda: [[nodes[i]]
                                             for i in reversed(post)],
                    num_components=n),
                cond_csr)

    components = tarjan_scc_csr(csr)
    components.reverse()
    k = len(components)
    comp_list = [0] * n
    for cid, component in enumerate(components):
        for i in component:
            comp_list[i] = cid
    comp = np.asarray(comp_list, dtype=np.int64)

    def component_of_factory() -> dict[Node, int]:
        return dict(zip(nodes, comp_list))

    def members_factory() -> list[list[Node]]:
        return [[nodes[i] for i in component] for component in components]

    # Condensed edge list: map every original edge, drop intra-component
    # ones, and deduplicate keeping the first occurrence — the order the
    # reference path's dict adjacency records.
    cu = comp[csr.src_of_edge()]
    cv = comp[csr.indices]
    mask = cu != cv
    key = cu[mask] * k + cv[mask]
    _, first = np.unique(key, return_index=True)
    key_ordered = key[np.sort(first)]
    heads = (key_ordered % k).astype(np.int32)
    tails = (key_ordered // k).astype(np.int32)
    # Source-major CSR rows; the stable sort keeps first-occurrence
    # order within each source row.
    perm = np.argsort(tails, kind="stable")
    indices = heads[perm]
    indptr = np.zeros(k + 1, dtype=np.int32)
    np.cumsum(np.bincount(tails, minlength=k), out=indptr[1:])
    cond_csr = CSRGraph.from_forward(list(range(k)), indptr, indices)
    return (Condensation(dag_factory=cond_csr.to_digraph,
                         component_of_factory=component_of_factory,
                         members_factory=members_factory,
                         num_components=k),
            cond_csr)
