"""SCC condensation: collapse each strongly connected component to one node.

This is the first preprocessing step of dual labeling (paper, Section 3):
"If [the input graph is] not [acyclic], we find strongly connected
components of G and collapse each component into a representative node."

The result is always a DAG.  :class:`Condensation` keeps both directions of
the node mapping so reachability queries posed on *original* vertices can be
answered on the condensed DAG: ``u ⇝ v`` in ``G`` iff
``rep(u) ⇝ rep(v)`` in the condensation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.scc import strongly_connected_components

__all__ = ["Condensation", "condense"]


@dataclass(frozen=True)
class Condensation:
    """The condensation DAG of a digraph plus node mappings.

    Attributes
    ----------
    dag:
        The condensed graph.  Its nodes are dense integers ``0..k-1``
        (component ids); it contains no self-loops and is acyclic.
    component_of:
        Maps each original node to its component id.
    members:
        ``members[cid]`` lists the original nodes of component ``cid``.
    """

    dag: DiGraph
    component_of: dict[Node, int]
    members: list[list[Node]] = field(repr=False)

    @property
    def num_components(self) -> int:
        """Number of strongly connected components."""
        return len(self.members)

    def representative(self, node: Node) -> int:
        """Component id of an original node.

        Raises
        ------
        NodeNotFoundError
            If ``node`` was not in the original graph.
        """
        try:
            return self.component_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def is_trivial(self) -> bool:
        """``True`` iff every component is a single node (input was a DAG
        without self-loop-induced collapses — i.e. condensation changed
        nothing but relabeling)."""
        return all(len(m) == 1 for m in self.members)


def condense(graph: DiGraph) -> Condensation:
    """Condense ``graph``'s SCCs into single nodes.

    Component ids are assigned in *topological* order of the condensation
    (component 0 has no incoming edges from other components), which many
    downstream algorithms rely on for determinism.  Self-loops and
    intra-component edges vanish; inter-component parallel edges collapse.
    """
    components = strongly_connected_components(graph)
    # Tarjan emits components in reverse topological order; flip them so
    # component ids increase along edges of the condensation.
    components.reverse()
    component_of: dict[Node, int] = {}
    for cid, component in enumerate(components):
        for node in component:
            component_of[node] = cid

    dag = DiGraph()
    for cid in range(len(components)):
        dag.add_node(cid)
    for u, v in graph.edges():
        cu, cv = component_of[u], component_of[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return Condensation(dag=dag, component_of=component_of,
                        members=components)
