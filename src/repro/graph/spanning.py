"""Spanning forest extraction for a DAG — paper Section 3.1.

Dual labeling splits a DAG into a spanning tree (or forest, when the DAG
has several roots) plus the remaining *non-tree* edges.  This module picks
the forest by depth-first search from the DAG's roots, in deterministic
insertion order, and classifies every edge:

* **tree edge** — part of the spanning forest;
* **superfluous non-tree edge** — its head is already a tree descendant of
  its tail, so it adds no reachability beyond the tree and is *dropped*
  (paper: "the non-tree edge is superfluous, and there is no need to keep
  track of it");
* **non-tree edge** — everything else; these go into the link table.

Every node of a DAG is reachable from at least one root (walk predecessor
links upward; acyclicity guarantees termination), so DFS from the roots
covers all nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import NotADAGError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph, Edge, Node
from repro.graph.traversal import topological_sort

__all__ = ["CSRForest", "SpanningForest", "spanning_forest",
           "spanning_forest_csr"]


@dataclass(frozen=True)
class SpanningForest:
    """A spanning forest of a DAG plus the edge classification.

    Attributes
    ----------
    parent:
        Maps each non-root node to its tree parent.  Roots are absent.
    roots:
        Tree roots, in traversal order.
    children:
        Tree adjacency: ``children[u]`` lists tree children in the order
        DFS discovered them (this order defines the interval labels).
    nontree_edges:
        Non-tree edges that carry extra reachability (the link-table input).
    superfluous_edges:
        Non-tree edges dropped because the tree already covers them.
    """

    parent: dict[Node, Node]
    roots: list[Node]
    children: dict[Node, list[Node]] = field(repr=False)
    nontree_edges: list[Edge] = field(repr=False)
    superfluous_edges: list[Edge] = field(repr=False)

    @property
    def num_tree_edges(self) -> int:
        """Number of edges in the forest."""
        return len(self.parent)

    @property
    def t(self) -> int:
        """The paper's ``t``: number of retained non-tree edges."""
        return len(self.nontree_edges)

    def is_tree_ancestor(self, u: Node, v: Node) -> bool:
        """``True`` iff ``u`` is an ancestor of ``v`` in the forest
        (reflexive).  Linear in tree depth; intended for tests — the
        interval labels answer this in O(1) at query time."""
        node = v
        while True:
            if node == u:
                return True
            if node not in self.parent:
                return False
            node = self.parent[node]


def spanning_forest(dag: DiGraph) -> SpanningForest:
    """Extract a DFS spanning forest of ``dag`` and classify its edges.

    The DFS starts from each root (in-degree 0) in node insertion order and
    visits successors in adjacency order, so the forest — and therefore the
    interval labels derived from it — is deterministic.

    Superfluous-edge detection uses DFS entry/exit clocks: when a non-tree
    edge ``u -> v`` is examined and ``v``'s subtree interval lies within
    ``u``'s, the edge is already covered by tree paths.  Because edges are
    only classified after the whole DFS finishes, the check is exact.

    Raises
    ------
    NotADAGError
        If the input has a cycle (or no root while non-empty).
    """
    topological_sort(dag)  # validates acyclicity up front

    roots = dag.roots()
    if dag.num_nodes and not roots:
        raise NotADAGError("non-empty DAG must have at least one root")

    parent: dict[Node, Node] = {}
    children: dict[Node, list[Node]] = {node: [] for node in dag.nodes()}
    visited: set[Node] = set()
    # DFS clocks for ancestor tests: enter[u] <= enter[v] < exit[u] iff u is
    # a forest ancestor of v.
    enter: dict[Node, int] = {}
    exit_: dict[Node, int] = {}
    clock = 0
    candidate_nontree: list[Edge] = []

    for root in roots:
        if root in visited:
            continue
        visited.add(root)
        enter[root] = clock
        clock += 1
        stack = [(root, iter(list(dag.successors(root))))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    parent[succ] = node
                    children[node].append(succ)
                    enter[succ] = clock
                    clock += 1
                    stack.append((succ, iter(list(dag.successors(succ)))))
                    advanced = True
                    break
                candidate_nontree.append((node, succ))
            if not advanced:
                stack.pop()
                exit_[node] = clock
                clock += 1

    if len(visited) != dag.num_nodes:
        # Cannot happen on a DAG: every node is reachable from some root.
        raise NotADAGError("spanning DFS did not reach every node")

    nontree: list[Edge] = []
    superfluous: list[Edge] = []
    for u, v in candidate_nontree:
        if enter[u] <= enter[v] and exit_[v] <= exit_[u]:
            superfluous.append((u, v))
        else:
            nontree.append((u, v))

    return SpanningForest(parent=parent, roots=roots, children=children,
                          nontree_edges=nontree,
                          superfluous_edges=superfluous)


@dataclass
class CSRForest:
    """Array form of a spanning forest plus its interval clocks.

    Produced by :func:`spanning_forest_csr`; consumed by the fast
    construction backend, which reads the flat arrays directly and only
    materialises a :class:`SpanningForest` (via :meth:`materialize`) when
    someone asks for the dict-based artefact.

    Attributes
    ----------
    roots:
        Root ids, ascending (the DAG's in-degree-zero nodes).
    parent:
        Tree parent id per node, ``-1`` for roots.
    order:
        All node ids in DFS preorder (across all roots, one sequence).
    start / end:
        The DFS-clock interval ``[start, end)`` per node — ``start`` is
        the preorder rank, ``end`` is ``start`` plus the subtree size;
        exactly the labels :func:`repro.core.intervals.assign_intervals`
        assigns (one global clock, increment on entry only).
    nontree_u / nontree_v, superfluous_u / superfluous_v:
        The classified non-tree edges as aligned id arrays, in the order
        the DFS examined them.
    """

    csr: CSRGraph
    roots: list[int]
    parent: list[int]
    order: list[int]
    start: list[int]
    end: list[int]
    nontree_u: np.ndarray
    nontree_v: np.ndarray
    superfluous_u: np.ndarray
    superfluous_v: np.ndarray

    def materialize(self) -> SpanningForest:
        """The equivalent :class:`SpanningForest` over original nodes."""
        nodes = self.csr.nodes
        parent = {nodes[i]: nodes[self.parent[i]]
                  for i in self.order if self.parent[i] >= 0}
        children: dict[Node, list[Node]] = {node: [] for node in nodes}
        for i in self.order:
            p = self.parent[i]
            if p >= 0:
                children[nodes[p]].append(nodes[i])
        pair = [(nodes[u], nodes[v]) for u, v in
                zip(self.nontree_u.tolist(), self.nontree_v.tolist())]
        sup = [(nodes[u], nodes[v]) for u, v in
               zip(self.superfluous_u.tolist(),
                   self.superfluous_v.tolist())]
        return SpanningForest(parent=parent,
                              roots=[nodes[r] for r in self.roots],
                              children=children,
                              nontree_edges=pair,
                              superfluous_edges=sup)


def spanning_forest_csr(dag: CSRGraph) -> CSRForest:
    """Array-stack DFS spanning forest over a CSR snapshot of a DAG.

    Matches :func:`spanning_forest` walk for walk — roots in id order,
    successors in row order — and additionally assigns the interval
    clocks on the way (the classification test ``u`` is-ancestor-of
    ``v`` is exactly interval containment, so the clocks come for free
    and :mod:`repro.core.intervals` need not traverse again).

    The caller is expected to pass a DAG (the pipeline condenses first);
    a cyclic input surfaces as unvisited nodes and raises
    :class:`NotADAGError`, same as the reference.
    """
    n = dag.num_nodes
    ptr = dag.indptr.tolist()
    ind = dag.indices.tolist()
    src = dag.src_of_edge().tolist()
    # In-degrees straight from the forward direction — no reverse build.
    rdeg = np.bincount(dag.indices, minlength=n)
    roots = np.flatnonzero(rdeg == 0).tolist()
    if n and not roots:
        raise NotADAGError("non-empty DAG must have at least one root")

    parent = [-1] * n
    start = [0] * n
    order: list[int] = []
    append_order = order.append
    visited = [False] * n
    cand: list[int] = []
    cand_append = cand.append
    clock = 0
    # The DFS stack holds edge ids; a popped edge whose head is already
    # visited is a non-tree candidate at exactly the moment the
    # cursor-based walk would have examined it (rows are pushed reversed,
    # so within a row edges pop left to right, and a tree edge's whole
    # subtree is expanded before its right sibling surfaces).
    for root in roots:
        if visited[root]:
            continue
        visited[root] = True
        start[root] = clock
        clock += 1
        append_order(root)
        stack = list(range(ptr[root + 1] - 1, ptr[root] - 1, -1))
        pop = stack.pop
        push = stack.append
        extend = stack.extend
        while stack:
            e = pop()
            v = ind[e]
            if visited[v]:
                cand_append(e)
                continue
            visited[v] = True
            parent[v] = src[e]
            start[v] = clock
            clock += 1
            append_order(v)
            a = ptr[v]
            b = ptr[v + 1]
            if b - a == 1:  # single-successor rows skip the range object
                push(a)
            elif b != a:
                extend(range(b - 1, a - 1, -1))

    if len(order) != n:
        raise NotADAGError("spanning DFS did not reach every node")

    # Subtree sizes by one reverse-preorder accumulation; end = start +
    # size reproduces the single-counter DFS clock of assign_intervals.
    size = [1] * n
    for i in range(n - 1, -1, -1):
        node = order[i]
        p = parent[node]
        if p >= 0:
            size[p] += size[node]
    end = [s + z for s, z in zip(start, size)]

    # Classify candidates: u -> v is superfluous iff v's interval nests
    # inside u's (v is already a tree descendant of u).  The DFS only
    # recorded candidate edge ids; endpoints come from two gathers.
    if cand:
        ce = np.asarray(cand, dtype=np.int64)
        cu = dag.src_of_edge()[ce]
        cv = dag.indices[ce]
        starts = np.asarray(start, dtype=np.int64)
        ends = np.asarray(end, dtype=np.int64)
        nest = ((starts[cu] <= starts[cv]) & (ends[cv] <= ends[cu]))
        nontree_u, nontree_v = cu[~nest], cv[~nest]
        superfluous_u, superfluous_v = cu[nest], cv[nest]
    else:
        empty = np.empty(0, dtype=np.int32)
        nontree_u = nontree_v = superfluous_u = superfluous_v = empty
    return CSRForest(csr=dag, roots=roots, parent=parent, order=order,
                     start=start, end=end,
                     nontree_u=nontree_u, nontree_v=nontree_v,
                     superfluous_u=superfluous_u,
                     superfluous_v=superfluous_v)
