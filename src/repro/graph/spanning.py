"""Spanning forest extraction for a DAG — paper Section 3.1.

Dual labeling splits a DAG into a spanning tree (or forest, when the DAG
has several roots) plus the remaining *non-tree* edges.  This module picks
the forest by depth-first search from the DAG's roots, in deterministic
insertion order, and classifies every edge:

* **tree edge** — part of the spanning forest;
* **superfluous non-tree edge** — its head is already a tree descendant of
  its tail, so it adds no reachability beyond the tree and is *dropped*
  (paper: "the non-tree edge is superfluous, and there is no need to keep
  track of it");
* **non-tree edge** — everything else; these go into the link table.

Every node of a DAG is reachable from at least one root (walk predecessor
links upward; acyclicity guarantees termination), so DFS from the roots
covers all nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph, Edge, Node
from repro.graph.traversal import topological_sort

__all__ = ["SpanningForest", "spanning_forest"]


@dataclass(frozen=True)
class SpanningForest:
    """A spanning forest of a DAG plus the edge classification.

    Attributes
    ----------
    parent:
        Maps each non-root node to its tree parent.  Roots are absent.
    roots:
        Tree roots, in traversal order.
    children:
        Tree adjacency: ``children[u]`` lists tree children in the order
        DFS discovered them (this order defines the interval labels).
    nontree_edges:
        Non-tree edges that carry extra reachability (the link-table input).
    superfluous_edges:
        Non-tree edges dropped because the tree already covers them.
    """

    parent: dict[Node, Node]
    roots: list[Node]
    children: dict[Node, list[Node]] = field(repr=False)
    nontree_edges: list[Edge] = field(repr=False)
    superfluous_edges: list[Edge] = field(repr=False)

    @property
    def num_tree_edges(self) -> int:
        """Number of edges in the forest."""
        return len(self.parent)

    @property
    def t(self) -> int:
        """The paper's ``t``: number of retained non-tree edges."""
        return len(self.nontree_edges)

    def is_tree_ancestor(self, u: Node, v: Node) -> bool:
        """``True`` iff ``u`` is an ancestor of ``v`` in the forest
        (reflexive).  Linear in tree depth; intended for tests — the
        interval labels answer this in O(1) at query time."""
        node = v
        while True:
            if node == u:
                return True
            if node not in self.parent:
                return False
            node = self.parent[node]


def spanning_forest(dag: DiGraph) -> SpanningForest:
    """Extract a DFS spanning forest of ``dag`` and classify its edges.

    The DFS starts from each root (in-degree 0) in node insertion order and
    visits successors in adjacency order, so the forest — and therefore the
    interval labels derived from it — is deterministic.

    Superfluous-edge detection uses DFS entry/exit clocks: when a non-tree
    edge ``u -> v`` is examined and ``v``'s subtree interval lies within
    ``u``'s, the edge is already covered by tree paths.  Because edges are
    only classified after the whole DFS finishes, the check is exact.

    Raises
    ------
    NotADAGError
        If the input has a cycle (or no root while non-empty).
    """
    topological_sort(dag)  # validates acyclicity up front

    roots = dag.roots()
    if dag.num_nodes and not roots:
        raise NotADAGError("non-empty DAG must have at least one root")

    parent: dict[Node, Node] = {}
    children: dict[Node, list[Node]] = {node: [] for node in dag.nodes()}
    visited: set[Node] = set()
    # DFS clocks for ancestor tests: enter[u] <= enter[v] < exit[u] iff u is
    # a forest ancestor of v.
    enter: dict[Node, int] = {}
    exit_: dict[Node, int] = {}
    clock = 0
    candidate_nontree: list[Edge] = []

    for root in roots:
        if root in visited:
            continue
        visited.add(root)
        enter[root] = clock
        clock += 1
        stack = [(root, iter(list(dag.successors(root))))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    parent[succ] = node
                    children[node].append(succ)
                    enter[succ] = clock
                    clock += 1
                    stack.append((succ, iter(list(dag.successors(succ)))))
                    advanced = True
                    break
                candidate_nontree.append((node, succ))
            if not advanced:
                stack.pop()
                exit_[node] = clock
                clock += 1

    if len(visited) != dag.num_nodes:
        # Cannot happen on a DAG: every node is reachable from some root.
        raise NotADAGError("spanning DFS did not reach every node")

    nontree: list[Edge] = []
    superfluous: list[Edge] = []
    for u, v in candidate_nontree:
        if enter[u] <= enter[v] and exit_[v] <= exit_[u]:
            superfluous.append((u, v))
        else:
            nontree.append((u, v))

    return SpanningForest(parent=parent, roots=roots, children=children,
                          nontree_edges=nontree,
                          superfluous_edges=superfluous)
