"""Transitive closure of directed graphs.

Two interchangeable backends:

* :func:`transitive_closure_bitsets` — pure Python, big-int bitsets, one
  reverse-topological sweep.  Returns ``desc[i]`` bitsets over dense node
  ids.  Handles cyclic graphs by condensing first.
* :func:`transitive_closure_matrix` — numpy boolean matrix, same sweep,
  used where downstream code wants vectorised row operations (2-hop
  labeling, the TC-matrix baseline).

Both are *reflexive*: every node reaches itself.  That convention matches
the reachability semantics used throughout the package (a trivial path of
length zero exists from any node to itself).
"""

from __future__ import annotations

import numpy as np

from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import topological_sort

__all__ = [
    "transitive_closure_bitsets",
    "transitive_closure_matrix",
    "transitive_closure_pairs",
    "count_reachable_pairs",
]


def _dag_closure_bitsets(dag: DiGraph, order: dict[Node, int]) -> list[int]:
    """Descendant bitsets of a DAG, indexed by ``order`` ids."""
    desc = [0] * len(order)
    for node in reversed(topological_sort(dag)):
        i = order[node]
        bits = 1 << i
        for succ in dag.successors(node):
            bits |= desc[order[succ]]
        desc[i] = bits
    return desc


def transitive_closure_bitsets(graph: DiGraph) -> tuple[list[int], dict[Node, int]]:
    """Reflexive transitive closure as per-node descendant bitsets.

    Returns
    -------
    (desc, index):
        ``index`` maps each node to a dense id; ``desc[index[u]]`` is a
        bitset whose bit ``index[v]`` is set iff ``u`` reaches ``v``.

    Works on cyclic graphs: SCCs are condensed internally and every member
    of a component receives the component's full closure (including all
    co-members, since they reach each other).
    """
    index = graph.node_index()
    cond = condense(graph)
    dag = cond.dag
    dag_index = {cid: cid for cid in dag.nodes()}
    comp_desc = _dag_closure_bitsets(dag, dag_index)

    # Bitset of original members per component.
    member_bits = [0] * cond.num_components
    for node, i in index.items():
        member_bits[cond.component_of[node]] |= 1 << i

    # Expand component-level closure to original nodes.
    expanded = [0] * cond.num_components
    for cid in range(cond.num_components):
        bits = 0
        comp_bits = comp_desc[cid]
        while comp_bits:
            low = comp_bits & -comp_bits
            bits |= member_bits[low.bit_length() - 1]
            comp_bits ^= low
        expanded[cid] = bits

    desc = [0] * len(index)
    for node, i in index.items():
        desc[i] = expanded[cond.component_of[node]]
    return desc, index


def transitive_closure_matrix(graph: DiGraph) -> tuple[np.ndarray, dict[Node, int]]:
    """Reflexive transitive closure as an ``n × n`` boolean numpy matrix.

    ``matrix[index[u], index[v]]`` is ``True`` iff ``u`` reaches ``v``.
    Cyclic graphs are handled via condensation, as in
    :func:`transitive_closure_bitsets`.
    """
    index = graph.node_index()
    n = len(index)
    cond = condense(graph)
    dag = cond.dag
    k = cond.num_components

    comp = np.zeros((k, k), dtype=bool)
    for node in reversed(topological_sort(dag)):
        row = comp[node]
        row[node] = True
        for succ in dag.successors(node):
            np.logical_or(row, comp[succ], out=row)

    # Map component closure back to original nodes.
    comp_of = np.empty(n, dtype=np.int64)
    for node, i in index.items():
        comp_of[i] = cond.component_of[node]
    # matrix[i, j] = comp[comp_of[i], comp_of[j]]
    matrix = comp[np.ix_(comp_of, comp_of)]
    return matrix, index


def transitive_closure_pairs(graph: DiGraph) -> set[tuple[Node, Node]]:
    """All reachable ordered pairs ``(u, v)`` with ``u != v``.

    Convenience for tests and small graphs; quadratic output size.
    """
    desc, index = transitive_closure_bitsets(graph)
    nodes = list(index)
    pairs: set[tuple[Node, Node]] = set()
    for u, i in index.items():
        bits = desc[i]
        while bits:
            low = bits & -bits
            j = low.bit_length() - 1
            bits ^= low
            if i != j:
                pairs.add((u, nodes[j]))
    return pairs


def count_reachable_pairs(graph: DiGraph) -> int:
    """Number of distinct ordered reachable pairs, counting ``(u, u)``."""
    desc, _ = transitive_closure_bitsets(graph)
    return sum(bits.bit_count() for bits in desc)
