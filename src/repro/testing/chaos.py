"""The end-to-end chaos soak: serving stack vs. fault schedule.

:func:`run_chaos_soak` stands up the whole serving pipeline for real —
a built index behind a :class:`~repro.core.service.QueryService`
(wrapped in a :class:`~repro.testing.faults.FlakyService`), a
:class:`~repro.server.server.ReachServer` on its own thread, a
:class:`~repro.testing.faults.ChaosProxy` in front of it, and the load
generator driving differential-verified traffic *through* the proxy —
then replays a seeded :class:`~repro.testing.faults.FaultPlan` against
it: connection severs, latency spikes, garbled bytes, blackholes,
injected kernel exceptions, reloads of missing and corrupted index
files, and SIGKILLs of a saver subprocess mid-write.

With ``workers=N`` the soak targets a multi-process
:class:`~repro.server.router.WorkerFleet` instead of the in-process
server: the same network faults apply at the proxy, reloads exercise
the fleet-wide generation swap, and two process-level fault kinds join
the schedule — ``worker_kill`` (SIGKILL a live worker; the supervisor
respawns it onto the current shared-memory generation) and
``worker_hang`` (SIGSTOP a worker; its kernel listen queue keeps
accepting and blackholing connections until the fleet's liveness probe
declares it dead and replaces it).  ``flush_error`` is unavailable in
fleet mode — the injection wrapper cannot reach into worker processes.

Two invariants gate the run (:meth:`ChaosReport.ok`):

1. **Zero wrong answers.**  Every reply that arrives is checked
   against the direct in-process answers; faults may fail requests,
   never falsify them.
2. **Bounded recovery.**  After each fault a probe client (with the
   resilient retry policy) must observe a fully correct batch within
   ``recovery_timeout`` seconds.

The same seed replays the same fault schedule, so a soak failure in CI
reproduces locally with one number.

:func:`run_crash_restart_soak` is the power-loss prover for the
durable state directory (``serve --state-dir``): it runs the server as
a real subprocess, SIGKILLs the whole process group at randomized
points — mid-mutation, mid-checkpoint, mid-manifest-swap — restarts
onto the same state dir, and asserts that every catalog mutation is
atomic (the recovered catalog converges to exactly the pre- or
post-mutation state, and an *acknowledged* mutation is always
post-state), that a differential query stream riding through the
restarts sees zero wrong answers, and that every recovery lands inside
a hard time bound (client-observed restart-to-ready recorded into a
``reach_recovery_seconds`` histogram; the server's own boot recovery
is exported by :mod:`repro.obs` under the same name).  A final hygiene
pass replays the state dir offline: checkpoint compaction must have
bounded journal growth and generation GC must have left no orphan
artifacts.

:func:`run_tenant_isolation_soak` is the multi-tenant variant: a
worker fleet serves two named catalog entries, tenant A is driven far
past its admission quota (so the per-tenant shed path fires
continuously) while workers are SIGKILLed underneath, and tenant B's
differentially-verified traffic must stay *both* correct (zero wrong
answers) and fast (p99 within a bounded multiple of its quiet
baseline).  That is the isolation contract: one tenant's overload or
infrastructure trouble may slow or fail that tenant, never its
neighbours.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.core.base import build_index
from repro.core.serialize import load_dual_index, save_dual_index
from repro.core.service import QueryService
from repro.exceptions import ReproError
from repro.graph.generators import gnm_random_digraph
from repro.obs.metrics import RECOVERY_BUCKETS, MetricsRegistry
from repro.server.client import ReachClient, RetryPolicy, ServerReplyError
from repro.server.loadgen import run_loadgen, run_loadgen_mix
from repro.server.router import WorkerFleet
from repro.server.server import ReachServer, ServerConfig, ServerThread
from repro.testing.faults import (
    ChaosProxy,
    FaultPlan,
    FlakyService,
    run_kill_during_save,
)

__all__ = [
    "ChaosReport",
    "CrashRestartReport",
    "DEFAULT_FAULT_KINDS",
    "FLEET_FAULT_KINDS",
    "IsolationReport",
    "run_chaos_soak",
    "run_crash_restart_soak",
    "run_tenant_isolation_soak",
]

#: The fault vocabulary the soak understands.  ``sever``/``delay``/
#: ``garble``/``blackhole`` are network faults applied at the proxy;
#: ``flush_error`` raises inside the MicroBatcher's kernel call;
#: ``reload_missing``/``reload_corrupt`` drive the degraded-mode path;
#: ``kill_save`` SIGKILLs a saver subprocess and hot-swaps onto the
#: surviving file.
DEFAULT_FAULT_KINDS = (
    "sever",
    "delay",
    "garble",
    "blackhole",
    "flush_error",
    "reload_missing",
    "reload_corrupt",
    "kill_save",
)

#: The vocabulary in fleet mode (``workers >= 1``): ``flush_error``
#: needs the in-process injection wrapper and is replaced by the two
#: process-level faults ``worker_kill`` / ``worker_hang``.
FLEET_FAULT_KINDS = (
    "sever",
    "delay",
    "garble",
    "blackhole",
    "reload_missing",
    "reload_corrupt",
    "kill_save",
    "worker_kill",
    "worker_hang",
)


@dataclass
class ChaosReport:
    """Everything one soak observed, plus the pass/fail verdict."""

    seed: int
    scheme: str
    duration_seconds: float
    recovery_timeout: float
    #: ``[{"kind", "at", "recovery_seconds"}, ...]`` in firing order;
    #: ``recovery_seconds`` is ``None`` when recovery timed out.
    faults: list[dict] = field(default_factory=list)
    #: per-fault-kind recovery-time distribution, from the
    #: ``reach_chaos_recovery_seconds{kind=...}`` histogram family
    #: (:data:`repro.obs.metrics.RECOVERY_BUCKETS`):
    #: ``{kind: {"count", "mean_seconds", "p95_seconds",
    #: "max_seconds", "buckets"}}``
    recovery: dict = field(default_factory=dict)
    #: replies (loadgen or probe) contradicting the direct answers
    wrong_answers: int = 0
    mismatch_samples: list = field(default_factory=list)
    #: ``LoadgenResult.as_dict()`` of the traffic that ran underneath
    loadgen: dict = field(default_factory=dict)
    #: proxy counters proving the network faults actually happened
    proxy: dict = field(default_factory=dict)
    #: kernel exceptions FlakyService actually raised
    injected_kernel_faults: int = 0
    #: the server reported ``status: degraded`` at least once
    degraded_observed: bool = False
    #: driver-level failures (fault could not even be applied)
    driver_errors: list = field(default_factory=list)
    #: worker processes (0 = the in-process single server was soaked)
    workers: int = 0
    #: wire protocol the verified load spoke (``json`` or ``binary``)
    protocol: str = "json"
    #: :meth:`WorkerFleet.describe` snapshot (fleet mode only)
    fleet: dict = field(default_factory=dict)

    @property
    def unrecovered(self) -> list[str]:
        """Kinds whose post-fault probe never saw a correct batch."""
        return [f["kind"] for f in self.faults
                if f["recovery_seconds"] is None]

    def ok(self) -> bool:
        """The soak verdict: correct answers, full recovery, and the
        traffic actually flowed."""
        return (self.wrong_answers == 0
                and not self.unrecovered
                and not self.driver_errors
                and self.loadgen.get("ok", 0) > 0)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok(),
            "seed": self.seed,
            "scheme": self.scheme,
            "duration_seconds": self.duration_seconds,
            "recovery_timeout": self.recovery_timeout,
            "faults": list(self.faults),
            "recovery": dict(self.recovery),
            "unrecovered": self.unrecovered,
            "wrong_answers": self.wrong_answers,
            "mismatch_samples": list(self.mismatch_samples),
            "injected_kernel_faults": self.injected_kernel_faults,
            "degraded_observed": self.degraded_observed,
            "driver_errors": list(self.driver_errors),
            "loadgen": dict(self.loadgen),
            "proxy": dict(self.proxy),
            "workers": self.workers,
            "protocol": self.protocol,
            "fleet": dict(self.fleet),
        }

    def summary_lines(self) -> list[str]:
        """Human-readable digest for the CLI."""
        target = (f"fleet of {self.workers} workers" if self.workers
                  else "in-process server")
        lines = [
            f"chaos soak seed={self.seed} scheme={self.scheme} "
            f"protocol={self.protocol} "
            f"duration={self.duration_seconds:.1f}s "
            f"({target}): "
            f"{'PASS' if self.ok() else 'FAIL'}",
            f"  faults injected: {len(self.faults)} "
            f"({', '.join(f['kind'] for f in self.faults) or 'none'})",
        ]
        for fault in self.faults:
            rec = fault["recovery_seconds"]
            lines.append(
                f"    {fault['kind']:<14} at t={fault['at']:.2f}s  "
                + (f"recovered in {rec:.2f}s" if rec is not None
                   else "NOT RECOVERED"))
        recovered = [block for block in self.recovery.values()
                     if block["count"]]
        if recovered:
            total = sum(block["count"] for block in recovered)
            worst = max(block["max_seconds"] for block in recovered)
            lines.append(
                f"  recovery: {total} measured, worst {worst:.2f}s "
                f"(per-kind histograms in the report dict)")
        lines.append(
            f"  wrong answers: {self.wrong_answers}"
            + (f"  samples: {self.mismatch_samples[:3]}"
               if self.mismatch_samples else ""))
        lines.append(
            f"  kernel faults raised: {self.injected_kernel_faults}  "
            f"degraded observed: {self.degraded_observed}")
        if self.driver_errors:
            lines.append(f"  driver errors: {self.driver_errors}")
        lg = self.loadgen
        lines.append(
            f"  loadgen: {lg.get('ok', 0)} ok / "
            f"{lg.get('errors', 0)} errors / "
            f"{lg.get('reconnects', 0)} reconnects "
            f"(codes: {lg.get('error_codes', {})})")
        px = self.proxy
        lines.append(
            f"  proxy: {px.get('severed', 0)} severed, "
            f"{px.get('garbled_chunks', 0)} garbled, "
            f"{px.get('delayed_chunks', 0)} delayed chunks")
        if self.fleet:
            lines.append(
                f"  fleet: {self.fleet.get('workers', 0)} workers, "
                f"{self.fleet.get('restarts', 0)} restarts, "
                f"{self.fleet.get('swaps', 0)} swaps, "
                f"generation {self.fleet.get('generation', 0)}")
        return lines


def _corrupt_copy(good: Path, target: Path) -> None:
    """Write a bit-flipped copy of ``good`` (fails the checksum)."""
    blob = bytearray(good.read_bytes())
    middle = len(blob) // 2
    blob[middle] ^= 0x55
    target.write_bytes(bytes(blob))


class _Prober:
    """Recovery measurement: a resilient client through the proxy that
    reports when a fully correct probe batch comes back."""

    def __init__(self, host: str, port: int, probe_pairs: list,
                 expected: list, report: ChaosReport) -> None:
        self._pairs = [list(pair) for pair in probe_pairs]
        self._expected = [bool(x) for x in expected]
        self._report = report
        self._client = ReachClient(
            host, port,
            retry=RetryPolicy(max_attempts=2, attempt_timeout=1.0,
                              base_delay=0.02, max_delay=0.2,
                              breaker_threshold=0, seed=0))

    def await_recovery(self, timeout: float) -> "float | None":
        """Seconds until a correct probe batch, or ``None`` on
        timeout.  A batch that *arrives* but is wrong is counted as a
        wrong answer — faults must fail loudly, never falsify."""
        started = time.monotonic()
        while time.monotonic() - started < timeout:
            try:
                answers = self._client.query_batch(self._pairs)
            except (ReproError, ConnectionError, OSError):
                time.sleep(0.02)
                continue
            if answers == self._expected:
                return time.monotonic() - started
            self._report.wrong_answers += 1
            if len(self._report.mismatch_samples) < 10:
                self._report.mismatch_samples.append(
                    ("probe", answers, self._expected))
            time.sleep(0.02)
        return None

    def close(self) -> None:
        self._client.close()


def run_chaos_soak(*, seed: int = 0, duration: float = 6.0,
                   nodes: int = 120, scheme: str = "dual-ii",
                   recovery_timeout: float = 5.0,
                   connections: int = 4, pipeline: int = 4,
                   kinds: Sequence[str] = DEFAULT_FAULT_KINDS,
                   faults_per_kind: int = 1,
                   workdir: "Path | str | None" = None,
                   pool_size: int = 192,
                   workers: int = 0,
                   protocol: str = "json") -> ChaosReport:
    """Run the serving stack under a seeded fault schedule.

    Parameters
    ----------
    seed:
        Drives the graph, the pair pool, *and* the fault schedule —
        one number replays the whole run.
    duration:
        Seconds of sustained load; faults are scheduled inside the
        first ~70% so each has room to recover before the bell.
    nodes:
        Graph size (edges are ``2 * nodes``); also the size of the
        index the kill-during-save subprocess rebuilds, so a
        ``kill_save`` swap is answer-preserving.
    scheme:
        Index scheme served (``dual-i`` or ``dual-ii``).
    recovery_timeout:
        Per-fault bound on the probe seeing a correct batch again.
    kinds / faults_per_kind:
        The fault vocabulary (each kind fires ``faults_per_kind``
        times, deterministically scheduled).
    workdir:
        Where the good/corrupt/killed index files live (a temporary
        directory in tests); defaults to the current directory.
    workers:
        ``0`` (default) soaks the in-process
        :class:`~repro.server.server.ReachServer`; ``>= 1`` soaks a
        :class:`~repro.server.router.WorkerFleet` of that many worker
        processes and, when ``kinds`` is the default vocabulary,
        switches it to :data:`FLEET_FAULT_KINDS`.
    protocol:
        Wire protocol the verified load generator speaks (``json`` or
        ``binary``).  Binary mode puts the frame-resync contract under
        the fault schedule: a ``garble``/truncation fault must surface
        as a transport error and a reconnect, never as a wrong answer.
        The recovery probe and the management connections stay JSON
        either way.

    Returns the populated :class:`ChaosReport`; callers gate on
    :meth:`ChaosReport.ok`.
    """
    kinds = tuple(kinds)
    if workers:
        if kinds == DEFAULT_FAULT_KINDS:
            kinds = FLEET_FAULT_KINDS
        if "flush_error" in kinds:
            raise ValueError(
                "flush_error needs the in-process injection wrapper "
                "and cannot run in fleet mode (workers >= 1)")
    elif any(k in ("worker_kill", "worker_hang") for k in kinds):
        raise ValueError(
            "worker_kill/worker_hang need a worker fleet — pass "
            "workers >= 1")
    edges = 2 * nodes
    base = Path(workdir) if workdir is not None else Path(".")
    graph = gnm_random_digraph(nodes, edges, seed=seed)
    index = build_index(graph, scheme=scheme)

    rng = random.Random(seed + 1)
    pool = [(rng.randrange(nodes), rng.randrange(nodes))
            for _ in range(pool_size)]
    with QueryService(index) as direct:
        expected = [bool(a) for a in direct.query_batch(pool)]
    probe_pairs = pool[:8]
    probe_expected = expected[:8]

    good_path = base / "chaos-good-index.json"
    save_dual_index(index, good_path)

    report = ChaosReport(seed=seed, scheme=scheme,
                         duration_seconds=duration,
                         recovery_timeout=recovery_timeout,
                         workers=workers, protocol=protocol)
    registry = MetricsRegistry()
    recovery_hist = registry.histogram(
        "reach_chaos_recovery_seconds",
        "Seconds from fault injection to a correct probe batch",
        labels=("kind",), buckets=RECOVERY_BUCKETS)

    flaky: "FlakyService | None" = None
    thread: "ServerThread | None" = None
    fleet: "WorkerFleet | None" = None
    if workers:
        # Tight liveness probing so a SIGSTOPped worker is declared
        # dead and replaced well inside ``recovery_timeout``.
        fleet = WorkerFleet(
            index, scheme=scheme, workers=workers,
            server_options=dict(max_delay=0.001, policy="shed",
                                request_timeout=5.0,
                                drain_timeout=2.0),
            probe_interval=0.25,
            probe_timeout=min(1.5, recovery_timeout / 2))
        fleet.start()
        backend_port = fleet.port
    else:
        flaky = FlakyService(QueryService(index))
        config = ServerConfig(max_delay=0.001, policy="shed",
                              request_timeout=5.0, drain_timeout=2.0,
                              service_wrapper=flaky.rewrap)
        server = ReachServer(flaky, scheme=scheme, config=config)
        thread = ServerThread(server).start()
        backend_port = thread.port
    proxy = ChaosProxy("127.0.0.1", backend_port).start()
    prober = _Prober("127.0.0.1", proxy.port, probe_pairs,
                     probe_expected, report)

    def mgmt_client() -> ReachClient:
        """Management-plane connection, bypassing the proxy.  Fresh
        per fault: in fleet mode the worker holding a long-lived
        connection may legitimately have been killed by an earlier
        fault, and reload + health must share one connection so the
        degraded status is read from the worker that owns it."""
        return ReachClient("127.0.0.1", backend_port, timeout=30.0)

    plan = FaultPlan.random(
        seed=seed, duration=duration * 0.7,
        kinds=list(kinds), count=faults_per_kind * len(kinds),
        start=min(0.4, duration * 0.1))

    loadgen_box: dict[str, Any] = {}

    def drive() -> None:
        try:
            loadgen_box["result"] = run_loadgen(
                "127.0.0.1", proxy.port, pool,
                connections=connections, duration=duration,
                pipeline=pipeline, batch_size=1, expected=expected,
                protocol=protocol)
        except Exception as exc:  # surfaced via driver_errors
            loadgen_box["error"] = f"{type(exc).__name__}: {exc}"

    traffic = threading.Thread(target=drive, name="chaos-loadgen",
                               daemon=True)

    fault_rng = random.Random(seed + 2)
    hung_pids: list[int] = []

    def reload_bad_then_recover(bad_path: Path) -> None:
        """Drive the degraded-mode round trip on one connection."""
        with mgmt_client() as mgmt:
            try:
                mgmt.reload(index=str(bad_path))
            except ServerReplyError as exc:
                if exc.code != "reload_failed":
                    raise
            if mgmt.health().get("status") == "degraded":
                report.degraded_observed = True
            mgmt.reload(index=str(good_path))  # degraded -> ok

    def pick_worker() -> int:
        pids = fleet.pids()
        if not pids:
            raise RuntimeError("no live worker to fault")
        return fault_rng.choice(pids)

    def apply_fault(kind: str) -> None:
        if kind == "sever":
            proxy.sever_all()
        elif kind == "delay":
            proxy.spike_delay(0.05, 0.4)
        elif kind == "garble":
            proxy.garble_next(2)
        elif kind == "blackhole":
            proxy.blackhole(0.3)
        elif kind == "flush_error":
            flaky.fail_next(3)
        elif kind == "reload_missing":
            reload_bad_then_recover(base / "chaos-missing.json")
        elif kind == "reload_corrupt":
            corrupt_path = base / "chaos-corrupt-index.json"
            _corrupt_copy(good_path, corrupt_path)
            reload_bad_then_recover(corrupt_path)
        elif kind == "kill_save":
            kill_path = base / "chaos-killed-index.json"
            save_dual_index(index, kill_path)  # survives kill #1
            run_kill_during_save(kill_path, nodes=nodes, edges=edges,
                                 seed=seed, kills=1,
                                 delay_range=(0.01, 0.06))
            load_dual_index(kill_path)  # must still be whole
            with mgmt_client() as mgmt:
                mgmt.reload(index=str(kill_path))
        elif kind == "worker_kill":
            os.kill(pick_worker(), signal.SIGKILL)
        elif kind == "worker_hang":
            # The stopped worker's listen queue keeps accepting and
            # blackholing connections; the fleet's liveness probe must
            # declare it dead and respawn a replacement.  SIGKILL works
            # on stopped processes, so no SIGCONT is needed first.
            victim = pick_worker()
            os.kill(victim, signal.SIGSTOP)
            hung_pids.append(victim)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")

    traffic.start()
    started = time.monotonic()
    try:
        while True:
            # Inject BEFORE the duration check: a slow recovery wait
            # can push `elapsed` past `duration`, and every event is
            # scheduled inside 0.7 x duration — so draining the due
            # events first guarantees the whole plan fires even when
            # the box is too loaded to keep the nominal schedule.
            elapsed = time.monotonic() - started
            for event in plan.pop_due(elapsed):
                try:
                    apply_fault(event.kind)
                except Exception as exc:
                    report.driver_errors.append(
                        f"{event.kind}: {type(exc).__name__}: {exc}")
                    continue
                recovery = prober.await_recovery(recovery_timeout)
                if recovery is not None:
                    recovery_hist.labels(event.kind).observe(recovery)
                report.faults.append({
                    "kind": event.kind,
                    "at": round(event.at, 3),
                    "recovery_seconds": (round(recovery, 3)
                                         if recovery is not None
                                         else None),
                })
            if elapsed >= duration:
                break
            time.sleep(0.02)
        traffic.join(timeout=duration + 30.0)
    finally:
        prober.close()
        for pid in hung_pids:
            # Belt and suspenders: normally the fleet probe has long
            # since killed the stopped worker and this is a no-op.
            try:
                os.kill(pid, signal.SIGCONT)
            except (ProcessLookupError, PermissionError):
                pass
        proxy.stop()
        if fleet is not None:
            report.fleet = fleet.describe()
            fleet.stop()
        if thread is not None:
            thread.stop()

    if "error" in loadgen_box:
        report.driver_errors.append(f"loadgen: {loadgen_box['error']}")
    result = loadgen_box.get("result")
    if result is not None:
        report.loadgen = result.as_dict()
        report.wrong_answers += result.wrong_answers
        report.mismatch_samples.extend(result.mismatch_samples[:10])
    report.proxy = {
        "connections_accepted": proxy.connections_accepted,
        "severed": proxy.severed,
        "garbled_chunks": proxy.garbled_chunks,
        "delayed_chunks": proxy.delayed_chunks,
        "bytes_forwarded": proxy.bytes_forwarded,
    }
    report.injected_kernel_faults = (flaky.injected_failures
                                     if flaky is not None else 0)
    for values, child in recovery_hist.series():
        snap = child.snapshot()
        report.recovery[values[0]] = {
            "count": snap["count"],
            "mean_seconds": (snap["sum"] / snap["count"]
                             if snap["count"] else 0.0),
            "p95_seconds": child.percentile(0.95),
            "max_seconds": snap["max"],
            "buckets": snap["buckets"],
        }
    return report


@dataclass
class IsolationReport:
    """Outcome of one cross-tenant isolation soak."""

    seed: int
    scheme: str
    duration_seconds: float
    workers: int
    #: multiple of the quiet baseline p99 tenant B may reach
    p99_limit: float
    #: absolute p99 floor (ms) that absorbs scheduler noise when the
    #: quiet baseline is sub-millisecond
    p99_floor_ms: float
    #: tenant B alone on a quiet fleet (``LoadgenResult.as_dict()``)
    baseline: dict = field(default_factory=dict)
    #: tenant B while A floods and workers die
    victim: dict = field(default_factory=dict)
    #: tenant A driven far past its admission quota
    aggressor: dict = field(default_factory=dict)
    #: ``[{"kind", "at"}, ...]`` process faults applied mid-soak
    faults: list[dict] = field(default_factory=list)
    driver_errors: list = field(default_factory=list)
    #: :meth:`WorkerFleet.describe` snapshot at the end
    fleet: dict = field(default_factory=dict)

    @property
    def victim_p99_bound_ms(self) -> float:
        """What tenant B's contended p99 must stay under."""
        base = self.baseline.get("latency_p99_ms", 0.0)
        return max(self.p99_limit * base, self.p99_floor_ms)

    @property
    def overload_observed(self) -> bool:
        """Tenant A's traffic actually tripped per-tenant admission."""
        codes = self.aggressor.get("error_codes", {})
        return codes.get("overloaded", 0) > 0

    def ok(self) -> bool:
        """The isolation verdict: B correct and fast, A actually shed,
        and nothing broke at the driver level."""
        return (not self.driver_errors
                and self.baseline.get("ok", 0) > 0
                and self.victim.get("ok", 0) > 0
                and self.victim.get("wrong_answers", 1) == 0
                and self.overload_observed
                and (self.victim.get("latency_p99_ms", float("inf"))
                     <= self.victim_p99_bound_ms))

    def as_dict(self) -> dict:
        return {
            "ok": self.ok(),
            "seed": self.seed,
            "scheme": self.scheme,
            "duration_seconds": self.duration_seconds,
            "workers": self.workers,
            "p99_limit": self.p99_limit,
            "p99_floor_ms": self.p99_floor_ms,
            "victim_p99_bound_ms": self.victim_p99_bound_ms,
            "overload_observed": self.overload_observed,
            "baseline": dict(self.baseline),
            "victim": dict(self.victim),
            "aggressor": dict(self.aggressor),
            "faults": list(self.faults),
            "driver_errors": list(self.driver_errors),
            "fleet": dict(self.fleet),
        }

    def summary_lines(self) -> list[str]:
        """Human-readable digest for the CLI."""
        lines = [
            f"tenant isolation soak seed={self.seed} "
            f"scheme={self.scheme} workers={self.workers} "
            f"duration={self.duration_seconds:.1f}s: "
            f"{'PASS' if self.ok() else 'FAIL'}",
            f"  baseline (B quiet): {self.baseline.get('ok', 0)} ok, "
            f"p99 {self.baseline.get('latency_p99_ms', 0.0):.2f}ms",
            f"  victim   (B loud):  {self.victim.get('ok', 0)} ok, "
            f"p99 {self.victim.get('latency_p99_ms', 0.0):.2f}ms "
            f"(bound {self.victim_p99_bound_ms:.2f}ms), "
            f"wrong answers: {self.victim.get('wrong_answers', 0)}",
            f"  aggressor (A):      {self.aggressor.get('ok', 0)} ok, "
            f"{self.aggressor.get('error_codes', {}).get('overloaded', 0)}"
            f" shed by per-tenant admission",
            f"  faults: "
            f"{', '.join(f['kind'] for f in self.faults) or 'none'}",
        ]
        if self.fleet:
            lines.append(
                f"  fleet: {self.fleet.get('workers', 0)} workers, "
                f"{self.fleet.get('restarts', 0)} restarts")
        if self.driver_errors:
            lines.append(f"  driver errors: {self.driver_errors}")
        return lines


def run_tenant_isolation_soak(*, seed: int = 0, duration: float = 4.0,
                              nodes: int = 150,
                              scheme: str = "dual-ii",
                              workers: int = 2,
                              baseline_duration: float = 1.5,
                              victim_connections: int = 4,
                              aggressor_connections: int = 12,
                              pool_size: int = 192,
                              p99_limit: float = 2.0,
                              p99_floor_ms: float = 25.0,
                              worker_kills: int = 2) -> IsolationReport:
    """Prove one tenant's trouble cannot leak into another's answers.

    A :class:`~repro.server.router.WorkerFleet` serves the default
    index plus two named tenants.  ``tenant-a`` gets a deliberately
    tiny admission quota and is then flooded far past it (every shed
    request is an ``overloaded`` error *for A only*); ``tenant-b``
    runs differentially-verified traffic at a gentle rate.  Midway,
    ``worker_kills`` workers are SIGKILLed so B's correctness also
    survives respawn/re-attach churn.  The verdict
    (:meth:`IsolationReport.ok`) requires: A's overload actually
    tripped per-tenant admission, B answered with **zero** wrong
    answers, and B's contended p99 stayed within ``p99_limit`` × its
    quiet baseline (or ``p99_floor_ms``, whichever is larger — the
    floor absorbs scheduler noise when the quiet baseline is
    sub-millisecond).
    """
    edges = 2 * nodes
    graph_default = gnm_random_digraph(nodes, edges, seed=seed)
    graph_a = gnm_random_digraph(nodes, edges, seed=seed + 10)
    graph_b = gnm_random_digraph(nodes, edges, seed=seed + 20)
    index_default = build_index(graph_default, scheme=scheme)
    index_a = build_index(graph_a, scheme=scheme)
    index_b = build_index(graph_b, scheme=scheme)

    rng = random.Random(seed + 1)
    pool_a = [(rng.randrange(nodes), rng.randrange(nodes))
              for _ in range(pool_size)]
    pool_b = [(rng.randrange(nodes), rng.randrange(nodes))
              for _ in range(pool_size)]
    with QueryService(index_a) as direct:
        expected_a = [bool(x) for x in direct.query_batch(pool_a)]
    with QueryService(index_b) as direct:
        expected_b = [bool(x) for x in direct.query_batch(pool_b)]

    report = IsolationReport(seed=seed, scheme=scheme,
                             duration_seconds=duration,
                             workers=workers, p99_limit=p99_limit,
                             p99_floor_ms=p99_floor_ms)
    fleet = WorkerFleet(
        index_default, scheme=scheme, workers=workers,
        server_options=dict(max_delay=0.001, policy="shed",
                            request_timeout=5.0, drain_timeout=2.0),
        tenants=[
            # A's quota is far below what the aggressor sends, so the
            # per-tenant gate (not the shared batcher) does the
            # shedding.  The rate quota (tokens are per worker) makes
            # the overload deterministic even when the kernel drains
            # pending pairs instantly.
            {"name": "tenant-a", "index": index_a, "scheme": scheme,
             "quota": {"rate": 150.0, "burst": 50,
                       "max_pending": 256}},
            {"name": "tenant-b", "index": index_b, "scheme": scheme},
        ],
        probe_interval=0.25, probe_timeout=1.5)
    fleet.start()
    fault_rng = random.Random(seed + 2)
    try:
        port = fleet.port
        baseline = run_loadgen(
            "127.0.0.1", port, pool_b,
            connections=victim_connections,
            duration=baseline_duration, pipeline=4, batch_size=4,
            expected=expected_b, index="tenant-b")
        report.baseline = baseline.as_dict()

        mix_box: dict[str, Any] = {}

        def drive() -> None:
            try:
                mix_box["results"] = run_loadgen_mix(
                    "127.0.0.1", port, [
                        # Paced several-fold past A's admission rate:
                        # the quota sheds most of it, proving per-
                        # tenant overload, without the open-loop
                        # hot-spin (instant shed reply -> instant
                        # resend) that would measure host CPU
                        # saturation instead of admission isolation.
                        {"pairs": pool_a, "expected": expected_a,
                         "index": "tenant-a",
                         "connections": aggressor_connections,
                         "pipeline": 8, "batch_size": 16,
                         "rate": 1200.0},
                        {"pairs": pool_b, "expected": expected_b,
                         "index": "tenant-b",
                         "connections": victim_connections,
                         "pipeline": 4, "batch_size": 4},
                    ], duration=duration)
            except Exception as exc:
                mix_box["error"] = f"{type(exc).__name__}: {exc}"

        traffic = threading.Thread(target=drive,
                                   name="isolation-loadgen",
                                   daemon=True)
        traffic.start()
        # SIGKILL workers at evenly spaced points inside the first
        # ~70% of the window, leaving room for the respawn to land.
        kill_at = [duration * 0.7 * (i + 1) / (worker_kills + 1)
                   for i in range(worker_kills)]
        started = time.monotonic()
        for at in kill_at:
            delay = at - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            try:
                pids = fleet.pids()
                if not pids:
                    raise RuntimeError("no live worker to kill")
                os.kill(fault_rng.choice(pids), signal.SIGKILL)
                report.faults.append({"kind": "worker_kill",
                                      "at": round(at, 3)})
            except Exception as exc:
                report.driver_errors.append(
                    f"worker_kill: {type(exc).__name__}: {exc}")
        traffic.join(timeout=duration + 30.0)
        if traffic.is_alive():
            report.driver_errors.append("loadgen mix did not finish")
        if "error" in mix_box:
            report.driver_errors.append(f"loadgen: {mix_box['error']}")
        results = mix_box.get("results")
        if results is not None:
            report.aggressor = results[0].as_dict()
            report.victim = results[1].as_dict()
    finally:
        report.fleet = fleet.describe()
        fleet.stop()
    return report


@dataclass
class CrashRestartReport:
    """Outcome of one crash-restart soak (the power-loss prover)."""

    seed: int
    cycles: int
    workers: int
    recovery_timeout: float
    checkpoint_interval: int
    #: one row per kill/restart cycle: ``{"cycle", "mutation",
    #: "acked", "outcome" ("pre"/"post"), "recovery_seconds",
    #: "durable_recovery_seconds"}``
    restarts: list = field(default_factory=list)
    #: differential mismatches (prober stream + per-cycle batches)
    wrong_answers: int = 0
    mismatch_samples: list = field(default_factory=list)
    #: cycles whose recovered catalog matched *neither* the pre- nor
    #: the post-mutation state (the atomicity contract broke)
    atomicity_violations: list = field(default_factory=list)
    #: acknowledged mutations that were not durable after the restart
    lost_acks: list = field(default_factory=list)
    driver_errors: list = field(default_factory=list)
    #: restart-grace prober stream totals: ``{"checked", "wrong"}``
    prober: dict = field(default_factory=dict)
    #: client-observed restart-to-ready distribution, from a local
    #: ``reach_recovery_seconds`` histogram
    #: (:data:`repro.obs.metrics.RECOVERY_BUCKETS`)
    recovery: dict = field(default_factory=dict)
    #: offline state-dir replay after the final shutdown:
    #: ``{"journal_records", "journal_bytes", "entries",
    #: "artifacts", "orphan_artifacts", "model_matches"}``
    hygiene: dict = field(default_factory=dict)
    #: the server's ``reach_recovery_seconds`` metric was observed in
    #: its exposition after a restart
    server_metric_seen: bool = False
    #: flight-recorder dumps left under ``<state-dir>/flightrec``:
    #: ``{"dumps", "events", "unparseable", "prior_dumps",
    #: "covering", "tail"}`` — ``prior_dumps`` are the archived
    #: current-files of SIGKILLed incarnations, ``covering`` means at
    #: least one of them captured its incarnation's boot (the pre-kill
    #: window survived the power loss), ``tail`` is the newest such
    #: dump's last events
    flight: dict = field(default_factory=dict)

    @property
    def unrecovered(self) -> list[int]:
        """Cycles whose restart never reached ``ready`` in bound."""
        return [r["cycle"] for r in self.restarts
                if r["recovery_seconds"] is None]

    def ok(self) -> bool:
        """The soak verdict: every restart recovered in bound, every
        mutation was atomic, no acknowledged mutation was lost, zero
        wrong answers, and the state dir ended hygienic."""
        return (len(self.restarts) >= self.cycles
                and not self.unrecovered
                and not self.atomicity_violations
                and not self.lost_acks
                and not self.driver_errors
                and self.wrong_answers == 0
                and self.server_metric_seen
                and self.hygiene.get("orphan_artifacts", [None]) == []
                and self.hygiene.get("model_matches") is True
                and self.hygiene.get("journal_records",
                                     self.checkpoint_interval + 1)
                <= self.checkpoint_interval
                # Empty dict = a synthetic report (unit tests);
                # the real soak always populates `flight`.
                and not self.flight.get("unparseable")
                and self.flight.get("covering", True))

    def as_dict(self) -> dict:
        return {
            "ok": self.ok(),
            "seed": self.seed,
            "cycles": self.cycles,
            "workers": self.workers,
            "recovery_timeout": self.recovery_timeout,
            "checkpoint_interval": self.checkpoint_interval,
            "restarts": list(self.restarts),
            "unrecovered": self.unrecovered,
            "wrong_answers": self.wrong_answers,
            "mismatch_samples": list(self.mismatch_samples),
            "atomicity_violations": list(self.atomicity_violations),
            "lost_acks": list(self.lost_acks),
            "driver_errors": list(self.driver_errors),
            "prober": dict(self.prober),
            "recovery": dict(self.recovery),
            "hygiene": dict(self.hygiene),
            "server_metric_seen": self.server_metric_seen,
            "flight": dict(self.flight),
        }

    def summary_lines(self) -> list[str]:
        """Human-readable digest for the CLI."""
        target = (f"fleet of {self.workers} workers" if self.workers
                  else "single server")
        lines = [
            f"crash-restart soak seed={self.seed} "
            f"cycles={len(self.restarts)}/{self.cycles} ({target}): "
            f"{'PASS' if self.ok() else 'FAIL'}",
        ]
        acked = sum(1 for r in self.restarts if r["acked"])
        post = sum(1 for r in self.restarts
                   if r["outcome"] == "post")
        lines.append(
            f"  mutations: {len(self.restarts)} killed mid-flight "
            f"({acked} acked, {post} recovered post-state, "
            f"{len(self.restarts) - post} rolled back to pre-state)")
        if self.atomicity_violations:
            lines.append(
                f"  ATOMICITY VIOLATIONS: {self.atomicity_violations}")
        if self.lost_acks:
            lines.append(f"  LOST ACKS: {self.lost_acks}")
        rec = [r["recovery_seconds"] for r in self.restarts
               if r["recovery_seconds"] is not None]
        if rec:
            lines.append(
                f"  recovery: worst {max(rec):.2f}s, mean "
                f"{sum(rec) / len(rec):.2f}s over {len(rec)} restarts "
                f"(bound {self.recovery_timeout:.0f}s; "
                f"reach_recovery_seconds histogram in the report)")
        if self.unrecovered:
            lines.append(f"  NOT RECOVERED: cycles {self.unrecovered}")
        lines.append(
            f"  wrong answers: {self.wrong_answers} "
            f"(prober checked {self.prober.get('checked', 0)} batches "
            f"across restarts)"
            + (f"  samples: {self.mismatch_samples[:3]}"
               if self.mismatch_samples else ""))
        hygiene = self.hygiene
        if hygiene:
            lines.append(
                f"  hygiene: {hygiene.get('journal_records')} journal "
                f"records ({hygiene.get('journal_bytes')} bytes), "
                f"{hygiene.get('artifacts')} artifacts, "
                f"{len(hygiene.get('orphan_artifacts', []))} orphans, "
                f"catalog matches model: "
                f"{hygiene.get('model_matches')}")
        flight = self.flight
        if flight:
            lines.append(
                f"  flight recorder: {flight.get('dumps', 0)} dumps "
                f"on disk ({flight.get('events', 0)} events, "
                f"{flight.get('prior_dumps', 0)} from killed "
                f"incarnations), pre-kill window covered: "
                f"{flight.get('covering')}"
                + (f", UNPARSEABLE: {flight['unparseable']}"
                   if flight.get("unparseable") else ""))
            for event in flight.get("tail", []):
                detail = " ".join(
                    f"{k}={v}" for k, v in event.items()
                    if k not in ("seq", "ts", "kind"))
                lines.append(f"    pre-kill seq={event.get('seq')} "
                             f"{event.get('kind')}"
                             + (f" {detail}" if detail else ""))
        if self.driver_errors:
            lines.append(f"  driver errors: {self.driver_errors}")
        return lines


class _RestartProber:
    """Background differential stream that rides through restarts.

    A restart-grace client keeps querying the default index across
    kill/recover cycles; transport errors are expected (lost is not
    wrong), but every answer that *arrives* must match the direct
    in-process truth.
    """

    def __init__(self, host: str, port: int, pairs: list,
                 expected: list, report: CrashRestartReport,
                 grace: float) -> None:
        self._pairs = [list(p) for p in pairs]
        self._expected = [bool(x) for x in expected]
        self._report = report
        self._client = ReachClient(
            host, port,
            retry=RetryPolicy(max_attempts=2, attempt_timeout=2.0,
                              base_delay=0.02, max_delay=0.2,
                              breaker_threshold=0,
                              restart_grace=grace, seed=0))
        self.checked = 0
        self.wrong = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="crash-prober",
                                        daemon=True)

    def start(self) -> "_RestartProber":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                answers = self._client.query_batch(self._pairs)
            except (ReproError, ConnectionError, OSError):
                time.sleep(0.05)
                continue
            self.checked += 1
            if answers != self._expected:
                self.wrong += 1
                if len(self._report.mismatch_samples) < 10:
                    self._report.mismatch_samples.append(
                        ("prober", answers, self._expected))
            time.sleep(0.02)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._client.close()


def run_crash_restart_soak(*, seed: int = 0, cycles: int = 20,
                           nodes: int = 100, scheme: str = "dual-i",
                           workers: int = 0,
                           recovery_timeout: float = 30.0,
                           checkpoint_interval: int = 4,
                           retain_generations: int = 2,
                           kill_window: float = 0.25,
                           workdir: "Path | str | None" = None,
                           ) -> CrashRestartReport:
    """SIGKILL ``serve --state-dir`` mid-mutation, restart, verify.

    Each cycle issues one randomized catalog mutation (default
    ``reload``, tenant ``create``/``build``/``drop``) against a *real*
    server subprocess, SIGKILLs its whole process group at a random
    point inside ``kill_window`` seconds — which lands kills
    mid-mutation, mid-journal-append, mid-checkpoint, and
    mid-manifest-swap across a run — restarts onto the same state dir,
    and checks the recovered catalog against the bookkeeping model:

    * **Atomicity** — the catalog matches exactly the pre- or the
      post-mutation state, never a torn hybrid.
    * **No lost acks** — a mutation the client saw acknowledged is
      always post-state (the journal fsync precedes the ack).
    * **Zero wrong answers** — a restart-grace differential stream
      (:class:`_RestartProber`) and a per-cycle verification batch
      must agree with the direct in-process answers on both sides of
      every restart.
    * **Bounded recovery** — every restart reaches ``ready`` within
      ``recovery_timeout`` seconds; client-observed restart-to-ready
      times land in a ``reach_recovery_seconds`` histogram, and the
      server's own exposition must carry its boot-recovery observation
      under the same metric name.

    After the final cycle the server is shut down gracefully and the
    state dir is replayed offline: the journal must be bounded by
    ``checkpoint_interval`` records, every artifact must belong to a
    live entry's retained generation window, and the recovered entries
    must equal the converged model.  ``<state-dir>/flightrec`` is then
    scanned: every flight-recorder dump the killed incarnations left
    behind must parse with ordered sequences, and at least one
    archived pre-kill window must cover its incarnation's boot.

    ``workers >= 1`` runs the same soak against a ``--workers`` fleet
    (the parent recovers once and republishes ``/dev/shm`` segments;
    SIGKILLing the process group takes down parent and workers
    together, exactly like a machine power loss).
    """
    import socket as socket_mod
    import subprocess
    import sys
    import tempfile

    from repro.graph.io import write_edge_list
    from repro.server.durability import DurableState, INDEX_DIR

    base = Path(workdir) if workdir is not None else Path(
        tempfile.mkdtemp(prefix="repro-crash-"))
    base.mkdir(parents=True, exist_ok=True)
    state_dir = base / "state"
    graph_path = base / "default.edges"
    tenant_graph_path = base / "tenant.edges"

    edges = 2 * nodes
    graph = gnm_random_digraph(nodes, edges, seed=seed)
    tenant_graph = gnm_random_digraph(nodes, edges, seed=seed + 10)
    write_edge_list(graph, graph_path)
    write_edge_list(tenant_graph, tenant_graph_path)

    index = build_index(graph, scheme=scheme)
    tenant_index = build_index(tenant_graph, scheme=scheme)
    rng = random.Random(seed + 1)
    pool = [(rng.randrange(nodes), rng.randrange(nodes))
            for _ in range(64)]
    with QueryService(index) as direct:
        expected = [bool(a) for a in direct.query_batch(pool)]
    with QueryService(tenant_index) as direct:
        tenant_expected = [bool(a) for a in direct.query_batch(pool)]

    probe = socket_mod.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    report = CrashRestartReport(seed=seed, cycles=cycles,
                                workers=workers,
                                recovery_timeout=recovery_timeout,
                                checkpoint_interval=checkpoint_interval)
    registry = MetricsRegistry()
    recovery_hist = registry.histogram(
        "reach_recovery_seconds",
        "Client-observed seconds from restart launch to ready",
        buckets=RECOVERY_BUCKETS)

    argv = [sys.executable, "-m", "repro.cli", "serve",
            str(graph_path), "--host", "127.0.0.1",
            "--port", str(port), "--scheme", scheme,
            "--state-dir", str(state_dir),
            "--state-checkpoint-interval", str(checkpoint_interval),
            "--state-retain", str(retain_generations)]
    if workers:
        argv += ["--workers", str(workers)]
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    log_path = base / "server.log"

    def launch() -> subprocess.Popen:
        # A fresh session/process group so one killpg() takes down the
        # server *and* (in fleet mode) every worker — daemonized
        # multiprocessing children survive a plain parent SIGKILL.
        with open(log_path, "ab") as log:
            return subprocess.Popen(argv, env=env,
                                    start_new_session=True,
                                    stdout=log, stderr=log)

    def kill(proc: subprocess.Popen) -> None:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait()

    def wait_ready() -> "tuple[float | None, dict | None]":
        """Client-observed seconds until ``ready``, plus the durable
        block of the ready snapshot (``None, None`` on timeout)."""
        started = time.monotonic()
        deadline = started + recovery_timeout
        client = ReachClient(
            "127.0.0.1", port,
            retry=RetryPolicy(max_attempts=1, attempt_timeout=2.0,
                              breaker_threshold=0, seed=0))
        try:
            while time.monotonic() < deadline:
                try:
                    doc = client.ready()
                except (ReproError, ConnectionError, OSError):
                    time.sleep(0.1)
                    continue
                if doc.get("ready"):
                    return time.monotonic() - started, \
                        doc.get("durable")
                time.sleep(0.05)
        finally:
            client.close()
        return None, None

    def rows() -> dict:
        """Actual catalog as ``{name: (generation, loaded)}``."""
        with ReachClient("127.0.0.1", port, timeout=30.0) as client:
            table = client.catalog_list()
        return {row["name"]: (row["generation"], row["loaded"])
                for row in table}

    mut_rng = random.Random(seed + 2)
    proc = launch()
    prober: "_RestartProber | None" = None
    churn_counter = 0
    try:
        elapsed, _ = wait_ready()
        if elapsed is None:
            report.driver_errors.append("initial boot never ready")
            return report
        model = rows()  # {"default": (1, True)} on a fresh state dir
        prober = _RestartProber(
            "127.0.0.1", port, pool[:16], expected[:16], report,
            grace=recovery_timeout + kill_window + 5.0).start()

        for cycle in range(cycles):
            tenants = sorted(n for n in model if n != "default")
            kinds = ["reload", "create"]
            if tenants:
                kinds += ["build", "drop"]
            kind = mut_rng.choice(kinds)
            post = dict(model)
            if kind == "reload":
                fields = {"verb": "reload", "graph": str(graph_path)}
                post["default"] = (model["default"][0] + 1, True)
            elif kind == "create":
                churn_counter += 1
                name = f"churn{churn_counter}"
                fields = {"verb": "catalog", "op": "create",
                          "name": name, "scheme": scheme}
                post[name] = (0, False)
            elif kind == "build":
                name = mut_rng.choice(tenants)
                fields = {"verb": "catalog", "op": "build",
                          "name": name,
                          "graph": str(tenant_graph_path)}
                post[name] = (model[name][0] + 1, True)
            else:
                name = mut_rng.choice(tenants)
                fields = {"verb": "catalog", "op": "drop",
                          "name": name}
                post.pop(name)

            box: dict[str, Any] = {}

            def mutate() -> None:
                try:
                    with ReachClient("127.0.0.1", port,
                                     timeout=20.0) as client:
                        verb = fields.pop("verb")
                        box["reply"] = client.call(verb, **fields)
                except Exception as exc:
                    box["error"] = f"{type(exc).__name__}: {exc}"

            mutator = threading.Thread(target=mutate, daemon=True)
            mutator.start()
            # Squared-uniform delay: biased toward early kills, which
            # land mid-mutation (journal append, artifact save,
            # checkpoint) instead of after the ack.
            time.sleep(kill_window * mut_rng.random() ** 2)
            kill(proc)
            mutator.join(timeout=30.0)
            acked = "reply" in box

            proc = launch()
            elapsed, durable = wait_ready()
            if elapsed is None:
                report.driver_errors.append(
                    f"cycle {cycle}: not ready within "
                    f"{recovery_timeout}s after restart")
                report.restarts.append({
                    "cycle": cycle, "mutation": kind, "acked": acked,
                    "outcome": "unrecovered",
                    "recovery_seconds": None,
                    "durable_recovery_seconds": None})
                break
            recovery_hist.observe(elapsed)
            actual = rows()
            if actual == post:
                outcome = "post"
            elif actual == model:
                outcome = "pre"
            else:
                outcome = "torn"
                report.atomicity_violations.append(
                    {"cycle": cycle, "mutation": kind,
                     "pre": model, "post": post, "actual": actual})
            if acked and outcome != "post":
                report.lost_acks.append(
                    {"cycle": cycle, "mutation": kind,
                     "outcome": outcome})
            report.restarts.append({
                "cycle": cycle, "mutation": kind, "acked": acked,
                "outcome": outcome,
                "recovery_seconds": round(elapsed, 3),
                "durable_recovery_seconds": (
                    durable or {}).get("recovery_seconds")})
            model = actual

            # Differential verification on both planes of the restart:
            # the default index always, plus one loaded tenant if any.
            with ReachClient("127.0.0.1", port, timeout=30.0) as c:
                answers = c.query_batch(pool)
                if answers != expected:
                    report.wrong_answers += 1
                    if len(report.mismatch_samples) < 10:
                        report.mismatch_samples.append(
                            ("default", cycle, answers))
                loaded = [n for n, (_, ok_) in model.items()
                          if ok_ and n != "default"]
                if loaded:
                    t_answers = c.query_batch(
                        pool, index=mut_rng.choice(loaded))
                    if t_answers != tenant_expected:
                        report.wrong_answers += 1
                        if len(report.mismatch_samples) < 10:
                            report.mismatch_samples.append(
                                ("tenant", cycle, t_answers))
                if not report.server_metric_seen:
                    exposition = c.metrics().get("exposition", "")
                    report.server_metric_seen = \
                        "reach_recovery_seconds" in exposition
    finally:
        if prober is not None:
            prober.stop()
            report.prober = {"checked": prober.checked,
                             "wrong": prober.wrong}
            report.wrong_answers += prober.wrong
        # Graceful shutdown (SIGINT = ctrl-c): the serve loop's
        # finally block checkpoints and closes the journal.
        try:
            os.killpg(proc.pid, signal.SIGINT)
        except ProcessLookupError:
            pass
        try:
            proc.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            kill(proc)

    snap = recovery_hist.snapshot()
    report.recovery["restart_to_ready"] = {
        "count": snap["count"],
        "mean_seconds": (snap["sum"] / snap["count"]
                         if snap["count"] else 0.0),
        "p95_seconds": recovery_hist.percentile(0.95),
        "max_seconds": snap["max"],
        "buckets": snap["buckets"],
    }

    # Offline hygiene replay: bounded journal, no orphan artifacts,
    # and the durable catalog equals the converged model.
    try:
        state = DurableState(state_dir,
                             checkpoint_interval=checkpoint_interval,
                             retain_generations=retain_generations)
        state.recover()
        status = state.status()
        entries = {e.name: e for e in state.entries()}
        orphans = []
        for child in sorted((state_dir / INDEX_DIR).iterdir()):
            if ".corrupt" in child.name or child.is_dir():
                continue
            stem = child.name[:-len(".json")]
            name, _, gen_text = stem.rpartition("-g")
            entry = entries.get(name)
            if entry is None or not gen_text.isdigit() \
                    or not (entry.generation - retain_generations
                            < int(gen_text) <= entry.generation):
                orphans.append(child.name)
        durable_rows = {e.name: e.generation for e in entries.values()}
        model_rows = {n: g for n, (g, _) in model.items()}
        report.hygiene = {
            "journal_records": status["journal_records"],
            "journal_bytes": status["journal_bytes"],
            "entries": status["entries"],
            "artifacts": status["artifacts"],
            "orphan_artifacts": orphans,
            "model_matches": durable_rows == model_rows,
        }
        state.close()
    except Exception as exc:
        report.driver_errors.append(
            f"hygiene: {type(exc).__name__}: {exc}")

    # Flight-recorder forensics: the spiller keeps each incarnation's
    # current dump at most one interval stale, and every restart
    # archives the SIGKILLed incarnation's file to `-prior-N` — so
    # after the soak the pre-kill windows must be on disk, parseable,
    # and sequence-ordered (load_dump rejects disorder).
    try:
        from repro.obs.flight import scan_dumps

        dumps = scan_dumps(str(state_dir / "flightrec"))
        unparseable = [d["path"] for d in dumps if d.get("error")]
        prior = [d for d in dumps
                 if "-prior-" in os.path.basename(d["path"])]
        booted = ("server_start", "fleet_start")
        covering = any(
            any(e.get("kind") in booted for e in d["events"])
            for d in prior)
        tail = prior[-1]["events"][-3:] if prior else []
        report.flight = {
            "dumps": len(dumps),
            "events": sum(len(d["events"]) for d in dumps),
            "unparseable": unparseable,
            "prior_dumps": len(prior),
            "covering": covering,
            "tail": tail,
        }
    except Exception as exc:
        report.driver_errors.append(
            f"flight: {type(exc).__name__}: {exc}")
    return report
