"""Fault-injection and chaos-testing utilities for the serving stack.

This package is the adversary the resilience features are tested
against.  :mod:`repro.testing.faults` provides the individual fault
injectors — a deterministic seeded :class:`~repro.testing.faults.FaultPlan`,
a chaos TCP proxy that can sever/delay/garble/blackhole live
connections, a :class:`~repro.testing.faults.FlakyService` that raises
injected exceptions inside kernel calls (and therefore inside
MicroBatcher flushes), and a kill-the-process-mid-save driver for
crash-safety checks.  :mod:`repro.testing.chaos` composes them into the
end-to-end chaos soak: a live server plus load generator under a
scheduled fault sequence, gated on *zero wrong answers* and bounded
recovery time.

Everything here is dependency-free stdlib and safe to import in
production code paths (nothing is injected unless explicitly armed).
"""

from repro.testing.faults import (
    ChaosProxy,
    FaultEvent,
    FaultPlan,
    FlakyService,
    run_kill_during_save,
)

__all__ = [
    "ChaosProxy",
    "FaultEvent",
    "FaultPlan",
    "FlakyService",
    "run_kill_during_save",
]
