"""Fault injectors for the serving stack.

Four independent adversaries, composable by the chaos soak
(:mod:`repro.testing.chaos`) and usable one-at-a-time in unit tests:

* :class:`FaultPlan` — a seeded, fully deterministic schedule of
  :class:`FaultEvent`\\ s; the soak replays the same fault sequence for
  the same seed, so chaos failures reproduce.
* :class:`ChaosProxy` — a threaded TCP proxy between client and server
  that can sever every live connection, inject per-chunk delay spikes,
  XOR-garble bytes on the wire, or blackhole traffic for a while.  The
  server and client under test are real sockets talking through it;
  nothing is mocked.
* :class:`FlakyService` — wraps a
  :class:`~repro.core.service.QueryService` and raises armed exceptions
  from ``query_batch``, i.e. inside the gateway's MicroBatcher flush /
  kernel call path.
* :func:`run_kill_during_save` — spawns a subprocess that saves an
  index in a loop and SIGKILLs it at seeded random offsets, the
  crash-safety counterpart to :func:`repro.core.serialize.save_dual_index`'s
  atomic-rename contract.

Everything is stdlib-only and seeded; no injector does anything until
explicitly armed.
"""

from __future__ import annotations

import os
import random
import select
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "ChaosProxy",
    "FaultEvent",
    "FaultPlan",
    "FlakyService",
    "run_kill_during_save",
]


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    at:
        Seconds from the start of the run.
    kind:
        Free-form fault name the driver dispatches on (e.g. ``sever``,
        ``flush_error``, ``reload_corrupt``).
    param:
        Optional kind-specific payload (a delay, a count, ...).
    """

    at: float
    kind: str
    param: Any = None


@dataclass
class FaultPlan:
    """A time-ordered fault schedule, consumed as the clock advances.

    Either construct one explicitly from events or draw a deterministic
    random plan with :meth:`random` — two plans built from the same
    arguments are identical, which is what makes a chaos failure
    replayable from its seed.
    """

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at)

    @classmethod
    def random(cls, *, seed: int, duration: float,
               kinds: Sequence[str], count: int,
               start: float = 0.0) -> "FaultPlan":
        """``count`` faults drawn uniformly over ``[start, duration)``.

        Every kind in ``kinds`` appears at least once when
        ``count >= len(kinds)`` (the remainder is drawn uniformly), so
        a soak asking for N fault types actually exercises all N.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if not kinds:
            raise ValueError("kinds must be non-empty")
        rng = random.Random(seed)
        chosen = list(kinds)[:count]
        chosen += [rng.choice(list(kinds))
                   for _ in range(count - len(chosen))]
        rng.shuffle(chosen)
        span = max(0.0, duration - start)
        events = [FaultEvent(at=start + rng.random() * span, kind=kind)
                  for kind in chosen]
        return cls(events)

    def pop_due(self, elapsed: float) -> list[FaultEvent]:
        """Remove and return every event scheduled at or before
        ``elapsed`` seconds."""
        due = [event for event in self.events if event.at <= elapsed]
        if due:
            self.events = self.events[len(due):]
        return due

    @property
    def remaining(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# Chaos TCP proxy
# ---------------------------------------------------------------------------

class _Pipe:
    """One proxied connection: client socket + upstream socket."""

    def __init__(self, client: socket.socket,
                 upstream: socket.socket) -> None:
        self.client = client
        self.upstream = upstream
        self.closed = False

    def close(self) -> None:
        self.closed = True
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A controllable TCP proxy in front of a real server.

    Forwards byte-for-byte between clients and ``upstream`` until told
    to misbehave:

    * :meth:`sever_all` — hard-close every live proxied connection
      (clients see a reset / EOF mid-flight);
    * :meth:`spike_delay` — add per-chunk latency for a while;
    * :meth:`garble_next` — XOR-corrupt the next ``n`` forwarded
      chunks (either direction), simulating wire damage;
    * :meth:`blackhole` — hold all traffic for a while (stall, not
      drop), simulating a network partition that heals.

    The proxy runs on background threads (one acceptor plus two pump
    threads per connection); :meth:`stop` tears everything down.
    Counters (``connections_accepted``, ``severed``, ``garbled_chunks``,
    ``delayed_chunks``, ``bytes_forwarded``) let tests assert a fault
    actually happened.
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 host: str = "127.0.0.1") -> None:
        self._upstream = (upstream_host, upstream_port)
        self._host = host
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._pipes: set[_Pipe] = set()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._stopping = False
        # Armed faults.
        self._delay = 0.0
        self._delay_until = 0.0
        self._garble_budget = 0
        self._blackhole_until = 0.0
        # Counters.
        self.connections_accepted = 0
        self.severed = 0
        self.garbled_chunks = 0
        self.delayed_chunks = 0
        self.bytes_forwarded = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, 0))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    @property
    def port(self) -> int:
        assert self._listener is not None, "proxy not started"
        return self._listener.getsockname()[1]

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            pipes = list(self._pipes)
        for pipe in pipes:
            pipe.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- fault controls -------------------------------------------------
    def sever_all(self) -> int:
        """Hard-close every live proxied connection; returns how many."""
        with self._lock:
            pipes = list(self._pipes)
            self._pipes.clear()
        for pipe in pipes:
            pipe.close()
        self.severed += len(pipes)
        return len(pipes)

    def spike_delay(self, delay: float, duration: float) -> None:
        """Add ``delay`` seconds to every forwarded chunk for the next
        ``duration`` seconds."""
        self._delay = delay
        self._delay_until = time.monotonic() + duration

    def garble_next(self, chunks: int = 1) -> None:
        """XOR-corrupt the next ``chunks`` forwarded chunks."""
        self._garble_budget += chunks

    def blackhole(self, duration: float) -> None:
        """Stall all forwarding for ``duration`` seconds (traffic is
        delivered late, not dropped — a healing partition)."""
        self._blackhole_until = time.monotonic() + duration

    # -- internals ------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self._upstream,
                                                    timeout=5.0)
            except OSError:
                client.close()
                continue
            self.connections_accepted += 1
            pipe = _Pipe(client, upstream)
            with self._lock:
                self._pipes.add(pipe)
            for src, dst in ((client, upstream), (upstream, client)):
                thread = threading.Thread(
                    target=self._pump, args=(pipe, src, dst),
                    name="chaos-proxy-pump", daemon=True)
                thread.start()
                self._threads.append(thread)

    def _pump(self, pipe: _Pipe, src: socket.socket,
              dst: socket.socket) -> None:
        try:
            while not pipe.closed and not self._stopping:
                # select() so a close from the other side wakes us.
                try:
                    ready, _, _ = select.select([src], [], [], 0.25)
                except (OSError, ValueError):
                    break
                if not ready:
                    continue
                try:
                    chunk = src.recv(1 << 16)
                except OSError:
                    break
                if not chunk:
                    break
                now = time.monotonic()
                if now < self._blackhole_until:
                    # Re-check as we wait: blackhole(0) heals at once.
                    while (not pipe.closed and not self._stopping
                           and time.monotonic() < self._blackhole_until):
                        time.sleep(0.02)
                    if pipe.closed or self._stopping:
                        break
                elif now < self._delay_until and self._delay > 0:
                    self.delayed_chunks += 1
                    time.sleep(self._delay)
                if self._garble_budget > 0:
                    self._garble_budget -= 1
                    self.garbled_chunks += 1
                    chunk = bytes(b ^ 0x5A for b in chunk)
                # Count before sendall: a receiver that already saw the
                # bytes must also see the counter (tests read it right
                # after recv()).
                self.bytes_forwarded += len(chunk)
                try:
                    dst.sendall(chunk)
                except OSError:
                    break
        finally:
            pipe.close()
            with self._lock:
                self._pipes.discard(pipe)


# ---------------------------------------------------------------------------
# In-process kernel fault injection
# ---------------------------------------------------------------------------

class FlakyService:
    """A :class:`~repro.core.service.QueryService` wrapper that raises
    armed exceptions from ``query_batch``.

    Because the gateway evaluates every micro-batch through
    ``query_batch``, arming this wrapper injects failures exactly where
    they hurt: inside MicroBatcher flushes and kernel calls.  Pass it
    (or a wrapping callable) as ``ServerConfig.service_wrapper`` so hot
    swaps stay flaky — a ``reload`` builds a fresh inner service, and
    the wrapper re-wraps it.

    Everything else delegates to the wrapped service, so the gateway
    cannot tell the difference until a fault fires.
    """

    def __init__(self, inner: Any) -> None:
        self._inner = inner
        self._armed = 0
        self._exc_type: type[Exception] = RuntimeError
        self._lock = threading.Lock()
        #: faults actually raised so far
        self.injected_failures = 0

    def fail_next(self, n: int = 1, *,
                  exc_type: type[Exception] = RuntimeError) -> None:
        """Arm the next ``n`` ``query_batch`` calls to raise
        ``exc_type``."""
        with self._lock:
            self._armed += n
            self._exc_type = exc_type

    @property
    def armed(self) -> int:
        return self._armed

    def rewrap(self, inner: Any) -> "FlakyService":
        """``service_wrapper`` hook: adopt a freshly reloaded inner
        service, keeping the armed state and counters."""
        self._inner = inner
        return self

    def query_batch(self, pairs: Any) -> Any:
        with self._lock:
            fire = self._armed > 0
            if fire:
                self._armed -= 1
                self.injected_failures += 1
                exc_type = self._exc_type
        if fire:
            raise exc_type(
                "injected kernel fault (FlakyService.fail_next)")
        return self._inner.query_batch(pairs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __enter__(self) -> "FlakyService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._inner.close()


# ---------------------------------------------------------------------------
# Kill-during-save
# ---------------------------------------------------------------------------

_SAVE_LOOP_SCRIPT = """
import sys
from repro.core.dual_i import DualIIndex
from repro.core.serialize import save_dual_index
from repro.graph.generators import gnm_random_digraph

path, nodes, edges, seed = (sys.argv[1], int(sys.argv[2]),
                            int(sys.argv[3]), int(sys.argv[4]))
index = DualIIndex.build(gnm_random_digraph(nodes, edges, seed=seed))
print("ready", flush=True)
while True:
    save_dual_index(index, path)
"""


def run_kill_during_save(path: Any, *, nodes: int = 120,
                         edges: int = 240, seed: int = 0,
                         kills: int = 3,
                         delay_range: tuple = (0.0, 0.08)) -> dict:
    """SIGKILL a subprocess mid-``save_dual_index``, repeatedly.

    The subprocess builds a small index, reports readiness, then saves
    it to ``path`` in a tight loop; this driver kills it ``kills``
    times at seeded random offsets after readiness.  With the atomic
    tmp-file/rename protocol the kill either lands before the rename
    (``path`` keeps its previous content) or after (``path`` holds the
    complete new document) — callers assert ``path`` still loads and no
    ``*.tmp`` siblings survive past the last kill.

    Returns a summary dict: ``kills`` performed, leftover ``tmp_files``
    next to ``path`` (orphans from SIGKILL between create and rename —
    allowed by the contract, but the target file itself must be whole),
    and the ``delays`` used (deterministic for a given ``seed``).
    """
    target = Path(path)
    rng = random.Random(seed)
    delays = [rng.uniform(*delay_range) for _ in range(kills)]
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    for delay in delays:
        proc = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent(_SAVE_LOOP_SCRIPT),
             str(target), str(nodes), str(edges), str(seed)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env)
        try:
            assert proc.stdout is not None
            banner = proc.stdout.readline()
            if "ready" not in banner:
                raise RuntimeError(
                    f"save-loop subprocess failed to start: {banner!r}")
            time.sleep(delay)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
            if proc.stdout is not None:
                proc.stdout.close()
    tmp_files = sorted(
        str(p) for p in target.parent.glob(target.name + ".*.tmp"))
    return {"kills": kills, "delays": delays, "tmp_files": tmp_files}
