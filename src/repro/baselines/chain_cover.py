"""Chain-cover compressed transitive closure (Jagadish 1990 style).

An extension baseline from the same research line the paper builds on:
decompose the DAG into ``k`` chains (paths along graph edges), then for
each node store, per chain, the *smallest position in that chain it can
reach*.  Because consecutive chain nodes are joined by real edges,
reaching position ``p`` of a chain implies reaching every later
position, so

    ``u ⇝ v  ⇔  first_reach[u][chain(v)] <= pos(v)``

— an O(1) query against an ``n × k`` matrix.  Space/build are
``O(n·k)``; ``k`` is small for shallow-wide DAGs and approaches the
DAG's antichain width in the worst case (Dilworth), which is where this
scheme loses to dual labeling on general sparse graphs.

Chains are built greedily: walk the topological order; each unassigned
node starts a chain, repeatedly extended by an unassigned successor.
Not a minimum chain cover (that needs bipartite matching) but within
the same order on the paper's workloads, and deterministic.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.base import INT_BYTES, IndexStats, ReachabilityIndex, register_scheme
from repro.exceptions import QueryError
from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import topological_sort

__all__ = ["ChainCoverIndex"]


@register_scheme
class ChainCoverIndex(ReachabilityIndex):
    """Compressed transitive closure via a greedy chain cover."""

    scheme_name = "chain-cover"

    def __init__(self, component_of: dict[Node, int],
                 chain_of: np.ndarray, pos_in_chain: np.ndarray,
                 first_reach: np.ndarray, stats: IndexStats) -> None:
        self._component_of = component_of
        self._chain_of = chain_of
        self._pos_in_chain = pos_in_chain
        self._first_reach = first_reach
        self._stats = stats

    @classmethod
    def build(cls, graph: DiGraph, **options: Any) -> "ChainCoverIndex":
        """Build a chain-cover index for ``graph``."""
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        wall_start = time.perf_counter()
        phase_seconds: dict[str, float] = {}

        phase = time.perf_counter()
        cond = condense(graph)
        dag = cond.dag
        n = cond.num_components
        phase_seconds["condense"] = time.perf_counter() - phase

        # --- greedy chain decomposition along the topological order.
        phase = time.perf_counter()
        order = topological_sort(dag)
        chain_of = np.full(n, -1, dtype=np.int64)
        pos_in_chain = np.zeros(n, dtype=np.int64)
        num_chains = 0
        for start in order:
            if chain_of[start] != -1:
                continue
            chain_id = num_chains
            num_chains += 1
            node = start
            position = 0
            while True:
                chain_of[node] = chain_id
                pos_in_chain[node] = position
                position += 1
                nxt = next((s for s in dag.successors(node)
                            if chain_of[s] == -1), None)
                if nxt is None:
                    break
                node = nxt
        phase_seconds["chains"] = time.perf_counter() - phase

        # --- per-node first-reachable position per chain, one reverse
        # topological sweep of elementwise minima.
        phase = time.perf_counter()
        sentinel = np.iinfo(np.int64).max
        first_reach = np.full((n, num_chains), sentinel, dtype=np.int64)
        for node in reversed(order):
            row = first_reach[node]
            for succ in dag.successors(node):
                np.minimum(row, first_reach[succ], out=row)
            chain = chain_of[node]
            if pos_in_chain[node] < row[chain]:
                row[chain] = pos_in_chain[node]
        phase_seconds["closure"] = time.perf_counter() - phase

        build_seconds = time.perf_counter() - wall_start
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            dag_nodes=n,
            dag_edges=dag.num_edges,
            build_seconds=build_seconds,
            phase_seconds=phase_seconds,
            space_bytes={
                "chain_labels": 2 * INT_BYTES * n,
                "first_reach_matrix": INT_BYTES * n * num_chains,
            },
        )
        return cls(cond.component_of, chain_of, pos_in_chain,
                   first_reach, stats)

    # ------------------------------------------------------------------
    def reachable(self, u: Node, v: Node) -> bool:
        component_of = self._component_of
        try:
            cu = component_of[u]
            cv = component_of[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        if cu == cv:
            return True
        chain = self._chain_of[cv]
        return bool(self._first_reach[cu, chain]
                    <= self._pos_in_chain[cv])

    def stats(self) -> IndexStats:
        return self._stats

    @property
    def num_chains(self) -> int:
        """Number of chains in the cover (the k of O(n·k))."""
        return int(self._first_reach.shape[1]) if \
            self._first_reach.size else 0

    def __repr__(self) -> str:
        return (f"ChainCoverIndex(n={self._stats.num_nodes}, "
                f"k={self.num_chains})")
