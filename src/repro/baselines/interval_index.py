"""Interval labeling for DAGs (Agrawal, Borgida, Jagadish 1989).

The paper's "Interval" comparator.  Each node ``u`` carries a *set* of
disjoint postorder intervals ``L(u)``; ``v`` is reachable from ``u`` iff
``v``'s postorder number falls inside some interval of ``L(u)``.

Build (after SCC condensation):

1. extract a spanning forest and assign each node the classic Agrawal
   interval ``[low(u), post(u)]`` — ``post(u)`` is its postorder rank,
   ``low(u)`` the smallest rank in its subtree — so the single interval
   covers exactly the node's *tree* descendants;
2. sweep the DAG in reverse topological order, folding every successor's
   interval set into its predecessors' and coalescing overlapping or
   adjacent intervals.

Labeling is fast (one sweep), but on graphs with many non-tree edges the
per-node sets grow — the paper's Figure 8/9 observation that Interval has
competitive *indexing* time yet the worst *query* time.  Three query
modes reproduce the spectrum:

* ``probe="bisect"`` (default) — one binary search for ``post(v)`` in
  ``L(u)``; the efficient single-point formulation.
* ``probe="linear"`` — the same single-point test by linear scan.
* ``probe="subset"`` — the test as the paper's Section 2 describes the
  comparator it measured: "a node v is reachable from u iff every
  interval in L(v) is contained by some interval in L(u)", i.e.
  ``O(|L(v)| · log |L(u)|)`` work per query ("because reachability
  queries require checking containment relationship for **all**
  intervals in a label, long labels can seriously impact query
  performance").  Equivalent answers — if ``u ⇝ v`` then u's merged
  coverage includes everything v covers, and conversely v's own interval
  being covered implies reachability — but the cost profile matches the
  paper's measured gap, so the benchmark suite uses this mode.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Any

import numpy as np

from repro.core.base import (
    INT_BYTES,
    IndexStats,
    LabelArrays,
    ReachabilityIndex,
    register_scheme,
)
from repro.exceptions import QueryError
from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph, Node
from repro.graph.meg import minimal_equivalent_graph
from repro.graph.spanning import spanning_forest
from repro.graph.traversal import topological_sort

__all__ = ["IntervalSetIndex", "IntervalLabelArrays", "merge_interval_lists"]


class IntervalLabelArrays(LabelArrays):
    """Vectorised single-point containment test over interval sets.

    Uses the efficient ``bisect`` formulation regardless of the index's
    probe mode — all three probes give identical *answers* (see the
    module docstring), only their scalar cost profiles differ, and a
    batch kernel has no reason to replay the slow ones.  The ragged
    per-node interval lists flatten into one sorted key array by
    encoding each start as ``component_id * base + lo`` with ``base``
    wider than any postorder rank, so one global ``searchsorted``
    replaces the per-node binary search.
    """

    def __init__(self, component_of: dict, post: list[int],
                 labels: list[list[tuple[int, int]]]) -> None:
        super().__init__(component_of)
        self.post = np.asarray(post, dtype=np.int64)
        lengths = np.fromiter((len(label) for label in labels),
                              dtype=np.int64, count=len(labels))
        self._row_start = np.concatenate(
            ([0], np.cumsum(lengths)))[:-1] if len(labels) else \
            np.zeros(0, dtype=np.int64)
        los = np.asarray([lo for label in labels for lo, _ in label],
                         dtype=np.int64)
        self._his = np.asarray([hi for label in labels for _, hi in label],
                               dtype=np.int64)
        self._base = int(self.post.max()) + 2 if self.post.size else 1
        node_index = np.repeat(
            np.arange(len(labels), dtype=np.int64), lengths)
        self._keys = node_index * self._base + los

    def query_components(self, cu: np.ndarray,
                         cv: np.ndarray) -> np.ndarray:
        if self._keys.size == 0:
            return cu == cv
        target = self.post[cv]
        pos = np.searchsorted(self._keys, cu * self._base + target,
                              side="right") - 1
        # ``pos`` must still sit inside cu's own key band; it cannot
        # overshoot into the next node's band because any key there
        # exceeds (cu + 1) * base - 1 >= the probe.
        inside = pos >= self._row_start[cu]
        hit = inside & (target <= self._his[np.where(inside, pos, 0)])
        return hit | (cu == cv)


def merge_interval_lists(lists: list[list[tuple[int, int]]]
                         ) -> list[tuple[int, int]]:
    """Union several sorted lists of closed int intervals.

    Overlapping *and adjacent* intervals coalesce (``[1,3] + [4,6] →
    [1,6]``), since postorder ranks are consecutive integers.
    """
    items = [iv for lst in lists for iv in lst]
    if not items:
        return []
    items.sort()
    merged = [items[0]]
    for lo, hi in items[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


@register_scheme
class IntervalSetIndex(ReachabilityIndex):
    """Agrawal-style multi-interval reachability labeling."""

    scheme_name = "interval"

    def __init__(self, component_of: dict[Node, int], post: list[int],
                 labels: list[list[tuple[int, int]]], probe: str,
                 stats: IndexStats) -> None:
        self._component_of = component_of
        self._post = post
        self._labels = labels
        # Pre-split starts for bisect-based containment tests.
        self._label_starts = [[lo for lo, _ in label] for label in labels]
        self._probe = probe
        self._stats = stats
        self._arrays: IntervalLabelArrays | None = None

    @classmethod
    def build(cls, graph: DiGraph, use_meg: bool = False,
              probe: str = "bisect",
              **options: Any) -> "IntervalSetIndex":
        """Build the interval-set index.

        Parameters
        ----------
        graph: any directed graph (cycles handled via condensation).
        use_meg: optionally run the minimal-equivalent-graph reduction
            first.  Off by default — the 1989 scheme does not require it;
            benchmarks enable it when comparing preprocessing regimes.
        probe: query mode — ``"bisect"`` (default), ``"linear"``, or the
            paper-faithful ``"subset"`` (see the module docstring).
        """
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        if probe not in {"bisect", "linear", "subset"}:
            raise ValueError(
                f"probe must be 'bisect', 'linear' or 'subset', "
                f"got {probe!r}")
        wall_start = time.perf_counter()
        phase_seconds: dict[str, float] = {}

        phase = time.perf_counter()
        cond = condense(graph)
        phase_seconds["condense"] = time.perf_counter() - phase
        dag = cond.dag
        meg_edges: int | None = None
        if use_meg:
            phase = time.perf_counter()
            dag = minimal_equivalent_graph(dag).graph
            meg_edges = dag.num_edges
            phase_seconds["meg"] = time.perf_counter() - phase

        phase = time.perf_counter()
        forest = spanning_forest(dag)
        # Postorder ranks via iterative DFS over tree children.
        n = cond.num_components
        post = [0] * n
        low = [0] * n
        clock = 0
        for root in forest.roots:
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                node, child_idx = stack[-1]
                kids = forest.children[node]
                if child_idx < len(kids):
                    stack[-1] = (node, child_idx + 1)
                    stack.append((kids[child_idx], 0))
                else:
                    stack.pop()
                    post[node] = clock
                    low[node] = clock if not kids else low[kids[0]]
                    clock += 1
        phase_seconds["tree_intervals"] = time.perf_counter() - phase

        # Propagate interval sets in reverse topological order.
        phase = time.perf_counter()
        labels: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for node in reversed(topological_sort(dag)):
            own = [(low[node], post[node])]
            succ_labels = [labels[s] for s in dag.successors(node)]
            labels[node] = merge_interval_lists([own] + succ_labels)
        phase_seconds["propagate"] = time.perf_counter() - phase

        num_intervals = sum(len(label) for label in labels)
        build_seconds = time.perf_counter() - wall_start
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            dag_nodes=cond.num_components,
            dag_edges=cond.dag.num_edges,
            meg_edges=meg_edges,
            build_seconds=build_seconds,
            phase_seconds=phase_seconds,
            space_bytes={
                "interval_sets": 2 * INT_BYTES * num_intervals,
                "postorder": INT_BYTES * n,
            },
        )
        return cls(cond.component_of, post, labels, probe, stats)

    # ------------------------------------------------------------------
    def reachable(self, u: Node, v: Node) -> bool:
        component_of = self._component_of
        try:
            cu = component_of[u]
            cv = component_of[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        if cu == cv:
            return True
        if self._probe == "subset":
            # Paper Section 2's formulation: every interval of L(v) must
            # be contained in some interval of L(u).
            labels_u = self._labels[cu]
            starts_u = self._label_starts[cu]
            for lo, hi in self._labels[cv]:
                pos = bisect_right(starts_u, lo) - 1
                if pos < 0 or hi > labels_u[pos][1]:
                    return False
            return True
        target = self._post[cv]
        if self._probe == "linear":
            return any(lo <= target <= hi for lo, hi in self._labels[cu])
        starts = self._label_starts[cu]
        pos = bisect_right(starts, target) - 1
        if pos < 0:
            return False
        return target <= self._labels[cu][pos][1]

    def stats(self) -> IndexStats:
        return self._stats

    def label_arrays(self) -> IntervalLabelArrays:
        """Flattened numpy view of the interval sets (built once)."""
        if self._arrays is None:
            self._arrays = IntervalLabelArrays(
                self._component_of, self._post, self._labels)
        return self._arrays

    @property
    def average_label_length(self) -> float:
        """Mean number of intervals per node (query-cost driver)."""
        if not self._labels:
            return 0.0
        return sum(len(lbl) for lbl in self._labels) / len(self._labels)

    def __repr__(self) -> str:
        return (f"IntervalSetIndex(n={self._stats.num_nodes}, "
                f"avg_label={self.average_label_length:.2f})")
