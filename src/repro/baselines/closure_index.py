"""Transitive-closure matrix baseline — paper Section 1.2, second naive
approach.

Precomputes the full reachability matrix: O(1) queries, O(n²) bits of
storage.  The paper draws this as the horizontal space line in Figure 12
and the fastest query series in Figure 13; Dual-I's selling point is
getting within a whisker of its query time at a fraction of its space on
sparse graphs.

Storage is a per-node big-int bitset (n² bits total), the densest
representation pure Python offers; queries are one dict lookup plus a
shift-and-mask.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.base import IndexStats, ReachabilityIndex, register_scheme
from repro.exceptions import QueryError
from repro.graph.closure import transitive_closure_bitsets
from repro.graph.digraph import DiGraph, Node

__all__ = ["TransitiveClosureIndex"]


@register_scheme
class TransitiveClosureIndex(ReachabilityIndex):
    """Full materialised transitive closure (bit matrix)."""

    scheme_name = "closure"

    def __init__(self, desc: list[int], index: dict[Node, int],
                 stats: IndexStats) -> None:
        self._desc = desc
        self._index = index
        self._stats = stats

    @classmethod
    def build(cls, graph: DiGraph, **options: Any) -> "TransitiveClosureIndex":
        """Materialise the reflexive transitive closure of ``graph``."""
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        wall_start = time.perf_counter()
        desc, index = transitive_closure_bitsets(graph)
        build_seconds = time.perf_counter() - wall_start
        n = graph.num_nodes
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=n,
            num_edges=graph.num_edges,
            dag_nodes=n,
            dag_edges=graph.num_edges,
            build_seconds=build_seconds,
            # n*n bits, rounded up to bytes — the paper's n² yardstick.
            space_bytes={"closure_matrix": (n * n + 7) // 8},
        )
        return cls(desc, index, stats)

    def reachable(self, u: Node, v: Node) -> bool:
        index = self._index
        try:
            i = index[u]
            j = index[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        return bool((self._desc[i] >> j) & 1)

    def stats(self) -> IndexStats:
        return self._stats

    def __repr__(self) -> str:
        return f"TransitiveClosureIndex(n={self._stats.num_nodes})"
