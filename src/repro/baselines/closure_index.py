"""Transitive-closure matrix baseline — paper Section 1.2, second naive
approach.

Precomputes the full reachability matrix: O(1) queries, O(n²) bits of
storage.  The paper draws this as the horizontal space line in Figure 12
and the fastest query series in Figure 13; Dual-I's selling point is
getting within a whisker of its query time at a fraction of its space on
sparse graphs.

Storage is a per-node big-int bitset (n² bits total), the densest
representation pure Python offers; queries are one dict lookup plus a
shift-and-mask.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.base import IndexStats, LabelArrays, ReachabilityIndex, register_scheme
from repro.exceptions import QueryError
from repro.graph.closure import transitive_closure_bitsets
from repro.graph.digraph import DiGraph, Node

__all__ = ["TransitiveClosureIndex", "ClosureLabelArrays"]


class ClosureLabelArrays(LabelArrays):
    """Vectorised kernel over the packed closure bit matrix.

    The per-node big-int bitsets re-materialise as an ``n × ⌈n/8⌉``
    ``uint8`` matrix (same n² bits, little-endian within each byte);
    a batch query is one gather plus a shift-and-mask.  Here the dense
    ids are node ids, not SCC components — the closure rows are already
    expanded to original nodes.
    """

    def __init__(self, component_of: dict[Node, int],
                 desc: list[int]) -> None:
        super().__init__(component_of)
        n = len(desc)
        row_bytes = max(1, (n + 7) // 8)
        packed = np.zeros((max(1, n), row_bytes), dtype=np.uint8)
        for i, bits in enumerate(desc):
            packed[i] = np.frombuffer(
                bits.to_bytes(row_bytes, "little"), dtype=np.uint8)
        self.packed = packed

    def query_components(self, cu: np.ndarray,
                         cv: np.ndarray) -> np.ndarray:
        cells = self.packed[cu, cv >> 3]
        return ((cells >> (cv & 7)) & 1).astype(bool)


@register_scheme
class TransitiveClosureIndex(ReachabilityIndex):
    """Full materialised transitive closure (bit matrix)."""

    scheme_name = "closure"

    def __init__(self, desc: list[int], index: dict[Node, int],
                 stats: IndexStats) -> None:
        self._desc = desc
        self._index = index
        self._stats = stats
        self._arrays: ClosureLabelArrays | None = None

    @classmethod
    def build(cls, graph: DiGraph, **options: Any) -> "TransitiveClosureIndex":
        """Materialise the reflexive transitive closure of ``graph``."""
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        wall_start = time.perf_counter()
        desc, index = transitive_closure_bitsets(graph)
        build_seconds = time.perf_counter() - wall_start
        n = graph.num_nodes
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=n,
            num_edges=graph.num_edges,
            dag_nodes=n,
            dag_edges=graph.num_edges,
            build_seconds=build_seconds,
            # n*n bits, rounded up to bytes — the paper's n² yardstick.
            space_bytes={"closure_matrix": (n * n + 7) // 8},
        )
        return cls(desc, index, stats)

    def reachable(self, u: Node, v: Node) -> bool:
        index = self._index
        try:
            i = index[u]
            j = index[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        return bool((self._desc[i] >> j) & 1)

    def stats(self) -> IndexStats:
        return self._stats

    def label_arrays(self) -> ClosureLabelArrays:
        """Packed-bit numpy view of the closure (built once, cached)."""
        if self._arrays is None:
            self._arrays = ClosureLabelArrays(self._index, self._desc)
        return self._arrays

    def __repr__(self) -> str:
        return f"TransitiveClosureIndex(n={self._stats.num_nodes})"
