"""Online-search baseline: no index, BFS per query — paper Section 1.2.

The first naive approach: "use the shortest path algorithm to determine
if they are connected.  This approach may take O(m) query time, but
requires no extra data structure besides the graph itself."  It doubles
as the ground-truth oracle for every other scheme in the test suite.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.base import INT_BYTES, IndexStats, ReachabilityIndex, register_scheme
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import is_reachable_search

__all__ = ["OnlineSearchIndex"]


@register_scheme
class OnlineSearchIndex(ReachabilityIndex):
    """Index-free reachability: one BFS per query."""

    scheme_name = "online-bfs"

    def __init__(self, graph: DiGraph, stats: IndexStats) -> None:
        self._graph = graph
        self._stats = stats

    @classmethod
    def build(cls, graph: DiGraph, **options: Any) -> "OnlineSearchIndex":
        """"Build" the index — just snapshot the graph."""
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        wall_start = time.perf_counter()
        snapshot = graph.copy()
        build_seconds = time.perf_counter() - wall_start
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            dag_nodes=graph.num_nodes,
            dag_edges=graph.num_edges,
            build_seconds=build_seconds,
            # The graph itself is the only storage: 2 ints per edge.
            space_bytes={"adjacency": 2 * INT_BYTES * graph.num_edges},
        )
        return cls(snapshot, stats)

    def reachable(self, u: Node, v: Node) -> bool:
        if u not in self._graph:
            raise QueryError(u)
        if v not in self._graph:
            raise QueryError(v)
        return is_reachable_search(self._graph, u, v)

    def stats(self) -> IndexStats:
        return self._stats

    def __repr__(self) -> str:
        return (f"OnlineSearchIndex(n={self._stats.num_nodes}, "
                f"m={self._stats.num_edges})")
