"""Comparator schemes: the paper's baselines plus one post-paper extension.

* ``online-bfs`` — no index, one BFS per query (Section 1.2 naive #1);
* ``closure`` — full transitive-closure bit matrix (naive #2);
* ``interval`` — Agrawal et al. 1989 multi-interval DAG labeling;
* ``2hop`` — Cohen et al. 2002 greedy 2-hop cover;
* ``grail`` — GRAIL-style randomised labels (extension, post-paper);
* ``chain-cover`` — Jagadish-style compressed closure (extension).
"""

from repro.baselines.chain_cover import ChainCoverIndex
from repro.baselines.closure_index import TransitiveClosureIndex
from repro.baselines.grail import GrailIndex
from repro.baselines.interval_index import IntervalSetIndex, merge_interval_lists
from repro.baselines.online import OnlineSearchIndex
from repro.baselines.two_hop import TwoHopIndex

__all__ = [
    "OnlineSearchIndex",
    "ChainCoverIndex",
    "TransitiveClosureIndex",
    "IntervalSetIndex",
    "merge_interval_lists",
    "TwoHopIndex",
    "GrailIndex",
]
