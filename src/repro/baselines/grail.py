"""GRAIL-style randomised interval labeling (extension baseline).

Not part of the 2006 paper — GRAIL (Yildirim, Chierichetti, Zaki, VLDB
2010) became the standard *scalable* comparator in later reachability
work, so the benchmark suite includes it to place dual labeling in the
post-paper landscape (an "extension" deliverable).

Each node receives ``k`` interval labels, one per random DFS of the DAG
(children shuffled per traversal).  Interval ``i`` of node ``u`` contains
interval ``i`` of node ``v`` whenever ``u ⇝ v`` — the converse need not
hold — so labels give a constant-time *negative* filter:

* some label of ``v`` not contained in ``u``'s  →  definitely **not**
  reachable;
* all ``k`` labels contained  →  *maybe*; fall back to a DFS that prunes
  every subtree whose labels already rule ``v`` out.

Build is ``O(k·(n + m))``; space ``2k`` ints per node; queries are O(k)
when the filter fires and bounded by the pruned DFS otherwise.
"""

from __future__ import annotations

import random
import time
from typing import Any

from repro.core.base import INT_BYTES, IndexStats, ReachabilityIndex, register_scheme
from repro.exceptions import QueryError
from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph, Node

__all__ = ["GrailIndex"]


@register_scheme
class GrailIndex(ReachabilityIndex):
    """Randomised multi-interval labeling with pruned-DFS fallback."""

    scheme_name = "grail"

    def __init__(self, component_of: dict[Node, int],
                 dag_succ: list[list[int]],
                 lows: list[list[int]], posts: list[list[int]],
                 stats: IndexStats) -> None:
        self._component_of = component_of
        self._dag_succ = dag_succ
        # lows[r][u] / posts[r][u]: label r of component u.
        self._lows = lows
        self._posts = posts
        self._stats = stats

    @classmethod
    def build(cls, graph: DiGraph, k: int = 2, seed: int = 0,
              **options: Any) -> "GrailIndex":
        """Build a GRAIL index with ``k`` random traversals.

        Parameters
        ----------
        graph: any directed graph (cycles handled via condensation).
        k: number of independent random interval labelings (default 2).
        seed: RNG seed for the traversal shuffles.
        """
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        wall_start = time.perf_counter()
        cond = condense(graph)
        dag = cond.dag
        n = cond.num_components
        dag_succ = [list(dag.successors(cid)) for cid in range(n)]
        roots = dag.roots()

        rng = random.Random(seed)
        lows: list[list[int]] = []
        posts: list[list[int]] = []
        for _ in range(k):
            low = [0] * n
            post = [0] * n
            visited = [False] * n
            clock = 0
            shuffled_roots = list(roots)
            rng.shuffle(shuffled_roots)
            for root in shuffled_roots:
                if visited[root]:
                    continue
                visited[root] = True
                # Frames: (node, shuffled children, next index, min-low).
                kids = [s for s in dag_succ[root]]
                rng.shuffle(kids)
                stack: list[list] = [[root, kids, 0, None]]
                while stack:
                    frame = stack[-1]
                    node, kids, idx, min_low = frame
                    advanced = False
                    while idx < len(kids):
                        child = kids[idx]
                        idx += 1
                        if not visited[child]:
                            visited[child] = True
                            grandkids = [s for s in dag_succ[child]]
                            rng.shuffle(grandkids)
                            frame[2] = idx
                            stack.append([child, grandkids, 0, None])
                            advanced = True
                            break
                        # Visited child: its interval is final; absorb it.
                        candidate = low[child]
                        if min_low is None or candidate < min_low:
                            min_low = candidate
                            frame[3] = min_low
                    if advanced:
                        continue
                    frame[2] = idx
                    stack.pop()
                    post[node] = clock
                    low[node] = clock if min_low is None else min(min_low,
                                                                  clock)
                    clock += 1
                    if stack:
                        parent = stack[-1]
                        if parent[3] is None or low[node] < parent[3]:
                            parent[3] = low[node]
            lows.append(low)
            posts.append(post)

        build_seconds = time.perf_counter() - wall_start
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            dag_nodes=n,
            dag_edges=dag.num_edges,
            build_seconds=build_seconds,
            space_bytes={
                "grail_labels": 2 * k * INT_BYTES * n,
                "adjacency": 2 * INT_BYTES * dag.num_edges,
            },
        )
        return cls(cond.component_of, dag_succ, lows, posts, stats)

    # ------------------------------------------------------------------
    def _maybe_reachable(self, cu: int, cv: int) -> bool:
        """Label filter: ``False`` means definitely unreachable."""
        for low, post in zip(self._lows, self._posts):
            if not (low[cu] <= low[cv] and post[cv] <= post[cu]):
                return False
        return True

    def reachable(self, u: Node, v: Node) -> bool:
        component_of = self._component_of
        try:
            cu = component_of[u]
            cv = component_of[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        if cu == cv:
            return True
        if not self._maybe_reachable(cu, cv):
            return False
        # Pruned DFS fallback.
        stack = [cu]
        seen = {cu}
        while stack:
            node = stack.pop()
            if node == cv:
                return True
            for succ in self._dag_succ[node]:
                if succ not in seen and self._maybe_reachable(succ, cv):
                    seen.add(succ)
                    stack.append(succ)
        return False

    def stats(self) -> IndexStats:
        return self._stats

    def __repr__(self) -> str:
        return (f"GrailIndex(n={self._stats.num_nodes}, "
                f"k={len(self._lows)})")
