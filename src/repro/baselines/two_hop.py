"""2-hop reachability labeling (Cohen, Halperin, Kaplan, Zwick 2002).

The paper's main prior-art comparator.  Each node ``u`` carries two label
sets: ``C_out(u)`` (hop nodes ``u`` can reach) and ``C_in(u)`` (hop nodes
that can reach ``u``); then

    ``u ⇝ v``  ⇔  ``C_out(u) ∩ C_in(v) ≠ ∅``  (or trivially u = v, etc.)

Finding minimum labels is NP-hard; Cohen et al. approximate with a greedy
set cover over the transitive closure, which is what makes 2-hop labeling
so expensive to *build* (``O(n⁴)``, cut to ``O(n³)`` by HOPI) — the very
cost dual labeling eliminates.  We implement the standard practical
greedy:

1. materialise the transitive closure of the condensation as a numpy
   boolean matrix (this alone is the quadratic cost the paper criticises);
2. repeatedly pick the most promising hop center ``w`` and cover the
   uncovered reachable pairs routed through it — ancestors of ``w`` gain
   ``w`` in ``C_out``, uncovered targets gain ``w`` in ``C_in`` — until no
   uncovered pair remains (vectorised as numpy submatrix operations).

Two center-selection strategies are provided:

* ``strategy="greedy"`` (default, Cohen-faithful): after every center the
  scores are recomputed from the *current* uncovered matrix
  (``score(w) = #uncovered-into-w · #uncovered-out-of-w``), one full
  matrix reduction per round — this per-round rescan is what makes real
  2-hop labeling orders of magnitude slower to build than dual labeling,
  the regime Figures 8/9 report;
* ``strategy="static"`` (HOPI-flavoured speedup): centers ranked once by
  ``|ancestors| · |descendants|`` on the full closure, one pass.

Both produce correct (complete and sound) covers; greedy yields smaller
labels.

Queries intersect the two sorted label arrays with a linear merge
(``O(|C_out| + |C_in|)``, the paper's ``O(m^{1/2})`` average).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.base import INT_BYTES, IndexStats, ReachabilityIndex, register_scheme
from repro.exceptions import QueryError
from repro.graph.closure import transitive_closure_matrix
from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph, Node

__all__ = ["TwoHopIndex"]


@register_scheme
class TwoHopIndex(ReachabilityIndex):
    """Greedy 2-hop cover reachability labeling."""

    scheme_name = "2hop"

    def __init__(self, component_of: dict[Node, int],
                 c_out: list[list[int]], c_in: list[list[int]],
                 stats: IndexStats) -> None:
        self._component_of = component_of
        self._c_out = c_out
        self._c_in = c_in
        self._stats = stats

    @classmethod
    def build(cls, graph: DiGraph, strategy: str = "greedy",
              **options: Any) -> "TwoHopIndex":
        """Build a 2-hop cover for ``graph``.

        Parameters
        ----------
        graph: any directed graph (cycles handled via condensation).
        strategy: ``"greedy"`` (Cohen-faithful re-scoring every round,
            default) or ``"static"`` (one-shot ranking, much faster).
        """
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        if strategy not in {"greedy", "static"}:
            raise ValueError(
                f"strategy must be 'greedy' or 'static', got {strategy!r}")
        wall_start = time.perf_counter()
        phase_seconds: dict[str, float] = {}

        phase = time.perf_counter()
        cond = condense(graph)
        phase_seconds["condense"] = time.perf_counter() - phase

        phase = time.perf_counter()
        closure, _ = transitive_closure_matrix(cond.dag)
        phase_seconds["transitive_closure"] = time.perf_counter() - phase

        phase = time.perf_counter()
        n = cond.num_components
        c_out: list[list[int]] = [[] for _ in range(n)]
        c_in: list[list[int]] = [[] for _ in range(n)]
        if n:
            # Uncovered pairs: strict reachability (diagonal handled by the
            # u == v shortcut at query time).
            uncovered = closure.copy()
            np.fill_diagonal(uncovered, False)

            remaining = int(uncovered.sum())
            if strategy == "static":
                anc_count = closure.sum(axis=0)
                desc_count = closure.sum(axis=1)
                centers = iter(np.argsort(-(anc_count * desc_count),
                                          kind="stable"))
            else:
                centers = None  # chosen per round below

            while remaining > 0:
                if centers is not None:
                    try:
                        w = int(next(centers))
                    except StopIteration:  # pragma: no cover - safety net
                        break
                else:
                    # Cohen-style greedy: re-score every candidate against
                    # the current uncovered matrix each round.  The score
                    # is the size of the uncovered block routed through w.
                    into_w = uncovered.sum(axis=0) + 1  # +1: w itself
                    out_of_w = uncovered.sum(axis=1) + 1
                    w = int(np.argmax(into_w * out_of_w))
                ancestors = np.flatnonzero(closure[:, w])
                descendants = np.flatnonzero(closure[w, :])
                if ancestors.size == 0 or descendants.size == 0:
                    continue
                block = uncovered[np.ix_(ancestors, descendants)]
                newly_covered = int(block.sum())
                if newly_covered == 0:
                    if centers is None:
                        # Greedy picked a zero-gain center: the score is an
                        # upper bound, so fall back to a guaranteed-progress
                        # center (any row with uncovered pairs covers them
                        # when used as its own hop).
                        w = int(np.argmax(uncovered.sum(axis=1)))
                        ancestors = np.flatnonzero(closure[:, w])
                        descendants = np.flatnonzero(closure[w, :])
                        block = uncovered[np.ix_(ancestors, descendants)]
                        newly_covered = int(block.sum())
                        if newly_covered == 0:  # pragma: no cover
                            break
                    else:
                        continue
                remaining -= newly_covered
                active_rows = block.any(axis=1)
                active_cols = block[active_rows].any(axis=0)
                hop = int(w)
                for u in ancestors[active_rows]:
                    c_out[int(u)].append(hop)
                for v in descendants[active_cols]:
                    c_in[int(v)].append(hop)
                uncovered[np.ix_(ancestors[active_rows], descendants)] = False
            # Sorted labels enable the linear-merge intersection test.
            c_out = [sorted(label) for label in c_out]
            c_in = [sorted(label) for label in c_in]
        phase_seconds["greedy_cover"] = time.perf_counter() - phase

        label_entries = (sum(len(lbl) for lbl in c_out)
                         + sum(len(lbl) for lbl in c_in))
        build_seconds = time.perf_counter() - wall_start
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            dag_nodes=cond.num_components,
            dag_edges=cond.dag.num_edges,
            build_seconds=build_seconds,
            phase_seconds=phase_seconds,
            space_bytes={"hop_labels": INT_BYTES * label_entries},
        )
        return cls(cond.component_of, c_out, c_in, stats)

    # ------------------------------------------------------------------
    def reachable(self, u: Node, v: Node) -> bool:
        component_of = self._component_of
        try:
            cu = component_of[u]
            cv = component_of[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        if cu == cv:
            return True
        out_labels = self._c_out[cu]
        in_labels = self._c_in[cv]
        i = j = 0
        len_out, len_in = len(out_labels), len(in_labels)
        while i < len_out and j < len_in:
            a, b = out_labels[i], in_labels[j]
            if a == b:
                return True
            if a < b:
                i += 1
            else:
                j += 1
        return False

    def stats(self) -> IndexStats:
        return self._stats

    @property
    def average_label_length(self) -> float:
        """Mean of ``|C_out| + |C_in|`` per node (query-cost driver)."""
        n = len(self._c_out)
        if n == 0:
            return 0.0
        total = (sum(len(lbl) for lbl in self._c_out)
                 + sum(len(lbl) for lbl in self._c_in))
        return total / n

    def __repr__(self) -> str:
        return (f"TwoHopIndex(n={self._stats.num_nodes}, "
                f"avg_label={self.average_label_length:.2f})")
