"""repro — dual labeling for constant-time graph reachability queries.

A from-scratch Python reproduction of:

    Haixun Wang, Hao He, Jun Yang, Philip S. Yu, Jeffrey Xu Yu.
    "Dual Labeling: Answering Graph Reachability Queries in Constant
    Time."  ICDE 2006.

Quickstart
----------
>>> from repro import DiGraph, build_index
>>> g = DiGraph([("fiction", "chapter"), ("chapter", "author")])
>>> index = build_index(g, scheme="dual-i")
>>> index.reachable("fiction", "author")
True
>>> index.reachable("author", "fiction")
False

Schemes (see :func:`repro.available_schemes`):

===========  ===============================  ==========  ================
name         structure                        query       space
===========  ===============================  ==========  ================
dual-i       intervals + ⟨x,y,z⟩ + TLC matrix  O(1)        O(n + t²)
dual-ii      intervals + TLC search tree       O(log t)    O(n + t²) worst
dual-rt      intervals + range-temporal tree   O(log² t)   O(n + |T|·log)
interval     Agrawal 1989 interval sets        O(log n)*   O(n)…O(n²)
2hop         Cohen 2002 greedy hop cover       O(|label|)  O(n·m^1/2)
closure      transitive-closure bit matrix     O(1)        O(n²)
online-bfs   none (search per query)           O(n + m)    O(n + m)
grail        randomised intervals + DFS        O(k)…O(m)   O(k·n)
===========  ===============================  ==========  ================

(*) per containment probe; worst-case O(label length).
"""

from repro._version import __version__
from repro.core.base import (
    IndexStats,
    LabelArrays,
    ReachabilityIndex,
    available_schemes,
    build_index,
    get_scheme,
)
from repro.core.batch import BatchQuerier, reachable_batch
from repro.core.service import QueryService, ServiceMetrics
# Importing the scheme modules registers them with the scheme registry.
from repro.core.dual_i import DualIIndex
from repro.core.dual_ii import DualIIIndex
from repro.core.tlc_rangetree import DualRangeTreeIndex
from repro.baselines.chain_cover import ChainCoverIndex
from repro.baselines.closure_index import TransitiveClosureIndex
from repro.baselines.grail import GrailIndex
from repro.baselines.interval_index import IntervalSetIndex
from repro.baselines.online import OnlineSearchIndex
from repro.baselines.two_hop import TwoHopIndex
from repro.exceptions import (
    CorruptIndexError,
    DatasetError,
    GraphError,
    IndexBuildError,
    NotADAGError,
    QueryError,
    ReproError,
)
from repro.graph.digraph import DiGraph

__all__ = [
    "__version__",
    "DiGraph",
    "build_index",
    "available_schemes",
    "get_scheme",
    "ReachabilityIndex",
    "IndexStats",
    "LabelArrays",
    "BatchQuerier",
    "reachable_batch",
    "QueryService",
    "ServiceMetrics",
    "DualIIndex",
    "DualIIIndex",
    "DualRangeTreeIndex",
    "IntervalSetIndex",
    "TwoHopIndex",
    "TransitiveClosureIndex",
    "ChainCoverIndex",
    "OnlineSearchIndex",
    "GrailIndex",
    "ReproError",
    "GraphError",
    "NotADAGError",
    "IndexBuildError",
    "CorruptIndexError",
    "QueryError",
    "DatasetError",
]
